"""Cost metrics for transitive closure evaluation.

Section 7 of the paper surveys the many cost metrics used in the
literature -- tuples generated, distinct tuples, tuple I/O, successor
list I/O, list unions, page I/O, CPU time -- and shows that the
tuple-level metrics cannot be used to predict page I/O.  This package
therefore records *all* of them for every run, via
:class:`~repro.metrics.counters.MetricSet`.
"""

from repro.metrics.counters import MetricSet
from repro.metrics.report import format_table

__all__ = ["MetricSet", "format_table"]
