"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows and series the paper's
tables and figures report; this module renders them as aligned text so
the output is readable in a terminal and diffable across runs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dictionaries) as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the
    first row are used.  Near-integral and large floats are shown as
    digit-grouped integers (``123456.0`` renders as ``123,456``, never
    ``1.235e+05``, so tables stay diffable); small fractional floats
    keep four significant digits; everything else renders via ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                return str(value)
            if abs(value - round(value)) < 1e-9 or abs(value) >= 1000:
                return f"{round(value):,}"
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).rjust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(value.rjust(width) for value, width in zip(line, widths)) for line in table
    )
    parts = [header, separator, body]
    if title:
        parts.insert(0, title)
    return "\n".join(parts)


def format_series(
    name: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[object]],
    x_label: str = "x",
) -> str:
    """Render figure data: one x column plus one column per curve."""
    rows = []
    for index, x in enumerate(xs):
        row: dict[str, object] = {x_label: x}
        for label, values in series.items():
            row[label] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=name)
