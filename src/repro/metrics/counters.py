"""The full set of cost counters collected for every algorithm run.

Besides page I/O (the primary measure), the paper tracks -- and this
reproduction records -- every higher-level metric that earlier studies
used, so that Section 7's methodological point can be re-examined: the
number of tuples generated (deductions, duplicates included), the
number of distinct tuples derived, tuple I/O, successor-list I/O, the
number of successor-list unions, the marking statistics behind the
*marking utilisation* factor (Section 6.3.3), and the tuple counts
behind *selection efficiency* (Section 6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.storage.iostats import IoStats, Phase


@dataclass
class MetricSet:
    """Counters for one execution of one algorithm on one query.

    Algorithm code never writes the counter attributes directly (the
    RPL003 lint rule enforces this): hot loops accumulate plain local
    integers and fold them in through :meth:`fold` /
    :meth:`set_totals`, and the per-union hot path charges through
    :meth:`count_union`.  Keeping every write behind this seam is what
    lets the paged and fast engines be audited for bit-identical
    counters.
    """

    io: IoStats = field(default_factory=IoStats)

    # Tuple-level metrics (Section 7's "number of deductions" family).
    tuples_generated: int = 0
    """Tuples produced including duplicates (tc in Section 6.3.2)."""

    duplicates: int = 0
    """Of the generated tuples, how many were already present."""

    distinct_tuples: int = 0
    """Distinct result tuples derived across all expanded lists."""

    output_tuples: int = 0
    """Tuples in the expanded lists of the query's source nodes (stc)."""

    tuple_io: int = 0
    """Tuple-granularity I/O: successor entries read from lists."""

    # Successor-list level metrics.
    list_unions: int = 0
    """Successor-list (or tree) union operations performed."""

    list_reads: int = 0
    """Successor-list I/O: whole-list read operations."""

    # Marking statistics (Section 6.3.3).
    arcs_considered: int = 0
    """Arcs examined during the computation phase."""

    arcs_marked: int = 0
    """Arcs skipped by the marking optimisation."""

    unmarked_locality_total: int = 0
    """Sum of ``level(i) - level(j)`` over processed (unmarked) arcs."""

    # Hybrid-specific events.
    reblocking_events: int = 0
    """Dynamic reblocking events (diagonal pages discarded under pressure)."""

    # CPU cost (Table 3).
    cpu_seconds: float = 0.0
    """Measured process CPU time for the whole run."""

    restructure_cpu_seconds: float = 0.0
    """Measured process CPU time for the restructuring phase alone."""

    # -- the sanctioned write API -------------------------------------------

    def fold(self, **deltas: int | float) -> None:
        """Add the given per-counter deltas (the end-of-loop fold).

        ``metrics.fold(arcs_considered=n, arcs_marked=m)`` replaces a
        run of ``metrics.x += n`` statements; unknown counter names
        raise so a typo cannot silently drop a measurement.
        """
        for name, delta in deltas.items():
            if name not in _COUNTER_FIELDS:
                raise AttributeError(f"MetricSet has no counter {name!r}")
            setattr(self, name, getattr(self, name) + delta)

    def set_totals(self, **values: int | float) -> None:
        """Set counters to absolute values (end-of-run totals).

        Used for quantities that are computed once rather than
        accumulated -- ``distinct_tuples``, ``output_tuples``,
        ``cpu_seconds`` and friends.
        """
        for name, value in values.items():
            if name not in _COUNTER_FIELDS:
                raise AttributeError(f"MetricSet has no counter {name!r}")
            setattr(self, name, value)

    def count_union(self, read_tuples: int, duplicates: int) -> None:
        """Charge one successor-list union (the per-union hot path).

        One union reads the child's whole list: one list I/O, one
        union, ``read_tuples`` tuples read and generated, of which
        ``duplicates`` were already present in the target.
        """
        self.list_unions += 1
        self.list_reads += 1
        self.tuple_io += read_tuples
        self.tuples_generated += read_tuples
        self.duplicates += duplicates

    # -- derived measures ----------------------------------------------------

    @property
    def total_io(self) -> int:
        """Total page I/O (reads + writes), the paper's primary measure."""
        return self.io.total_io

    @property
    def marking_percentage(self) -> float:
        """Marked arcs as a fraction of arcs considered (Figure 11)."""
        if self.arcs_considered == 0:
            return 0.0
        return self.arcs_marked / self.arcs_considered

    @property
    def selection_efficiency(self) -> float:
        """``stc / tc`` -- what fraction of generated tuples were useful.

        Section 6.3.2 defines selection efficiency as the ratio of
        tuples belonging to the expanded successor lists of the query's
        source nodes (``stc``) to all tuples generated (``tc``).  The
        Search algorithm is optimal at 1.0 by construction.
        """
        if self.tuples_generated == 0:
            return 1.0 if self.output_tuples == 0 else 0.0
        return min(1.0, self.output_tuples / self.tuples_generated)

    @property
    def avg_unmarked_locality(self) -> float:
        """Average locality of processed (irredundant) arcs (Figure 12)."""
        processed = self.arcs_considered - self.arcs_marked
        if processed <= 0:
            return 0.0
        return self.unmarked_locality_total / processed

    def hit_ratio(self, phase: Phase | None = Phase.COMPUTE) -> float:
        """Buffer-pool hit ratio (Figure 13 uses the computation phase)."""
        return self.io.hit_ratio(phase)

    def estimated_io_seconds(self, ms_per_io: float = 20.0) -> float:
        """Estimated I/O time at 20 ms per page I/O (Table 3's model)."""
        return self.io.estimated_io_seconds(ms_per_io)

    def summary(self) -> dict[str, float | int]:
        """A flat dictionary of the headline numbers, for reports."""
        return {
            "total_io": self.total_io,
            "reads": self.io.total_reads,
            "writes": self.io.total_writes,
            "restructure_io": (
                self.io.reads_in(Phase.RESTRUCTURE) + self.io.writes_in(Phase.RESTRUCTURE)
            ),
            "compute_io": (
                self.io.reads_in(Phase.COMPUTE) + self.io.writes_in(Phase.COMPUTE)
            ),
            "writeout_io": (
                self.io.reads_in(Phase.WRITEOUT) + self.io.writes_in(Phase.WRITEOUT)
            ),
            "tuples_generated": self.tuples_generated,
            "duplicates": self.duplicates,
            "distinct_tuples": self.distinct_tuples,
            "output_tuples": self.output_tuples,
            "tuple_io": self.tuple_io,
            "list_unions": self.list_unions,
            "list_reads": self.list_reads,
            "arcs_considered": self.arcs_considered,
            "arcs_marked": self.arcs_marked,
            "marking_percentage": round(self.marking_percentage, 4),
            "selection_efficiency": round(self.selection_efficiency, 4),
            "avg_unmarked_locality": round(self.avg_unmarked_locality, 2),
            "hit_ratio": round(self.hit_ratio(), 4),
            "cpu_seconds": round(self.cpu_seconds, 4),
            "estimated_io_seconds": round(self.estimated_io_seconds(), 3),
        }


_COUNTER_FIELDS = frozenset(f.name for f in fields(MetricSet)) - {"io"}
"""Counter attributes :meth:`MetricSet.fold`/:meth:`set_totals` accept."""
