"""Graph substrate: graph type, workload generator and DAG analysis.

* :mod:`repro.graphs.digraph` -- the in-memory directed graph type used
  throughout the package.
* :mod:`repro.graphs.generator` -- the synthetic DAG generator with the
  paper's (n, F, l) parameterisation (Section 5.2).
* :mod:`repro.graphs.datasets` -- the canonical G1..G12 graph suite.
* :mod:`repro.graphs.toposort` -- DFS, topological sorting, reachability.
* :mod:`repro.graphs.analysis` -- node levels, arc locality, transitive
  reduction and the rectangle model (Section 5.3).
* :mod:`repro.graphs.condensation` -- Tarjan SCCs and the condensation
  graph, the standard preprocessing for cyclic inputs (Section 1).
* :mod:`repro.graphs.chains` -- chain decomposition (path cover), the
  combinatorial core of the ``chains`` reachability index.
* :mod:`repro.graphs.magic` -- the magic subgraph of a selection query.
* :mod:`repro.graphs.ingest` -- streaming SNAP edge-list ingestion and
  the large-scale stream-family registry.
"""

from repro.graphs.analysis import (
    GraphProfile,
    arc_locality,
    node_levels,
    profile_graph,
    transitive_closure_sets,
    transitive_closure_size,
    transitive_reduction_arcs,
)
from repro.graphs.chains import ChainDecomposition, chain_decomposition
from repro.graphs.condensation import condensation, strongly_connected_components
from repro.graphs.datasets import GRAPH_FAMILIES, GraphFamily, build_graph, graph_family
from repro.graphs.digraph import ArcView, Digraph, DigraphBuilder, graph_from_columns
from repro.graphs.generator import generate_dag, iter_paper_arcs
from repro.graphs.ingest import (
    STREAM_FAMILIES,
    IngestResult,
    IngestStats,
    StreamFamily,
    iter_braided_arcs,
    load_snap,
    stream_family,
    write_snap,
)
from repro.graphs.magic import magic_subgraph
from repro.graphs.toposort import is_acyclic, reachable_from, topological_sort

__all__ = [
    "ArcView",
    "ChainDecomposition",
    "Digraph",
    "DigraphBuilder",
    "GRAPH_FAMILIES",
    "GraphFamily",
    "GraphProfile",
    "IngestResult",
    "IngestStats",
    "STREAM_FAMILIES",
    "StreamFamily",
    "arc_locality",
    "build_graph",
    "chain_decomposition",
    "condensation",
    "generate_dag",
    "graph_family",
    "graph_from_columns",
    "is_acyclic",
    "iter_braided_arcs",
    "iter_paper_arcs",
    "load_snap",
    "magic_subgraph",
    "node_levels",
    "profile_graph",
    "reachable_from",
    "stream_family",
    "strongly_connected_components",
    "topological_sort",
    "transitive_closure_sets",
    "transitive_closure_size",
    "transitive_reduction_arcs",
    "write_snap",
]
