"""Chain decomposition (path cover) of a DAG.

A *chain decomposition* partitions the nodes of a DAG into k vertex-
disjoint paths ("chains") following graph arcs.  Kritikakis & Tollis
(*Parameterized Linear Time Transitive Closure*, arXiv 2404.17954;
*Fast and Practical DAG Decomposition with Reachability Applications*,
arXiv 2212.03945) show that such a decomposition yields an O(k * n)
reachability index: store, per node, the minimal position it reaches in
every chain, and ``reachable(u, v)`` reduces to one position
comparison.

Two passes are implemented, both deterministic:

* **Node-order greedy** (the concatenation heuristic's first stage):
  walk the nodes in topological order; append each node to the chain
  whose current tail is one of its parents (lowest chain id wins the
  tie), or open a new chain.
* **Concatenation refinement** (optional, on by default): repeatedly
  join whole chains end to end whenever an arc runs from one chain's
  tail to another chain's head.  This is the LP-free pass of the
  practical decomposition paper -- it only ever lowers k, never raises
  it, and k always stays >= the width of the DAG (any antichain meets
  each chain at most once).

The decomposition is a pure graph computation: no storage engine is
involved here.  :mod:`repro.core.chains` layers the paper-style cost
accounting and the queryable index on top.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.graphs.digraph import Digraph
from repro.graphs.toposort import topological_sort


@dataclass(frozen=True)
class ChainDecomposition:
    """A vertex-disjoint path cover of (a subset of) a DAG.

    Attributes
    ----------
    chains:
        The chains themselves; ``chains[c]`` lists nodes in path order,
        and every consecutive pair is an arc of the graph.
    chain_of:
        ``chain_of[v]`` is the chain id covering node ``v``.
    position_of:
        ``position_of[v]`` is ``v``'s index within its chain.
    """

    chains: tuple[tuple[int, ...], ...]
    chain_of: dict[int, int]
    position_of: dict[int, int]

    @property
    def k(self) -> int:
        """The number of chains (the index's width parameter)."""
        return len(self.chains)


def decompose_chains(
    adjacency: Mapping[int, Sequence[int]],
    order: list[int],
    *,
    refine: bool = True,
) -> ChainDecomposition:
    """Decompose an adjacency mapping into chains.

    ``order`` must be a topological order of ``adjacency``'s nodes (the
    restructuring phase already computed one, so callers pass it in
    instead of re-sorting).  ``refine`` enables the concatenation pass.

    The result is a pure function of ``(adjacency, order)``: ties are
    broken by chain id, so repeated runs -- in any process -- produce
    the identical decomposition (the engine-parity and ``--resume``
    guarantees depend on this).
    """
    predecessors: dict[int, list[int]] = {node: [] for node in order}
    for node in order:
        for child in adjacency[node]:
            predecessors[child].append(node)

    chains: list[list[int]] = []
    chain_of: dict[int, int] = {}
    position_of: dict[int, int] = {}
    tail_chain: dict[int, int] = {}  # current tail node -> its chain id
    for node in order:
        best: int | None = None
        for parent in predecessors[node]:
            candidate = tail_chain.get(parent)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        if best is None:
            best = len(chains)
            chains.append([])
        else:
            del tail_chain[chains[best][-1]]
        chains[best].append(node)
        chain_of[node] = best
        position_of[node] = len(chains[best]) - 1
        tail_chain[node] = best

    if refine:
        chains = _concatenate(chains, adjacency)
        chain_of = {}
        position_of = {}
        for chain_id, chain in enumerate(chains):
            for position, node in enumerate(chain):
                chain_of[node] = chain_id
                position_of[node] = position

    return ChainDecomposition(
        chains=tuple(tuple(chain) for chain in chains),
        chain_of=chain_of,
        position_of=position_of,
    )


def _concatenate(
    chains: list[list[int]], adjacency: Mapping[int, Sequence[int]]
) -> list[list[int]]:
    """Join chains end to end along arcs until no join applies.

    Scans are in ascending chain id and the lowest-id joinable head
    wins, so the fixpoint is deterministic.  Each pass either merges at
    least two chains or terminates, bounding the loop at k iterations.
    """
    merged = [list(chain) for chain in chains]
    changed = True
    while changed:
        changed = False
        heads = {chain[0]: index for index, chain in enumerate(merged) if chain}
        for index, chain in enumerate(merged):
            if not chain:
                continue
            tail = chain[-1]
            best: int | None = None
            for child in adjacency[tail]:
                candidate = heads.get(child)
                if candidate is not None and candidate != index and (
                    best is None or candidate < best
                ):
                    best = candidate
            if best is not None:
                del heads[merged[best][0]]
                chain.extend(merged[best])
                merged[best] = []
                changed = True
    return [chain for chain in merged if chain]


def chain_decomposition(
    graph: Digraph,
    nodes: list[int] | None = None,
    *,
    refine: bool = True,
) -> ChainDecomposition:
    """Decompose a :class:`Digraph` (or an induced node subset).

    Convenience wrapper around :func:`decompose_chains` that sorts the
    graph first (raising
    :class:`~repro.errors.CyclicGraphError` on cycles -- condense
    cyclic inputs with :mod:`repro.graphs.condensation` first).
    """
    order = topological_sort(graph, nodes)
    if nodes is None:
        # Whole-graph decomposition reads the CSR rows zero-copy; only
        # the induced-subset path filters into per-node lists.
        adjacency: Mapping[int, Sequence[int]] = {
            node: graph.successors(node) for node in order
        }
    else:
        in_scope = set(nodes)
        adjacency = {
            node: [child for child in graph.successors(node) if child in in_scope]
            for node in order
        }
    return decompose_chains(adjacency, order, refine=refine)
