"""Strongly connected components and the condensation graph.

The paper studies acyclic graphs, citing the well-known observation that
a cyclic graph's *condensation* (strongly connected components merged
into single nodes) can be computed cheaply relative to the closure of
the condensation (Section 1, citing Yannakakis [28]).  This module
provides that preprocessing so the package as a whole accepts arbitrary
directed graphs:

>>> from repro.graphs.digraph import Digraph
>>> g = Digraph.from_arcs(3, [(0, 1), (1, 0), (1, 2)])
>>> result = condensation(g)
>>> result.dag.num_nodes
2
>>> sorted(result.members[result.component_of[0]])
[0, 1]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import Digraph


def strongly_connected_components(graph: Digraph) -> list[list[int]]:
    """Tarjan's algorithm, iteratively, in reverse topological order.

    The returned components are ordered so that every arc of the
    condensation goes from a later component to an earlier one (i.e.
    the list is a reverse topological order of the condensation).
    """
    n = graph.num_nodes
    UNVISITED = -1
    index_of = [UNVISITED] * n
    lowlink = [0] * n
    on_stack = [False] * n
    scc_stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack[node] = True
            successors = graph.successors(node)
            recursed = False
            while child_index < len(successors):
                child = successors[child_index]
                child_index += 1
                if index_of[child] == UNVISITED:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    recursed = True
                    break
                if on_stack[child] and index_of[child] < lowlink[node]:
                    lowlink[node] = index_of[child]
            if recursed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """The condensation of a directed graph.

    Attributes
    ----------
    dag:
        The acyclic condensation graph; its nodes are component ids.
    component_of:
        ``component_of[v]`` is the component id of original node ``v``.
    members:
        ``members[c]`` lists the original nodes of component ``c``.
    self_loops:
        Original nodes carrying a self-loop arc (they reach themselves
        even when their component is trivial).
    """

    dag: Digraph
    component_of: list[int]
    members: list[list[int]]
    self_loops: frozenset[int]


def condensation(graph: Digraph) -> Condensation:
    """Merge strongly connected components into a DAG."""
    components = strongly_connected_components(graph)
    component_of = [0] * graph.num_nodes
    for comp_id, component in enumerate(components):
        for node in component:
            component_of[node] = comp_id

    arcs = set()
    self_loops = set()
    for src, dst in graph.arcs():
        if src == dst:
            self_loops.add(src)
            continue
        a, b = component_of[src], component_of[dst]
        if a != b:
            arcs.add((a, b))
    dag = Digraph.from_arcs(len(components), arcs)
    return Condensation(
        dag=dag,
        component_of=component_of,
        members=components,
        self_loops=frozenset(self_loops),
    )


def expand_closure_to_original(
    cond: Condensation, component_closure: dict[int, set[int]]
) -> dict[int, set[int]]:
    """Translate a closure over condensation nodes back to original nodes.

    ``component_closure[c]`` must contain the component ids reachable
    from component ``c`` (c itself excluded).  In the original graph a
    node reaches every member of its own component except itself, plus
    every member of every reachable component.
    """
    result: dict[int, set[int]] = {}
    for comp_id, members in enumerate(cond.members):
        reached_nodes: set[int] = set()
        for other in component_closure.get(comp_id, set()):
            reached_nodes.update(cond.members[other])
        nontrivial = len(members) > 1
        for node in members:
            node_reaches = set(reached_nodes)
            if nontrivial:
                # Inside a non-trivial SCC every member (including the
                # node itself) is reachable from every member.
                node_reaches.update(members)
            elif node in cond.self_loops:
                node_reaches.add(node)
            result[node] = node_reaches
    return result
