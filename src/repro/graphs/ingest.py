"""Real-graph ingestion: streaming edge lists into the CSR core.

The paper's evaluation runs on synthetic (n, F, l) DAGs; this module is
the on-ramp for *real* graphs in the SNAP edge-list format (one
``source<whitespace>destination`` pair per line, ``#`` comments), the
lingua franca of public graph collections.  Design constraints:

* **Streaming, bounded memory.**  The loader never materialises
  per-node Python lists: arcs accumulate in two flat ``array('q')``
  columns (16 bytes per arc) and are counting-sorted into the frozen
  CSR :class:`~repro.graphs.digraph.Digraph` in one pass
  (:func:`~repro.graphs.digraph.graph_from_columns`).  Likewise the
  generators below *yield* arcs so a 100k+-node graph can be written
  to disk without ever existing as an object graph.
* **Tolerant input.**  Plain or gzip payload (sniffed from the magic
  bytes, not the file name), ``#``/``%`` comment lines, blank lines,
  trailing columns (weights) ignored, duplicate arcs collapsed,
  self-loops dropped -- each tallied in :class:`IngestStats`.
* **Id compaction.**  External node ids need not be ``0..n-1`` -- they
  may be sparse integers or arbitrary strings.  Ids are compacted to
  the dense internal range by sorted order (numeric when every id
  parses as an integer, lexicographic otherwise), which makes the
  mapping a pure function of the id *set* -- independent of arc order
  in the file.  Files whose ids are already exactly ``0..n-1`` load
  with the identity mapping and no translation table.
* **Cycles are data.**  Real edge lists are rarely acyclic.  The
  loader records acyclicity in the stats and, with ``condense=True``,
  attaches the existing condensation
  (:mod:`repro.graphs.condensation`) so component-DAG pipelines can
  proceed; index builds via
  :func:`repro.core.chains.build_chain_index` condense on their own.
"""

from __future__ import annotations

import gzip
import io
import random
import re
from array import array
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError, IngestError
from repro.graphs.condensation import Condensation, condensation
from repro.graphs.digraph import Digraph, graph_from_columns
from repro.graphs.generator import iter_paper_arcs
from repro.graphs.toposort import is_acyclic

COMMENT_PREFIXES = ("#", "%")
"""Line prefixes treated as comments (SNAP uses ``#``, KONECT ``%``)."""

GZIP_MAGIC = b"\x1f\x8b"


@dataclass(frozen=True)
class IngestStats:
    """Tallies from one :func:`load_snap` pass.

    ``arc_lines`` counts edge lines parsed (including self-loops and
    duplicates); ``arcs`` is the final graph's deduplicated arc count,
    so ``arc_lines == arcs + self_loops + duplicate_arcs`` always
    holds.
    """

    nodes: int
    arcs: int
    arc_lines: int
    comment_lines: int
    blank_lines: int
    self_loops: int
    duplicate_arcs: int
    compacted: bool
    acyclic: bool
    condensed: bool = False
    components: int = 0

    def as_dict(self) -> dict[str, object]:
        """The stats as a JSON-ready mapping."""
        return {
            "nodes": self.nodes,
            "arcs": self.arcs,
            "arc_lines": self.arc_lines,
            "comment_lines": self.comment_lines,
            "blank_lines": self.blank_lines,
            "self_loops": self.self_loops,
            "duplicate_arcs": self.duplicate_arcs,
            "compacted": self.compacted,
            "acyclic": self.acyclic,
            "condensed": self.condensed,
            "components": self.components,
        }


@dataclass
class IngestResult:
    """A loaded graph plus its ingestion stats and id translation.

    ``external_ids[internal]`` is the original file id of each internal
    node (``None`` when the file's ids were already the dense
    ``0..n-1`` integers).  ``condensation`` is attached only when
    ``condense=True`` was requested *and* the graph is cyclic.
    """

    graph: Digraph
    stats: IngestStats
    external_ids: tuple[int | str, ...] | None = None
    condensation: Condensation | None = None
    _index: dict[int | str, int] | None = field(
        default=None, repr=False, compare=False
    )

    def internal_id(self, external: int | str) -> int:
        """Map a file-side node id to its internal ``0..n-1`` id."""
        if self.external_ids is None:
            node = int(external)
            if not 0 <= node < self.graph.num_nodes:
                raise IngestError(
                    f"node id {external!r} outside the ingested range "
                    f"0..{self.graph.num_nodes - 1}"
                )
            return node
        if self._index is None:
            self._index = {
                token: node for node, token in enumerate(self.external_ids)
            }
        for key in (external, str(external)):
            found = self._index.get(key)
            if found is not None:
                return found
        try:
            found = self._index.get(int(external))
            if found is not None:
                return found
        except (TypeError, ValueError):
            pass
        raise IngestError(f"node id {external!r} not present in the ingested graph")

    def external_id(self, node: int) -> int | str:
        """Map an internal node id back to the file's id."""
        if self.external_ids is None:
            if not 0 <= node < self.graph.num_nodes:
                raise IngestError(
                    f"node {node} outside the ingested range "
                    f"0..{self.graph.num_nodes - 1}"
                )
            return node
        return self.external_ids[node]


def _open_text(path: Path) -> io.TextIOWrapper:
    """Open a possibly-gzipped edge list as text, sniffing the magic."""
    raw = open(path, "rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
        if magic == GZIP_MAGIC:
            return io.TextIOWrapper(
                gzip.GzipFile(fileobj=raw), encoding="utf-8", errors="replace"
            )
        return io.TextIOWrapper(raw, encoding="utf-8", errors="replace")
    except Exception:
        raw.close()
        raise


_NODES_HEADER = re.compile(r"nodes:\s*(\d+)", re.IGNORECASE)


def load_snap(
    path: str | Path,
    *,
    condense: bool = False,
    num_nodes: int | None = None,
) -> IngestResult:
    """Stream a SNAP-format edge list into a frozen CSR graph.

    One pass over the file accumulates arcs as flat integer columns and
    first-seen id slots; ids are then compacted (sorted order), the
    columns relabelled in place, and the CSR built by counting sort --
    peak memory is O(nodes + arcs) machine integers, never per-node
    Python lists.

    ``num_nodes`` declares the graph's node count up front; a
    ``# nodes: N`` comment line (as :func:`write_snap` emits and SNAP
    headers approximate) serves the same role when the parameter is
    omitted.  The declared count is honoured only when every id is an
    integer already in ``0..N-1`` -- then the ids are kept verbatim
    (isolated nodes survive the round-trip, which a bare edge list
    cannot express); otherwise ids are compacted as usual and the
    declaration is ignored.

    Raises
    ------
    IngestError
        On an edge line with fewer than two fields, with the line
        number.
    """
    path = Path(path)
    slots: dict[str, int] = {}
    srcs = array("q")
    dsts = array("q")
    declared = num_nodes
    arc_lines = comment_lines = blank_lines = self_loops = 0
    with _open_text(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            text = line.strip()
            if not text:
                blank_lines += 1
                continue
            if text.startswith(COMMENT_PREFIXES):
                comment_lines += 1
                if declared is None:
                    header = _NODES_HEADER.search(text)
                    if header is not None:
                        declared = int(header.group(1))
                continue
            columns = text.split()
            if len(columns) < 2:
                raise IngestError(
                    f"{path}: line {lineno}: expected 'src dst', got {text!r}"
                )
            arc_lines += 1
            src = slots.setdefault(columns[0], len(slots))
            dst = slots.setdefault(columns[1], len(slots))
            if src == dst:
                self_loops += 1
                continue
            srcs.append(src)
            dsts.append(dst)

    num_seen = len(slots)
    tokens = list(slots)  # tokens[slot] = token, by first-seen insertion order
    int_values: list[int] | None = []
    for token in tokens:
        try:
            int_values.append(int(token, 10))
        except ValueError:
            int_values = None
            break

    total_nodes = num_seen
    if (
        declared is not None
        and int_values is not None
        and num_seen <= declared
        and all(0 <= value < declared for value in int_values)
        and len(set(int_values)) == num_seen
    ):
        # The declared count covers every id: keep ids verbatim, sized
        # to the declaration (isolated nodes included).
        total_nodes = declared
        identity = True
        perm = array("q", int_values)
    elif int_values is not None:
        # Numeric sort; the token itself breaks ties ("07" vs "7" stay
        # distinct nodes, deterministically ordered).
        order = sorted(range(num_seen), key=lambda s: (int_values[s], tokens[s]))
        identity = all(int_values[slot] == rank for rank, slot in enumerate(order))
        perm = array("q", bytes(8 * num_seen))
        for rank, slot in enumerate(order):
            perm[slot] = rank
    else:
        order = sorted(range(num_seen), key=tokens.__getitem__)
        identity = False
        perm = array("q", bytes(8 * num_seen))
        for rank, slot in enumerate(order):
            perm[slot] = rank

    if any(perm[slot] != slot for slot in range(num_seen)):
        for position in range(len(srcs)):
            srcs[position] = perm[srcs[position]]
            dsts[position] = perm[dsts[position]]

    graph = graph_from_columns(total_nodes, srcs, dsts)
    acyclic = is_acyclic(graph)
    cond = condensation(graph) if condense and not acyclic else None

    external_ids: tuple[int | str, ...] | None = None
    if not identity:
        if int_values is not None:
            # Canonical integer spellings become ints; a non-canonical
            # token ("07", "+3") stays a string so it never collides
            # with the node whose id *is* that integer.
            external_ids = tuple(
                value if str(value) == tokens[slot] else tokens[slot]
                for slot in order
                for value in (int_values[slot],)
            )
        else:
            external_ids = tuple(tokens[slot] for slot in order)

    stats = IngestStats(
        nodes=total_nodes,
        arcs=graph.num_arcs,
        arc_lines=arc_lines,
        comment_lines=comment_lines,
        blank_lines=blank_lines,
        self_loops=self_loops,
        duplicate_arcs=len(srcs) - graph.num_arcs,
        compacted=not identity,
        acyclic=acyclic,
        condensed=cond is not None,
        components=len(cond.members) if cond is not None else 0,
    )
    return IngestResult(
        graph=graph, stats=stats, external_ids=external_ids, condensation=cond
    )


def write_snap(
    path: str | Path,
    arcs: Iterable[tuple[int, int]],
    *,
    comments: Iterable[str] = (),
) -> int:
    """Stream arcs to a SNAP edge list; gzip when the name ends ``.gz``.

    Each comment line is prefixed with ``# ``; returns the number of
    arc lines written.  The arc iterable is consumed exactly once, so a
    multi-million-arc generator writes in constant memory.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as stream:
        for comment in comments:
            stream.write(f"# {comment}\n")
        for src, dst in arcs:
            stream.write(f"{src}\t{dst}\n")
            count += 1
    return count


# -- streaming DAG generators --------------------------------------------------


def stream_paper_dag(
    num_nodes: int,
    avg_out_degree: float,
    locality: int,
    seed: int | None = None,
) -> Iterator[tuple[int, int]]:
    """The paper's (n, F, l) arc stream, identical to ``generate_dag``.

    Re-exported from :mod:`repro.graphs.generator` so ingestion
    pipelines (write a big synthetic graph to disk, load it back) have
    one import surface; the stream and the in-memory generator share
    the same pseudo-random draw sequence, so a written-then-loaded
    graph equals the generated one.
    """
    return iter_paper_arcs(num_nodes, avg_out_degree, locality, seed=seed)


def iter_braided_arcs(
    num_chains: int,
    chain_length: int,
    *,
    shortcut_span: int = 64,
    shortcuts_per_node: int = 7,
    cross_links_per_chain: int = 40,
    seed: int = 0,
) -> Iterator[tuple[int, int]]:
    """Stream a "braided chains" DAG: big, sparse, chain-index friendly.

    ``num_chains`` parallel chains of ``chain_length`` nodes each (node
    ``(c, i)`` is id ``c * chain_length + i``), with three arc kinds:

    * the chain arcs ``(c, i) -> (c, i+1)``;
    * per node, up to ``shortcuts_per_node`` *within-chain* shortcuts to
      unique positions in ``[i+2, i+shortcut_span]`` -- they multiply
      the arc count without changing any chain-index vector (the
      minimal position reachable in the own chain is already ``i``);
    * per chain, ``cross_links_per_chain`` arcs into the *next* chain
      at random positions -- so a node reaches at most the chains after
      its own, keeping every k-vector at ``<= num_chains`` entries.

    The paper's (n, F, l) model goes dense at 100k+ nodes (closures,
    and so chain vectors, blow up quadratically); this family is the
    scale fixture -- ~1M arcs at 125k nodes with bounded vectors --
    and, like everything here, it is a pure function of its parameters
    and seed, streamed in O(1) memory.
    """
    if num_chains < 1:
        raise ConfigurationError(f"num_chains must be at least 1, got {num_chains}")
    if chain_length < 2:
        raise ConfigurationError(
            f"chain_length must be at least 2, got {chain_length}"
        )
    if shortcut_span < 2:
        raise ConfigurationError(
            f"shortcut_span must be at least 2, got {shortcut_span}"
        )
    if shortcuts_per_node < 0 or cross_links_per_chain < 0:
        raise ConfigurationError("shortcut and cross-link counts must be >= 0")
    rng = random.Random(seed)
    length = chain_length
    for chain in range(num_chains):
        base = chain * length
        for position in range(length - 1):
            node = base + position
            yield node, node + 1
            low = position + 2
            high = min(position + shortcut_span, length - 1)
            if low <= high:
                take = min(shortcuts_per_node, high - low + 1)
                if take:
                    for target in sorted(rng.sample(range(low, high + 1), take)):
                        yield node, base + target
        if chain + 1 < num_chains:
            next_base = base + length
            for position in sorted(
                rng.sample(range(length), min(cross_links_per_chain, length))
            ):
                yield base + position, next_base + rng.randrange(length)


# -- the ingestion dataset registry --------------------------------------------


@dataclass(frozen=True)
class StreamFamily:
    """A named, deterministic arc stream for ingestion pipelines.

    ``arcs()`` yields the family's arc stream from scratch each call;
    ``num_nodes`` is the exact node count of the streamed graph.  The
    registry complements ``GRAPH_FAMILIES`` (the paper's in-memory
    G1..G12 suite) with ingestion-scale workloads that exist as files,
    not objects.
    """

    name: str
    description: str
    num_nodes: int
    _make: Callable[[], Iterator[tuple[int, int]]]

    def arcs(self) -> Iterator[tuple[int, int]]:
        """A fresh iterator over the family's arc stream."""
        return self._make()

    def write(self, path: str | Path) -> int:
        """Write the family to ``path`` as SNAP; returns the arc count."""
        return write_snap(
            path,
            self.arcs(),
            comments=(
                f"repro ingest fixture: {self.name}",
                self.description,
                f"nodes: {self.num_nodes}",
            ),
        )


STREAM_FAMILIES: tuple[StreamFamily, ...] = (
    StreamFamily(
        name="paper-2k",
        description="the paper's G6 shape (n=2000, F=5, l=200), streamed",
        num_nodes=2000,
        _make=lambda: stream_paper_dag(2000, 5, 200, seed=0),
    ),
    StreamFamily(
        name="braid-10k",
        description="10 braided chains of 1000 nodes (~80k arcs)",
        num_nodes=10_000,
        _make=lambda: iter_braided_arcs(10, 1000, seed=0),
    ),
    StreamFamily(
        name="braid-125k",
        description="25 braided chains of 5000 nodes (~1.1M arcs)",
        num_nodes=125_000,
        _make=lambda: iter_braided_arcs(25, 5000, shortcuts_per_node=8, seed=0),
    ),
)


def stream_family(name: str) -> StreamFamily:
    """Look up an ingestion stream family by name."""
    for family in STREAM_FAMILIES:
        if family.name.lower() == name.lower():
            return family
    valid = ", ".join(family.name for family in STREAM_FAMILIES)
    raise ConfigurationError(
        f"unknown ingest family {name!r}; valid families: {valid}"
    )
