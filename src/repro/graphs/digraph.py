"""A compact directed-graph type.

Nodes are the integers ``0 .. n-1`` and arcs are ordered pairs stored in
per-node successor lists.  This is deliberately minimal: the heavy
machinery (paged storage, buffer management) lives in
:mod:`repro.storage`; :class:`Digraph` is only the logical graph handed
to the generator, the analysis routines and the algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import InvalidNodeError


class Digraph:
    """A directed graph over nodes ``0 .. n-1``.

    Successor lists are kept sorted and duplicate-free, matching the
    paper's input relations (duplicate tuples produced by the graph
    generation routine were eliminated, Section 5.3, footnote 1).
    """

    __slots__ = ("_succ", "_pred", "_arc_count")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise InvalidNodeError(f"number of nodes must be non-negative, got {num_nodes}")
        self._succ: list[list[int]] = [[] for _ in range(num_nodes)]
        self._pred: list[list[int]] | None = None
        self._arc_count = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_arcs(cls, num_nodes: int, arcs: Iterable[tuple[int, int]]) -> "Digraph":
        """Build a graph from an iterable of (source, destination) arcs.

        Duplicate arcs are silently collapsed.
        """
        graph = cls(num_nodes)
        by_source: dict[int, set[int]] = {}
        for src, dst in arcs:
            graph._check(src)
            graph._check(dst)
            by_source.setdefault(src, set()).add(dst)
        for src, dsts in by_source.items():
            graph._succ[src] = sorted(dsts)
            graph._arc_count += len(dsts)
        return graph

    def add_arc(self, src: int, dst: int) -> bool:
        """Add the arc (src, dst); return ``False`` if already present."""
        self._check(src)
        self._check(dst)
        successors = self._succ[src]
        lo, hi = 0, len(successors)
        while lo < hi:
            mid = (lo + hi) // 2
            if successors[mid] < dst:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(successors) and successors[lo] == dst:
            return False
        successors.insert(lo, dst)
        self._arc_count += 1
        self._pred = None
        return True

    # -- accessors -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes (``n`` in the paper)."""
        return len(self._succ)

    @property
    def num_arcs(self) -> int:
        """Number of arcs (``|G|`` in the paper)."""
        return self._arc_count

    def successors(self, node: int) -> list[int]:
        """The sorted immediate successors of ``node``.

        The returned list is the graph's own; callers must not mutate it.
        """
        self._check(node)
        return self._succ[node]

    def predecessors(self, node: int) -> list[int]:
        """The sorted immediate predecessors of ``node`` (computed lazily)."""
        self._check(node)
        if self._pred is None:
            pred: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for src in range(self.num_nodes):
                for dst in self._succ[src]:
                    pred[dst].append(src)
            self._pred = pred
        return self._pred[node]

    def out_degree(self, node: int) -> int:
        """Number of immediate successors of ``node``."""
        self._check(node)
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        """Number of immediate predecessors of ``node``."""
        return len(self.predecessors(node))

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all arcs in (source, destination) order."""
        for src in range(self.num_nodes):
            for dst in self._succ[src]:
                yield src, dst

    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self.num_nodes)

    def adjacency_lists(self) -> dict[int, list[int]]:
        """A fresh ``{node: [successors...]}`` mapping of the whole graph.

        Every list is a copy, so callers may rewrite the mapping freely
        (the restructuring phase hands it to the algorithms, and BJ's
        single-parent reduction mutates it in place).
        """
        return {node: list(children) for node, children in enumerate(self._succ)}

    def has_arc(self, src: int, dst: int) -> bool:
        """Whether the arc (src, dst) is present."""
        self._check(src)
        self._check(dst)
        successors = self._succ[src]
        lo, hi = 0, len(successors)
        while lo < hi:
            mid = (lo + hi) // 2
            if successors[mid] < dst:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(successors) and successors[lo] == dst

    def reverse(self) -> "Digraph":
        """A new graph with every arc reversed."""
        return Digraph.from_arcs(self.num_nodes, ((dst, src) for src, dst in self.arcs()))

    def induced_subgraph(self, nodes: Iterable[int]) -> "Digraph":
        """The subgraph induced by ``nodes``, keeping original node ids.

        Arcs with either endpoint outside ``nodes`` are dropped; the
        node-id space stays ``0 .. n-1`` so that analyses and storage
        layouts remain comparable with the parent graph.
        """
        keep = set(nodes)
        for node in keep:
            self._check(node)
        arcs = (
            (src, dst)
            for src in keep
            for dst in self._succ[src]
            if dst in keep
        )
        return Digraph.from_arcs(self.num_nodes, arcs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self._succ == other._succ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Digraph(n={self.num_nodes}, arcs={self.num_arcs})"

    # -- internals -----------------------------------------------------------

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._succ):
            raise InvalidNodeError(
                f"node {node} outside the graph's range 0..{len(self._succ) - 1}"
            )
