"""A compact directed-graph type over a frozen CSR arc store.

Nodes are the integers ``0 .. n-1`` and arcs live in a *compressed
sparse row* (CSR) layout: one ``array('q')`` of row offsets (length
``n + 1``) and one of arc targets (length ``m``), with an on-demand
reverse CSR for predecessor queries.  Successor rows are handed out as
zero-copy read-only ``memoryview`` slices (:class:`ArcView`), so the
graph is structurally immutable from the caller's side -- there is no
internal list to alias and mutate by accident.

This is deliberately minimal: the heavy machinery (paged storage,
buffer management) lives in :mod:`repro.storage`; :class:`Digraph` is
only the logical graph handed to the generator, the analysis routines
and the algorithms.  Incremental construction goes through
:class:`DigraphBuilder` (bulk, bounded-memory) or the compatibility
:meth:`Digraph.add_arc` overlay (small graphs, tests).
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import InvalidNodeError

_EMPTY_TARGETS = array("q")


class ArcView(Sequence[int]):
    """A read-only, sorted run of node ids backed by a CSR slice.

    Behaves like the successor list the pre-CSR ``Digraph`` handed out
    (indexing, slicing, iteration, ``in`` via binary search, equality
    with lists/tuples) except that mutation is structurally impossible:
    there is no ``append``/``__setitem__``, and the underlying
    ``memoryview`` is read-only.
    """

    __slots__ = ("_view",)

    def __init__(self, view: memoryview) -> None:
        self._view = view

    def __len__(self) -> int:
        return len(self._view)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return ArcView(self._view[index])
        return self._view[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._view)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int):
            return False
        view = self._view
        lo, hi = 0, len(view)
        while lo < hi:
            mid = (lo + hi) // 2
            if view[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(view) and view[lo] == value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArcView):
            return self._view == other._view
        if isinstance(other, (list, tuple)):
            view = self._view
            return len(view) == len(other) and all(
                mine == theirs for mine, theirs in zip(view, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._view))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArcView({list(self._view)!r})"


class Digraph:
    """A directed graph over nodes ``0 .. n-1``.

    Successor rows are sorted and duplicate-free, matching the paper's
    input relations (duplicate tuples produced by the graph generation
    routine were eliminated, Section 5.3, footnote 1).

    The arc store is a frozen CSR; :meth:`add_arc` is supported as a
    *pending overlay* that is merged back into the CSR lazily on the
    next read, so test-style interleaved construction keeps working
    while bulk construction (:class:`DigraphBuilder`,
    :meth:`from_arcs`) pays exactly one array build.
    """

    __slots__ = ("_offsets", "_targets", "_mv", "_rev", "_pending", "_arc_count")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise InvalidNodeError(f"number of nodes must be non-negative, got {num_nodes}")
        self._offsets = array("q", bytes(8 * (num_nodes + 1)))
        self._targets = _EMPTY_TARGETS
        self._mv = memoryview(self._targets).toreadonly()
        self._rev: tuple[array, array] | None = None
        self._pending: set[tuple[int, int]] = set()
        self._arc_count = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_arcs(cls, num_nodes: int, arcs: Iterable[tuple[int, int]]) -> "Digraph":
        """Build a graph from an iterable of (source, destination) arcs.

        Duplicate arcs are silently collapsed.
        """
        builder = DigraphBuilder(num_nodes)
        for src, dst in arcs:
            builder.add_arc(src, dst)
        return builder.freeze()

    @classmethod
    def _from_csr(cls, num_nodes: int, offsets: array, targets: array) -> "Digraph":
        """Adopt already-built CSR arrays (sorted, duplicate-free rows).

        The arrays become the graph's own storage; callers hand over
        ownership and must not mutate them afterwards.
        """
        graph = cls.__new__(cls)
        graph._offsets = offsets
        graph._targets = targets
        graph._mv = memoryview(targets).toreadonly()
        graph._rev = None
        graph._pending = set()
        graph._arc_count = len(targets)
        return graph

    def add_arc(self, src: int, dst: int) -> bool:
        """Add the arc (src, dst); return ``False`` if already present."""
        self._check(src)
        self._check(dst)
        if (src, dst) in self._pending or self._sealed_has(src, dst):
            return False
        self._pending.add((src, dst))
        self._arc_count += 1
        self._rev = None
        return True

    # -- accessors -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes (``n`` in the paper)."""
        return len(self._offsets) - 1

    @property
    def num_arcs(self) -> int:
        """Number of arcs (``|G|`` in the paper)."""
        return self._arc_count

    @property
    def csr_offsets(self) -> memoryview:
        """Read-only row-offset array of the sealed CSR (length ``n + 1``)."""
        self._seal()
        return memoryview(self._offsets).toreadonly()

    @property
    def csr_targets(self) -> memoryview:
        """Read-only arc-target array of the sealed CSR (length ``m``)."""
        self._seal()
        return self._mv

    def successors(self, node: int) -> ArcView:
        """The sorted immediate successors of ``node``.

        Zero-copy: the returned :class:`ArcView` windows the graph's CSR
        directly and is structurally immutable.
        """
        self._check(node)
        self._seal()
        return ArcView(self._mv[self._offsets[node] : self._offsets[node + 1]])

    def predecessors(self, node: int) -> ArcView:
        """The sorted immediate predecessors of ``node`` (computed lazily)."""
        self._check(node)
        roffsets, rmv = self._reverse_csr()
        return ArcView(rmv[roffsets[node] : roffsets[node + 1]])

    def out_degree(self, node: int) -> int:
        """Number of immediate successors of ``node``."""
        self._check(node)
        self._seal()
        return self._offsets[node + 1] - self._offsets[node]

    def in_degree(self, node: int) -> int:
        """Number of immediate predecessors of ``node``."""
        self._check(node)
        roffsets, _ = self._reverse_csr()
        return roffsets[node + 1] - roffsets[node]

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all arcs in (source, destination) order."""
        self._seal()
        offsets, targets = self._offsets, self._targets
        for src in range(self.num_nodes):
            for position in range(offsets[src], offsets[src + 1]):
                yield src, targets[position]

    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self.num_nodes)

    def adjacency_lists(self) -> dict[int, list[int]]:
        """A fresh ``{node: [successors...]}`` mapping of the whole graph.

        Every list is a copy, so callers may rewrite the mapping freely
        (BJ's single-parent reduction mutates it in place).  Algorithms
        that only *read* adjacency should prefer
        :meth:`adjacency_rows`, which skips the copies.
        """
        self._seal()
        offsets, targets = self._offsets, self._targets
        return {
            node: targets[offsets[node] : offsets[node + 1]].tolist()
            for node in range(self.num_nodes)
        }

    def adjacency_rows(self) -> dict[int, ArcView]:
        """A ``{node: successors}`` mapping of zero-copy CSR rows.

        The rows are read-only windows onto the graph's arrays -- no
        per-node list is materialised.  Callers that mutate adjacency
        (only BJ does) must use :meth:`adjacency_lists` instead.
        """
        self._seal()
        offsets, mv = self._offsets, self._mv
        return {
            node: ArcView(mv[offsets[node] : offsets[node + 1]])
            for node in range(self.num_nodes)
        }

    def has_arc(self, src: int, dst: int) -> bool:
        """Whether the arc (src, dst) is present."""
        self._check(src)
        self._check(dst)
        return (src, dst) in self._pending or self._sealed_has(src, dst)

    def reverse(self) -> "Digraph":
        """A new graph with every arc reversed."""
        roffsets, rtargets = self._reverse_arrays()
        return Digraph._from_csr(self.num_nodes, array("q", roffsets), array("q", rtargets))

    def induced_subgraph(self, nodes: Iterable[int]) -> "Digraph":
        """The subgraph induced by ``nodes``, keeping original node ids.

        Arcs with either endpoint outside ``nodes`` are dropped; the
        node-id space stays ``0 .. n-1`` so that analyses and storage
        layouts remain comparable with the parent graph.
        """
        keep = set(nodes)
        for node in keep:
            self._check(node)
        self._seal()
        offsets, targets = self._offsets, self._targets
        builder = DigraphBuilder(self.num_nodes)
        for src in keep:
            for position in range(offsets[src], offsets[src + 1]):
                dst = targets[position]
                if dst in keep:
                    builder.add_arc(src, dst)
        return builder.freeze()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        self._seal()
        other._seal()
        return self._offsets == other._offsets and self._targets == other._targets

    def __reduce__(self) -> tuple[Any, ...]:
        self._seal()
        return (Digraph._from_csr, (self.num_nodes, self._offsets, self._targets))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Digraph(n={self.num_nodes}, arcs={self.num_arcs})"

    # -- internals -----------------------------------------------------------

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._offsets) - 1:
            raise InvalidNodeError(
                f"node {node} outside the graph's range 0..{len(self._offsets) - 2}"
            )

    def _sealed_has(self, src: int, dst: int) -> bool:
        targets = self._targets
        lo, hi = self._offsets[src], self._offsets[src + 1]
        while lo < hi:
            mid = (lo + hi) // 2
            if targets[mid] < dst:
                lo = mid + 1
            else:
                hi = mid
        return lo < self._offsets[src + 1] and targets[lo] == dst

    def _seal(self) -> None:
        """Merge the pending-arc overlay into fresh CSR arrays.

        A fresh allocation (never ``array.extend``) is mandatory: live
        :class:`ArcView` handles hold buffer exports over the old
        targets array, and resizing an exported ``array`` raises
        ``BufferError``.  Old views stay valid over the old arrays.
        """
        if not self._pending:
            return
        pending = sorted(self._pending)
        num_nodes = self.num_nodes
        old_offsets, old_targets = self._offsets, self._targets
        new_offsets = array("q", bytes(8 * (num_nodes + 1)))
        new_targets = array("q", bytes(8 * (len(old_targets) + len(pending))))
        out = 0
        take = 0  # cursor into the sorted pending arcs
        for node in range(num_nodes):
            position = old_offsets[node]
            end = old_offsets[node + 1]
            while take < len(pending) and pending[take][0] == node:
                dst = pending[take][1]
                while position < end and old_targets[position] < dst:
                    new_targets[out] = old_targets[position]
                    position += 1
                    out += 1
                new_targets[out] = dst
                out += 1
                take += 1
            while position < end:
                new_targets[out] = old_targets[position]
                position += 1
                out += 1
            new_offsets[node + 1] = out
        self._offsets = new_offsets
        self._targets = new_targets
        self._mv = memoryview(new_targets).toreadonly()
        self._pending = set()

    def _reverse_arrays(self) -> tuple[array, array]:
        """The reverse CSR (predecessor rows), built once and cached.

        A counting sort over the forward arcs: scattering targets in
        (source asc, target asc) order leaves every reverse row sorted.
        """
        self._seal()
        if self._rev is None:
            num_nodes = self.num_nodes
            offsets, targets = self._offsets, self._targets
            roffsets = array("q", bytes(8 * (num_nodes + 1)))
            for dst in targets:
                roffsets[dst + 1] += 1
            for node in range(num_nodes):
                roffsets[node + 1] += roffsets[node]
            rtargets = array("q", bytes(8 * len(targets)))
            cursor = array("q", roffsets[:num_nodes])
            for src in range(num_nodes):
                for position in range(offsets[src], offsets[src + 1]):
                    dst = targets[position]
                    rtargets[cursor[dst]] = src
                    cursor[dst] += 1
            self._rev = (roffsets, rtargets)
        return self._rev

    def _reverse_csr(self) -> tuple[array, memoryview]:
        roffsets, rtargets = self._reverse_arrays()
        return roffsets, memoryview(rtargets).toreadonly()


class DigraphBuilder:
    """A mutable arc accumulator that freezes into a CSR :class:`Digraph`.

    Arcs are appended to two flat ``array('q')`` columns (source,
    target) -- 16 bytes per arc, no per-node Python lists -- and
    :meth:`freeze` counting-sorts them into the final CSR, sorting and
    de-duplicating each row.  With a declared node count, out-of-range
    endpoints are rejected exactly like ``Digraph.add_arc``; without
    one the node space grows to ``max endpoint + 1`` (use
    :meth:`ensure_node` to widen it past the arcs, e.g. for isolated
    trailing nodes).
    """

    __slots__ = ("_srcs", "_dsts", "_declared", "_max_node")

    def __init__(self, num_nodes: int | None = None) -> None:
        if num_nodes is not None and num_nodes < 0:
            raise InvalidNodeError(f"number of nodes must be non-negative, got {num_nodes}")
        self._srcs = array("q")
        self._dsts = array("q")
        self._declared = num_nodes
        self._max_node = -1

    @property
    def num_nodes(self) -> int:
        """The node count :meth:`freeze` will produce."""
        if self._declared is not None:
            return self._declared
        return self._max_node + 1

    def __len__(self) -> int:
        """Arcs appended so far (duplicates not yet collapsed)."""
        return len(self._srcs)

    def ensure_node(self, node: int) -> None:
        """Widen the frozen graph's node space to include ``node``."""
        self._check(node)
        if node > self._max_node:
            self._max_node = node

    def add_arc(self, src: int, dst: int) -> None:
        """Append the arc (src, dst); duplicates collapse at freeze."""
        self._check(src)
        self._check(dst)
        self._srcs.append(src)
        self._dsts.append(dst)
        if src > self._max_node:
            self._max_node = src
        if dst > self._max_node:
            self._max_node = dst

    def add_arcs(self, arcs: Iterable[tuple[int, int]]) -> None:
        """Append every arc from ``arcs``."""
        for src, dst in arcs:
            self.add_arc(src, dst)

    def freeze(self) -> Digraph:
        """Counting-sort the arc columns into a frozen CSR graph.

        The builder may be reused afterwards (the arrays are copied out
        by the scatter pass), though callers typically discard it.
        """
        return graph_from_columns(self.num_nodes, self._srcs, self._dsts)

    def _check(self, node: int) -> None:
        if self._declared is not None:
            if not 0 <= node < self._declared:
                raise InvalidNodeError(
                    f"node {node} outside the graph's range 0..{self._declared - 1}"
                )
        elif node < 0:
            raise InvalidNodeError(f"node {node} outside the graph's range 0..")


def graph_from_columns(num_nodes: int, srcs: array, dsts: array) -> Digraph:
    """Counting-sort two flat arc columns into a frozen CSR graph.

    ``srcs[i] -> dsts[i]`` are the arcs, already within ``0 ..
    num_nodes - 1``; duplicates are collapsed.  This is the shared
    freeze path of :class:`DigraphBuilder` and the streaming ingestion
    loader (:mod:`repro.graphs.ingest`), which both accumulate arcs as
    16 bytes per arc instead of per-node Python lists.  The input
    columns are not modified.
    """
    offsets = array("q", bytes(8 * (num_nodes + 1)))
    for src in srcs:
        offsets[src + 1] += 1
    for node in range(num_nodes):
        offsets[node + 1] += offsets[node]
    scattered = array("q", bytes(8 * len(dsts)))
    cursor = array("q", offsets[:num_nodes])
    for src, dst in zip(srcs, dsts):
        scattered[cursor[src]] = dst
        cursor[src] += 1
    # Sort + de-duplicate each row in place, compacting with a write
    # cursor (always <= the row being read, so no clobbering).
    final_offsets = array("q", bytes(8 * (num_nodes + 1)))
    write = 0
    for node in range(num_nodes):
        row = scattered[offsets[node] : offsets[node + 1]].tolist()
        row.sort()
        previous: int | None = None
        for dst in row:
            if dst != previous:
                scattered[write] = dst
                write += 1
                previous = dst
        final_offsets[node + 1] = write
    return Digraph._from_csr(num_nodes, final_offsets, scattered[:write])
