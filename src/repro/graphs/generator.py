"""Synthetic DAG workload generator.

Section 5.2 of the paper: graphs are generated from three parameters --
the number of nodes ``n``, the average out-degree ``F`` and the
*generation locality* ``l``.

* The out-degree of each node is drawn uniformly from ``[0, 2F]``.
* Arcs out of node ``i`` go to uniformly chosen higher-numbered nodes in
  the inclusive range ``[i+1, min(i+l, n-1)]`` -- this is the 0-based
  form of the paper's 1-based ``[i+1, min(i+l, n)]``; the last node
  (``n-1`` here, ``n`` in the paper) is always an admissible target and
  never a source.  Arcs only ever point forward, which makes the graph
  acyclic by construction.
* Duplicate arcs are eliminated, and the locality bounds the achievable
  out-degree (footnote 1 of the paper), so the realised arc count can be
  below ``n * F`` -- especially for G10 (F=50, l=20).
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator

from repro.errors import ConfigurationError
from repro.graphs.digraph import Digraph, DigraphBuilder


def _require_int(name: str, value: object) -> int:
    """Coerce an integral parameter, rejecting bools and non-integers."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be an integer, got {value!r} ({type(value).__name__})"
        )
    if isinstance(value, float):
        if not value.is_integer():
            raise ConfigurationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    return value


def generate_dag(
    num_nodes: int,
    avg_out_degree: float,
    locality: int,
    seed: int | None = None,
) -> Digraph:
    """Generate a random DAG with the paper's (n, F, l) parameterisation.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n`` (the paper uses 2000).
    avg_out_degree:
        The parameter ``F``; each node's target out-degree is uniform on
        the integers ``0 .. 2F``.
    locality:
        The generation locality ``l``; arcs out of node ``i`` reach at
        most ``l`` positions ahead.
    seed:
        Seed for the pseudo-random generator.  Runs with the same seed
        and parameters produce identical graphs.
    """
    num_nodes = _require_int("num_nodes", num_nodes)
    locality = _require_int("locality", locality)
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    if isinstance(avg_out_degree, bool) or not isinstance(avg_out_degree, (int, float)):
        raise ConfigurationError(
            f"avg_out_degree must be a number, got {avg_out_degree!r} "
            f"({type(avg_out_degree).__name__})"
        )
    if not math.isfinite(avg_out_degree):
        raise ConfigurationError(f"avg_out_degree must be finite, got {avg_out_degree!r}")
    if avg_out_degree < 0:
        raise ConfigurationError(f"avg_out_degree must be non-negative, got {avg_out_degree}")
    if locality < 1:
        raise ConfigurationError(f"locality must be at least 1, got {locality}")

    builder = DigraphBuilder(num_nodes)
    builder.add_arcs(iter_paper_arcs(num_nodes, avg_out_degree, locality, seed=seed))
    return builder.freeze()


def iter_paper_arcs(
    num_nodes: int,
    avg_out_degree: float,
    locality: int,
    seed: int | None = None,
) -> Iterator[tuple[int, int]]:
    """Stream the arcs of :func:`generate_dag` without building the graph.

    Yields the exact (source, target) sequence ``generate_dag`` feeds
    its builder -- same parameters and seed, same pseudo-random draws,
    same arcs -- so a graph streamed to disk (see
    :mod:`repro.graphs.ingest`) and one generated in memory are
    identical.  Parameter validation happens eagerly, before the first
    arc is drawn.
    """
    num_nodes = _require_int("num_nodes", num_nodes)
    locality = _require_int("locality", locality)
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    if isinstance(avg_out_degree, bool) or not isinstance(avg_out_degree, (int, float)):
        raise ConfigurationError(
            f"avg_out_degree must be a number, got {avg_out_degree!r} "
            f"({type(avg_out_degree).__name__})"
        )
    if not math.isfinite(avg_out_degree):
        raise ConfigurationError(f"avg_out_degree must be finite, got {avg_out_degree!r}")
    if avg_out_degree < 0:
        raise ConfigurationError(f"avg_out_degree must be non-negative, got {avg_out_degree}")
    if locality < 1:
        raise ConfigurationError(f"locality must be at least 1, got {locality}")
    return _paper_arc_stream(num_nodes, avg_out_degree, locality, seed)


def _paper_arc_stream(
    num_nodes: int,
    avg_out_degree: float,
    locality: int,
    seed: int | None,
) -> Iterator[tuple[int, int]]:
    rng = random.Random(seed)
    max_degree = int(round(2 * avg_out_degree))
    for node in range(num_nodes):
        last_target = min(node + locality, num_nodes - 1)
        window = last_target - node  # number of admissible targets
        if window <= 0:
            continue
        wanted = rng.randint(0, max_degree)
        if wanted <= 0:
            continue
        if wanted >= window:
            # The locality window caps the out-degree: take every target.
            targets: list[int] | range = range(node + 1, last_target + 1)
        else:
            targets = rng.sample(range(node + 1, last_target + 1), wanted)
        for target in targets:
            yield node, target
