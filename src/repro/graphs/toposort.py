"""Depth-first search, topological sorting and reachability.

The restructuring phase of every algorithm topologically sorts the
(magic) graph (Section 4 of the paper).  All traversals here are
iterative so that deep graphs (G10 has maximum node level 1605 at the
paper's scale) do not overflow Python's recursion limit.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import CyclicGraphError
from repro.graphs.digraph import Digraph


def topological_sort(graph: Digraph, nodes: Iterable[int] | None = None) -> list[int]:
    """Topologically sort ``graph`` (or the induced subset ``nodes``).

    Returns a list in which every arc goes from an earlier to a later
    position.  Ties are broken deterministically by a DFS from the
    lowest-numbered roots, so repeated runs yield identical layouts.

    Raises
    ------
    CyclicGraphError
        If the graph (restricted to ``nodes``) contains a cycle.
    """
    in_scope = None if nodes is None else set(nodes)
    candidates = graph.nodes() if in_scope is None else sorted(in_scope)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in candidates}
    postorder: list[int] = []

    for root in candidates:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_index = stack[-1]
            successors = graph.successors(node)
            advanced = False
            while child_index < len(successors):
                child = successors[child_index]
                child_index += 1
                if in_scope is not None and child not in in_scope:
                    continue
                state = color[child]
                if state == GRAY:
                    raise CyclicGraphError(
                        f"cycle detected through arc ({node}, {child}); "
                        "condense the graph first (repro.graphs.condensation)"
                    )
                if state == WHITE:
                    stack[-1] = (node, child_index)
                    stack.append((child, 0))
                    color[child] = GRAY
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            color[node] = BLACK
            postorder.append(node)

    postorder.reverse()
    return postorder


def is_acyclic(graph: Digraph) -> bool:
    """Whether the graph contains no directed cycle."""
    try:
        topological_sort(graph)
    except CyclicGraphError:
        return False
    return True


def reachable_from(graph: Digraph, sources: Iterable[int]) -> set[int]:
    """All nodes reachable from ``sources``, including the sources.

    This is the node set of the *magic graph* of a selection query
    (Section 2 of the paper).
    """
    seen: set[int] = set()
    stack = list(sources)
    for node in stack:
        graph.successors(node)  # validates the node id
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for child in graph.successors(node):
            if child not in seen:
                stack.append(child)
    return seen
