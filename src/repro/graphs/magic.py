"""The magic subgraph of a selection (partial transitive closure) query.

For a multi-source query with source set ``S``, the *magic graph*
``G_m`` comprises the nodes and arcs reachable from the nodes in ``S``
(Section 2 of the paper).  Every algorithm identifies it during its
restructuring phase, so that the computation phase only expands nodes
that can possibly contribute to the answer.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graphs.digraph import Digraph
from repro.graphs.toposort import reachable_from


@dataclass(frozen=True)
class MagicGraph:
    """Nodes and arcs reachable from a query's source nodes.

    ``nodes`` keeps the original node ids.  ``arcs`` counts the arcs of
    the induced subgraph; because every node in the magic graph is
    reachable from a source, every outgoing arc of a magic node stays
    inside the magic graph, so the arc set is exactly the union of the
    magic nodes' successor lists.
    """

    sources: tuple[int, ...]
    nodes: frozenset[int]
    num_arcs: int

    def __contains__(self, node: int) -> bool:
        return node in self.nodes


def magic_subgraph(graph: Digraph, sources: Iterable[int]) -> MagicGraph:
    """Identify the magic graph of a selection query over ``graph``."""
    source_tuple = tuple(dict.fromkeys(sources))  # de-dup, keep order
    nodes = reachable_from(graph, source_tuple)
    num_arcs = sum(len(graph.successors(node)) for node in nodes)
    return MagicGraph(sources=source_tuple, nodes=frozenset(nodes), num_arcs=num_arcs)
