"""DAG statistics and the rectangle model (Section 5.3 of the paper).

Definitions reproduced here:

* ``level(i)`` is 1 for a sink and ``1 + max(level(j) for children j)``
  otherwise.
* ``locality(i, j) = level(i) - level(j)`` for an arc (i, j): the
  "distance" the arc spans, which predicts how likely the child's
  successor list is to still be in the buffer pool when the arc is
  processed.
* An arc is *redundant* if it is not in the transitive reduction
  ``TR(G)``; on a topologically sorted DAG the marking optimisation
  identifies exactly the redundant arcs.
* ``H(G) = sum(level(i)) / n`` (the height) and ``W(G) = |G| / H(G)``
  (the width) map a DAG onto a rectangle.  Theorem 1:
  ``H(G) = H(TR(G)) = H(TC(G))`` and ``W(TR(G)) <= W(G) <= W(TC(G))``.

All of this is computable in a single DFS traversal (Theorem 2); the
algorithms collect it during their restructuring phase at no extra I/O
cost, and Section 6.3.4 uses the width to predict whether JKB2 or BTC
wins on a partial-closure query.

Successor sets are represented as Python integers used as bitsets, the
same trick the paper's implementation uses for duplicate elimination
("duplicate elimination using bit vectors was found to be quite
cheap", Section 6.1); it also keeps closure computation fast enough to
run the paper's full 2000-node workloads in pure Python.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graphs.digraph import Digraph
from repro.graphs.toposort import topological_sort


def node_levels(graph: Digraph, nodes: Iterable[int] | None = None) -> dict[int, int]:
    """The level of every node (1 for sinks, 1 + max child level otherwise).

    When ``nodes`` is given, levels are computed for the induced
    subgraph over that node set (used for magic graphs).
    """
    order = topological_sort(graph, nodes)
    in_scope = set(order)
    levels: dict[int, int] = {}
    for node in reversed(order):
        best = 0
        for child in graph.successors(node):
            if child in in_scope:
                child_level = levels[child]
                if child_level > best:
                    best = child_level
        levels[node] = best + 1
    return levels


def arc_locality(levels: dict[int, int], src: int, dst: int) -> int:
    """The locality of the arc (src, dst): ``level(src) - level(dst)``."""
    return levels[src] - levels[dst]


def transitive_closure_sets(
    graph: Digraph, nodes: Iterable[int] | None = None
) -> dict[int, int]:
    """Successor bitsets for every node: bit ``j`` of ``result[i]`` is set
    iff ``j`` is a proper successor of ``i`` (i itself excluded).
    """
    order = topological_sort(graph, nodes)
    in_scope = set(order)
    closure: dict[int, int] = {}
    for node in reversed(order):
        acc = 0
        for child in graph.successors(node):
            if child in in_scope:
                acc |= (1 << child) | closure[child]
        closure[node] = acc
    return closure


def transitive_closure_size(graph: Digraph, nodes: Iterable[int] | None = None) -> int:
    """``|TC(G)|``: the number of (ancestor, proper successor) pairs."""
    closure = transitive_closure_sets(graph, nodes)
    return sum(bits.bit_count() for bits in closure.values())


def transitive_reduction_arcs(
    graph: Digraph, nodes: Iterable[int] | None = None
) -> tuple[set[tuple[int, int]], set[tuple[int, int]]]:
    """Split the arcs into (irredundant, redundant) sets.

    An arc (i, j) is redundant iff an alternative path from i to j
    exists; the irredundant arcs form the (unique) transitive reduction
    of the DAG.  Implemented with the marking procedure the BTC
    algorithm uses: children of each node are examined in topological
    order while accumulating the union of their closed successor sets.
    """
    order = topological_sort(graph, nodes)
    in_scope = set(order)
    position = {node: index for index, node in enumerate(order)}
    closure = transitive_closure_sets(graph, nodes)

    irredundant: set[tuple[int, int]] = set()
    redundant: set[tuple[int, int]] = set()
    for node in order:
        children = sorted(
            (child for child in graph.successors(node) if child in in_scope),
            key=position.__getitem__,
        )
        acc = 0
        for child in children:
            if (acc >> child) & 1:
                redundant.add((node, child))
            else:
                irredundant.add((node, child))
            acc |= (1 << child) | closure[child]
    return irredundant, redundant


@dataclass(frozen=True)
class GraphProfile:
    """The per-graph statistics reported in Table 2 of the paper."""

    num_nodes: int
    num_arcs: int
    max_level: int
    height: float
    width: float
    avg_arc_locality: float
    avg_irredundant_locality: float
    closure_size: int

    def as_row(self) -> dict[str, float | int]:
        """The profile as a Table 2 row (rounded like the paper's)."""
        return {
            "arcs": self.num_arcs,
            "max_level": self.max_level,
            "H": round(self.height),
            "W": round(self.width),
            "avg_locality": round(self.avg_arc_locality),
            "avg_irredundant_locality": round(self.avg_irredundant_locality),
            "closure_size": self.closure_size,
        }


def profile_graph(
    graph: Digraph,
    nodes: Iterable[int] | None = None,
    include_closure_size: bool = True,
) -> GraphProfile:
    """Compute the rectangle-model profile of a DAG (or magic subgraph).

    ``include_closure_size=False`` skips the ``|TC(G)|`` column, which
    is the only quantity here that is *not* available from the single
    restructuring-phase traversal (Theorem 2).
    """
    order = topological_sort(graph, nodes)
    in_scope = set(order)
    levels = node_levels(graph, order)

    arcs = [
        (src, dst)
        for src in order
        for dst in graph.successors(src)
        if dst in in_scope
    ]
    num_arcs = len(arcs)
    num_nodes = len(order)

    total_level = sum(levels.values())
    height = total_level / num_nodes if num_nodes else 0.0
    width = num_arcs / height if height else 0.0
    max_level = max(levels.values(), default=0)

    total_locality = sum(levels[src] - levels[dst] for src, dst in arcs)
    avg_locality = total_locality / num_arcs if num_arcs else 0.0

    irredundant, _ = transitive_reduction_arcs(graph, order)
    total_irr = sum(levels[src] - levels[dst] for src, dst in irredundant)
    avg_irr = total_irr / len(irredundant) if irredundant else 0.0

    closure_size = transitive_closure_size(graph, order) if include_closure_size else 0

    return GraphProfile(
        num_nodes=num_nodes,
        num_arcs=num_arcs,
        max_level=max_level,
        height=height,
        width=width,
        avg_arc_locality=avg_locality,
        avg_irredundant_locality=avg_irr,
        closure_size=closure_size,
    )


def bitset_to_nodes(bits: int) -> list[int]:
    """Expand a successor bitset into a sorted list of node ids."""
    result = []
    index = 0
    while bits:
        chunk = bits & 0xFFFFFFFFFFFFFFFF
        while chunk:
            low = chunk & -chunk
            result.append(index + low.bit_length() - 1)
            chunk ^= low
        bits >>= 64
        index += 64
    return result
