"""The canonical graph suite of the paper (Tables 1 and 2).

Twelve graph families G1..G12 are defined by the cross product of the
average out-degree ``F`` in {2, 5, 20, 50} and the generation locality
``l`` in {20, 200, 2000}, all with n = 2000 nodes.  Selection queries
draw ``s`` source nodes from {2, 5, 20, 200, 500, 1000, 2000}.

The experiments in this package accept a ``scale`` factor so that the
whole suite can be run quickly at reduced size: scaling divides the
node count and the localities by the same factor, which preserves the
qualitative shape of each family (relative density and locality) while
shrinking closures quadratically.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

PAPER_NUM_NODES = 2000
"""Number of nodes in every graph of the paper's suite."""

OUT_DEGREES = (2, 5, 20, 50)
"""The F values of Table 1."""

LOCALITIES = (20, 200, 2000)
"""The l values of Table 1."""

SELECTIVITIES = (2, 5, 20, 200, 500, 1000, 2000)
"""The s values (number of source nodes) of Table 1."""


@dataclass(frozen=True)
class GraphFamily:
    """One row of Table 2: a (name, F, l) workload family."""

    name: str
    avg_out_degree: int
    locality: int

    def generate(self, seed: int = 0, num_nodes: int = PAPER_NUM_NODES, scale: int = 1) -> Digraph:
        """Generate one graph of this family.

        ``scale`` > 1 shrinks the graph: nodes and locality are divided
        by ``scale`` (locality never drops below 1).  The paper
        generated five graphs per family; vary ``seed`` to do the same.
        """
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        n = max(2, num_nodes // scale)
        locality = max(1, self.locality // scale)
        return generate_dag(n, self.avg_out_degree, locality, seed=_family_seed(self.name, seed))


def _family_seed(name: str, seed: int) -> int:
    """Derive a deterministic per-family seed so graphs are reproducible.

    ``zlib.crc32`` is used instead of :func:`hash` because Python's
    string hashing is randomised per process.
    """
    return (zlib.crc32(name.encode()) ^ (seed * 0x9E3779B1)) & 0x7FFFFFFF


# Table 2's ordering: F varies slowest, l fastest.
GRAPH_FAMILIES: tuple[GraphFamily, ...] = tuple(
    GraphFamily(name=f"G{index + 1}", avg_out_degree=f, locality=l)
    for index, (f, l) in enumerate(
        (f, l) for f in OUT_DEGREES for l in LOCALITIES
    )
)


def graph_family(name: str) -> GraphFamily:
    """Look up a family by name (``"G1"`` .. ``"G12"``)."""
    for family in GRAPH_FAMILIES:
        if family.name.lower() == name.lower():
            return family
    valid = ", ".join(family.name for family in GRAPH_FAMILIES)
    raise ConfigurationError(f"unknown graph family {name!r}; valid families: {valid}")


def build_graph(
    name: str, seed: int = 0, num_nodes: int = PAPER_NUM_NODES, scale: int = 1
) -> Digraph:
    """Generate one graph of the named family (convenience wrapper)."""
    return graph_family(name).generate(seed=seed, num_nodes=num_nodes, scale=scale)


def sample_sources(graph: Digraph, count: int, seed: int = 0) -> tuple[int, ...]:
    """Draw a selection query's source set, as the paper does (Section 5.2).

    Sources are sampled uniformly without replacement; ``count`` is
    clamped to the graph size so scaled-down suites can reuse the
    paper's selectivity values.
    """
    rng = random.Random(seed)
    count = min(count, graph.num_nodes)
    return tuple(rng.sample(range(graph.num_nodes), count))
