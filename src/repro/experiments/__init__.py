"""Reproduction harness for the paper's evaluation section.

One entry point per table and figure:

* :func:`repro.experiments.tables.table2` -- graph characteristics.
* :func:`repro.experiments.tables.table3` -- BTC cost breakdown.
* :func:`repro.experiments.tables.table4` -- JKB2/BTC ratio vs. width.
* :func:`repro.experiments.figures.figure6` .. ``figure14`` -- the
  figure data series.

Everything is parameterised by a :class:`ScaleProfile` so the full
suite can run at the paper's scale (``paper``), at a faster reduced
scale (``default``) or as a quick smoke test (``smoke``).

Run everything from the command line::

    python -m repro.experiments.run_all --profile default
"""

from repro.experiments.config import PROFILES, ScaleProfile, get_profile
from repro.experiments.parallel import (
    Cell,
    ExperimentEngine,
    GraphSpec,
    WorkUnit,
    run_cells,
    use_engine,
)
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import average_runs, run_single

__all__ = [
    "PROFILES",
    "Cell",
    "ExperimentEngine",
    "GraphSpec",
    "QuerySpec",
    "ScaleProfile",
    "WorkUnit",
    "average_runs",
    "get_profile",
    "run_cells",
    "run_single",
    "use_engine",
]
