"""CSV export of regenerated tables and figures.

``run_all`` prints text tables; this module writes the same data as
CSV files so the series can be plotted or diffed against the paper's
numbers with external tools::

    python -m repro.experiments.export --profile default --out results/

writes ``table2.csv`` .. ``figure14_d.csv`` under ``results/``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.experiments.config import PROFILES, get_profile
from repro.experiments.figures import ALL_FIGURES, FigureData
from repro.experiments.tables import table2, table3, table4

_TABLES = {"table2": table2, "table3": table3, "table4": table4}


def write_rows(path: Path, rows: list[dict[str, object]]) -> None:
    """Write dictionaries as one CSV file (columns from the first row)."""
    if not rows:
        path.write_text("")
        return
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def figure_rows(data: FigureData) -> list[dict[str, object]]:
    """Flatten one figure panel into x/series rows."""
    rows = []
    for index, x in enumerate(data.xs):
        row: dict[str, object] = {data.x_label: x}
        for label, values in data.series.items():
            row[label] = values[index] if index < len(values) else ""
        rows.append(row)
    return rows


def export_all(profile_name: str, out_dir: Path, only: list[str] | None = None) -> list[Path]:
    """Regenerate the selected experiments and write their CSV files."""
    profile = get_profile(profile_name)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    selected = only if only else [*_TABLES, *ALL_FIGURES]

    for name in selected:
        if name in _TABLES:
            path = out_dir / f"{name}.csv"
            write_rows(path, _TABLES[name](profile))
            written.append(path)
        elif name in ALL_FIGURES:
            result = ALL_FIGURES[name](profile)
            panels = {"": result} if isinstance(result, FigureData) else result
            for panel_name, data in panels.items():
                suffix = f"_{panel_name}" if panel_name else ""
                path = out_dir / f"{name}{suffix}.csv"
                write_rows(path, figure_rows(data))
                written.append(path)
        else:
            valid = ", ".join([*_TABLES, *ALL_FIGURES])
            raise SystemExit(f"unknown experiment {name!r}; valid: {valid}")
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--only", nargs="*", default=None)
    args = parser.parse_args(argv)
    written = export_all(args.profile, Path(args.out), args.only)
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
