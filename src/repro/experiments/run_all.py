"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.run_all --profile default
    python -m repro.experiments.run_all --profile paper --only table4 figure8
    python -m repro.experiments.run_all --profile default --jobs 4

Output goes to stdout and (unless ``--no-file``) to
``experiments_output_<profile>.txt`` in the current directory.  The
file contains only the table/figure text -- no timings -- so runs are
byte-comparable regardless of ``--jobs`` (the parallel engine
guarantees bit-identical averages; see
:mod:`repro.experiments.parallel`).

``--jobs N`` fans the experiment grid across N worker processes;
``--timeout S`` bounds each individual run (retried with backoff, then
the cell is marked failed with ``nan`` values and the exit status is
non-zero).

Robustness controls (see ``docs/ROBUSTNESS.md``):

* ``--resume sweep.journal`` -- journal every completed cell to a
  crash-safe checkpoint; re-running the same command after a kill
  re-executes only the missing cells and produces byte-identical
  output.
* ``--chaos SPEC`` -- arm the fault-injection plane (also exported as
  ``REPRO_CHAOS`` so worker processes arm the same plan).
* ``--audit MODE`` -- off / cheap (default) / strict invariant
  auditing.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.chaos.audit import AUDIT_MODES, ENV_AUDIT, set_audit_mode
from repro.chaos.checkpoint import SweepJournal
from repro.chaos.faults import ENV_CHAOS, FaultPlan, set_fault_plan
from repro.errors import ReproError
from repro.experiments.config import PROFILES, get_profile
from repro.experiments.figures import ALL_FIGURES, FigureData
from repro.experiments.parallel import ExperimentEngine, use_engine
from repro.experiments.tables import table2, table3, table4
from repro.metrics.report import format_table
from repro.storage.engine import ENGINE_NAMES, ENV_ENGINE, set_default_engine

_TABLES = {
    "table2": lambda profile: format_table(
        table2(profile), title="Table 2. Graph parameters"
    ),
    "table3": lambda profile: format_table(
        table3(profile), title="Table 3. I/O and CPU cost of BTC (G6, CTC)"
    ),
    "table4": lambda profile: format_table(
        table4(profile), title="Table 4. JKB2 vs BTC for PTC queries (by width)"
    ),
}


def _render_figure(result: FigureData | dict[str, FigureData]) -> str:
    if isinstance(result, FigureData):
        return result.render()
    return "\n\n".join(panel.render() for panel in result.values())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default",
        help="scale profile to run at (default: %(default)s)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of experiments, e.g. table2 figure8 (default: all)",
    )
    parser.add_argument(
        "--no-file", action="store_true",
        help="print to stdout only, do not write the output file",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (default: 1 = serial)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit (one retry; default: none)",
    )
    parser.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="checkpoint completed cells to JOURNAL and resume from it",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="arm the fault-injection plane, e.g. 'corrupt-read,after=100'",
    )
    parser.add_argument(
        "--audit", choices=AUDIT_MODES, default=None,
        help="invariant audit mode (default: cheap, or REPRO_AUDIT)",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default=None,
        help="storage engine for every cell: 'paged' (the paper's cost "
        "model) or 'fast' (in-memory; page-I/O columns read zero)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    profile = get_profile(args.profile)

    plan = None
    try:
        if args.chaos:
            plan = FaultPlan.parse(args.chaos)
            set_fault_plan(plan)
            # Workers re-arm their own plan from the environment.
            os.environ[ENV_CHAOS] = args.chaos
        if args.audit:
            set_audit_mode(args.audit)
            os.environ[ENV_AUDIT] = args.audit
        if args.engine:
            # The figure/table builders construct their own SystemConfigs;
            # the process default (plus the env, for workers) reroutes
            # them all without touching every call site.
            set_default_engine(args.engine)
            os.environ[ENV_ENGINE] = args.engine
        journal = SweepJournal(args.resume) if args.resume else None
    except (ReproError, ValueError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    experiments: dict[str, object] = {}
    experiments.update(_TABLES)
    experiments.update(ALL_FIGURES)
    selected = args.only if args.only else list(experiments)
    unknown = [name for name in selected if name not in experiments]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    sections = [f"# Reproduction run, profile={profile.name} "
                f"(n={profile.num_nodes}, {profile.graphs_per_family} graphs/family, "
                f"{profile.source_samples} source samples)"]
    print(sections[0], flush=True)
    engine = ExperimentEngine(jobs=args.jobs, timeout=args.timeout,
                              checkpoint=journal)
    try:
        with engine, use_engine(engine):
            for name in selected:
                start = time.perf_counter()
                runner = experiments[name]
                if name in _TABLES:
                    text = runner(profile)
                else:
                    text = _render_figure(runner(profile))
                elapsed = time.perf_counter() - start
                sections.append(f"## {name}\n{text}")
                print(f"## {name}  ({elapsed:.1f}s)\n{text}", flush=True)
    except ReproError as exc:
        # Injected faults and invariant violations surface here as
        # structured errors -- never as a traceback.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if plan is not None:
            print(plan.summary(), file=sys.stderr)
        if journal is not None:
            print(journal.describe(), file=sys.stderr)
        return 1

    if journal is not None:
        print(f"\n[{journal.describe()}]")
    if plan is not None:
        print(f"[{plan.summary()}]", file=sys.stderr)

    if not args.no_file:
        path = f"experiments_output_{profile.name}.txt"
        with open(path, "w") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"\n[written to {path}]")

    if engine.failures:
        print(f"\n{len(engine.failures)} work unit(s) failed; "
              "affected cells are rendered as nan:", file=sys.stderr)
        for failure in engine.failures:
            print(f"  - {failure.render()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
