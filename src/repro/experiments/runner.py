"""Experiment runner: execute algorithms and average their metrics.

The paper reports, for every data point, the average over five random
graphs per family and five source-node sets per selection query
(Section 5.2).  :func:`average_runs` reproduces that protocol at a
configurable number of repetitions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.query import SystemConfig
from repro.core.registry import make_algorithm
from repro.core.result import ClosureResult
from repro.experiments.config import ScaleProfile
from repro.experiments.queries import QuerySpec
from repro.graphs.datasets import GraphFamily, graph_family
from repro.graphs.digraph import Digraph
from repro.storage.iostats import Phase


def run_single(
    algorithm: str,
    graph: Digraph,
    query_spec: QuerySpec,
    system: SystemConfig | None = None,
    sample_index: int = 0,
) -> ClosureResult:
    """Run one algorithm once on one graph with one drawn query."""
    query = query_spec.materialise(graph, sample_index)
    return make_algorithm(algorithm).run(graph, query, system or SystemConfig())


@dataclass(frozen=True)
class AveragedMetrics:
    """Metric averages over repeated runs of one experimental cell."""

    algorithm: str
    runs: int
    total_io: float
    restructure_io: float
    compute_io: float
    tuples_generated: float
    duplicates: float
    distinct_tuples: float
    output_tuples: float
    list_unions: float
    marking_percentage: float
    selection_efficiency: float
    avg_unmarked_locality: float
    hit_ratio: float
    answer_tuples: float

    @classmethod
    def from_results(cls, algorithm: str, results: list[ClosureResult]) -> "AveragedMetrics":
        """Average the headline metrics of several runs."""

        def mean(values: Iterable[float]) -> float:
            values = list(values)
            return sum(values) / len(values) if values else 0.0

        summaries = [r.metrics for r in results]
        return cls(
            algorithm=algorithm,
            runs=len(results),
            total_io=mean(m.total_io for m in summaries),
            restructure_io=mean(
                m.io.reads_in(Phase.RESTRUCTURE) + m.io.writes_in(Phase.RESTRUCTURE)
                for m in summaries
            ),
            compute_io=mean(
                m.io.reads_in(Phase.COMPUTE) + m.io.writes_in(Phase.COMPUTE)
                for m in summaries
            ),
            tuples_generated=mean(m.tuples_generated for m in summaries),
            duplicates=mean(m.duplicates for m in summaries),
            distinct_tuples=mean(m.distinct_tuples for m in summaries),
            output_tuples=mean(m.output_tuples for m in summaries),
            list_unions=mean(m.list_unions for m in summaries),
            marking_percentage=mean(m.marking_percentage for m in summaries),
            selection_efficiency=mean(m.selection_efficiency for m in summaries),
            avg_unmarked_locality=mean(m.avg_unmarked_locality for m in summaries),
            hit_ratio=mean(m.hit_ratio() for m in summaries),
            answer_tuples=mean(r.num_tuples for r in results),
        )


def average_runs(
    algorithm: str,
    family: str | GraphFamily,
    query_spec: QuerySpec,
    profile: ScaleProfile,
    system: SystemConfig | None = None,
) -> AveragedMetrics:
    """Run one experimental cell with the profile's repetition protocol.

    One run per (graph seed, source-sample) combination: the paper's
    5-graphs x 5-source-sets protocol at the profile's counts.
    """
    if isinstance(family, str):
        family = graph_family(family)
    system = system or SystemConfig()
    results = []
    for graph_seed in range(profile.graphs_per_family):
        graph = profile.build(family, seed=graph_seed)
        samples = 1 if query_spec.selectivity is None else profile.source_samples
        for sample_index in range(samples):
            results.append(
                run_single(algorithm, graph, query_spec, system, sample_index)
            )
    return AveragedMetrics.from_results(algorithm, results)
