"""Experiment runner: execute algorithms and average their metrics.

The paper reports, for every data point, the average over five random
graphs per family and five source-node sets per selection query
(Section 5.2).  :func:`average_runs` reproduces that protocol at a
configurable number of repetitions.

Telemetry: besides returning averages, the runner emits one
:class:`~repro.obs.record.RunRecord` *per run* (not per cell) whenever
a sink is attached -- either passed explicitly or installed process-
wide with :func:`repro.obs.sink.set_global_sink`.  With no sink
attached (the default), no record is built and runs are exactly as
cheap as before.

Storage engines: the runner is engine-agnostic.  The engine name is
resolved into :class:`SystemConfig` at construction time, so a bare
``SystemConfig()`` built here (when a caller passes ``system=None``)
picks up the process default installed by ``run_all --engine`` /
``REPRO_ENGINE`` -- see :func:`repro.storage.engine.default_engine`.

This module is the *serial* execution substrate.  The process-pool
engine in :mod:`repro.experiments.parallel` fans cells out across
workers but reproduces this module's behaviour exactly: its work units
call :func:`run_single` with the same seeds, its aggregation calls
:meth:`AveragedMetrics.from_results` on results in the same order, and
at ``jobs=1`` it delegates to :func:`average_runs` unchanged.  Any
change to the repetition protocol here must be mirrored in
``parallel._cell_units``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.query import SystemConfig
from repro.core.registry import make_algorithm
from repro.core.result import ClosureResult
from repro.experiments.config import ScaleProfile
from repro.experiments.queries import QuerySpec
from repro.graphs.datasets import GraphFamily, graph_family
from repro.graphs.digraph import Digraph
from repro.obs.bench import bench_reps
from repro.obs.record import RunRecord
from repro.obs.sink import RunSink, get_global_sink
from repro.obs.spans import SpanRecorder
from repro.storage.iostats import Phase
from repro.storage.trace import PageTrace


def run_single(
    algorithm: str,
    graph: Digraph,
    query_spec: QuerySpec,
    system: SystemConfig | None = None,
    sample_index: int = 0,
    workload: dict[str, Any] | None = None,
    sink: RunSink | None = None,
    recorder: SpanRecorder | None = None,
    trace: PageTrace | None = None,
) -> ClosureResult:
    """Run one algorithm once on one graph with one drawn query.

    When ``sink`` is given -- or a process-wide sink is installed via
    :func:`repro.obs.sink.set_global_sink` -- a :class:`RunRecord`
    describing the run (tagged with ``workload``) is emitted to it.

    When :func:`repro.obs.bench.set_bench_reps` installs ``N > 1``,
    the run is repeated ``N`` times and a record emitted *per
    repetition* -- the simulated counters are deterministic across
    reps, so this purely multiplies the timing samples the bench
    summary and the compare gate's variance band draw from.
    """
    query = query_spec.materialise(graph, sample_index)
    result: ClosureResult | None = None
    for _rep in range(bench_reps()):
        start = time.perf_counter()
        result = make_algorithm(algorithm).run(
            graph, query, system or SystemConfig(), recorder=recorder, trace=trace
        )
        wall_seconds = time.perf_counter() - start

        global_sink = get_global_sink()
        if sink is not None or global_sink is not None:
            if workload is None:
                workload = {"nodes": graph.num_nodes, "arcs": graph.num_arcs}
            record = RunRecord.from_result(
                result,
                workload=workload,
                recorder=recorder,
                trace=trace,
                wall_seconds=wall_seconds,
            )
            if sink is not None:
                sink.emit(record)
            if global_sink is not None and global_sink is not sink:
                global_sink.emit(record)
    assert result is not None  # bench_reps() >= 1 always
    return result


@dataclass(frozen=True)
class AveragedMetrics:
    """Metric averages over repeated runs of one experimental cell."""

    algorithm: str
    runs: int
    total_io: float
    restructure_io: float
    compute_io: float
    tuples_generated: float
    duplicates: float
    distinct_tuples: float
    output_tuples: float
    list_unions: float
    marking_percentage: float
    selection_efficiency: float
    avg_unmarked_locality: float
    hit_ratio: float
    answer_tuples: float

    @classmethod
    def from_results(cls, algorithm: str, results: list[ClosureResult]) -> "AveragedMetrics":
        """Average the headline metrics of several runs."""

        def mean(values: Iterable[float]) -> float:
            values = list(values)
            return sum(values) / len(values) if values else 0.0

        summaries = [r.metrics for r in results]
        return cls(
            algorithm=algorithm,
            runs=len(results),
            total_io=mean(m.total_io for m in summaries),
            restructure_io=mean(
                m.io.reads_in(Phase.RESTRUCTURE) + m.io.writes_in(Phase.RESTRUCTURE)
                for m in summaries
            ),
            compute_io=mean(
                m.io.reads_in(Phase.COMPUTE) + m.io.writes_in(Phase.COMPUTE)
                for m in summaries
            ),
            tuples_generated=mean(m.tuples_generated for m in summaries),
            duplicates=mean(m.duplicates for m in summaries),
            distinct_tuples=mean(m.distinct_tuples for m in summaries),
            output_tuples=mean(m.output_tuples for m in summaries),
            list_unions=mean(m.list_unions for m in summaries),
            marking_percentage=mean(m.marking_percentage for m in summaries),
            selection_efficiency=mean(m.selection_efficiency for m in summaries),
            avg_unmarked_locality=mean(m.avg_unmarked_locality for m in summaries),
            hit_ratio=mean(m.hit_ratio() for m in summaries),
            answer_tuples=mean(r.num_tuples for r in results),
        )


def average_runs(
    algorithm: str,
    family: str | GraphFamily,
    query_spec: QuerySpec,
    profile: ScaleProfile,
    system: SystemConfig | None = None,
    sink: RunSink | None = None,
) -> AveragedMetrics:
    """Run one experimental cell with the profile's repetition protocol.

    One run per (graph seed, source-sample) combination: the paper's
    5-graphs x 5-source-sets protocol at the profile's counts.  Each
    individual run emits a :class:`RunRecord` to ``sink`` (and to the
    process-wide sink, if installed); all records of one cell share the
    same workload tag, so ``repro compare`` averages them back into the
    cell before diffing.
    """
    if isinstance(family, str):
        family = graph_family(family)
    system = system or SystemConfig()
    workload = {
        "family": family.name,
        "profile": profile.name,
        "nodes": profile.num_nodes,
    }
    results = []
    for graph_seed in range(profile.graphs_per_family):
        graph = profile.build(family, seed=graph_seed)
        samples = 1 if query_spec.selectivity is None else profile.source_samples
        for sample_index in range(samples):
            results.append(
                run_single(
                    algorithm,
                    graph,
                    query_spec,
                    system,
                    sample_index,
                    workload=workload,
                    sink=sink,
                )
            )
    return AveragedMetrics.from_results(algorithm, results)
