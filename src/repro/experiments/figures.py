"""Regeneration of the paper's Figures 6 through 14.

Each ``figureN`` function returns a :class:`FigureData` (or a dict of
panel name to :class:`FigureData`): the x axis, one series per curve,
and a title matching the paper's caption.  ``render()`` prints the
series as an aligned text table -- the same rows the paper plots.

Every figure declares its grid as a flat list of
:class:`~repro.experiments.parallel.Cell` descriptions and hands it to
:func:`~repro.experiments.parallel.run_cells`, so the whole grid fans
out across worker processes when a parallel engine is active (see
``run_all --jobs``) and runs through the unchanged serial
``average_runs`` path otherwise.  A cell that permanently failed in a
worker contributes ``nan`` to its series, visibly marking the hole.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import SystemConfig
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.parallel import Cell, run_cells
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import AveragedMetrics
from repro.graphs.datasets import graph_family
from repro.metrics.report import format_series

HIGH_SELECTIVITIES = (2, 5, 10, 20)
"""Source-node counts for the high-selectivity experiments (Figures 8-12)."""

LOW_SELECTIVITIES = (200, 500, 1000, 2000)
"""Source-node counts for the low-selectivity experiments (Figure 14)."""

BUFFER_SIZES = (10, 20, 30, 40, 50)
"""Buffer-pool sweep for Figure 13 (the paper plots 10..50)."""


@dataclass
class FigureData:
    """One panel of a figure: an x axis plus one series per curve."""

    title: str
    x_label: str
    xs: list[object]
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """The panel as an aligned text table."""
        return format_series(self.title, self.xs, self.series, x_label=self.x_label)


def _metric_series(
    cells: dict[str, list[AveragedMetrics]], metric: str
) -> dict[str, list[float]]:
    return {
        label: [round(getattr(m, metric), 4) for m in values]
        for label, values in cells.items()
    }


# ---------------------------------------------------------------------------
# Figure 6 -- Hybrid vs. BTC, effect of blocking, full closure (G9).
# ---------------------------------------------------------------------------

def figure6(
    profile: ScaleProfile | str = "default",
    family: str = "G9",
    ilimits: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    buffer_sizes: tuple[int, ...] = (10, 20, 50),
) -> FigureData:
    """Total I/O of BTC and HYB (several ILIMIT values) vs. buffer size.

    The paper's finding: blocking *hurts* the Hybrid algorithm -- cost
    increases with ILIMIT, and HYB at ILIMIT=0 equals BTC.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    spec = QuerySpec.full()
    data = FigureData(
        title=f"Figure 6. Hybrid vs BTC, full closure ({family})",
        x_label="M",
        xs=list(buffer_sizes),
    )
    curves: dict[str, list[float]] = {"BTC": []}
    for ilimit in ilimits:
        curves[f"HYB-{ilimit:g}"] = []
    cells = []
    for buffer_pages in buffer_sizes:
        cells.append(Cell("btc", family, spec, SystemConfig(buffer_pages=buffer_pages)))
        for ilimit in ilimits:
            cells.append(
                Cell("hyb", family, spec,
                     SystemConfig(buffer_pages=buffer_pages, ilimit=ilimit))
            )
    results = iter(run_cells(cells, profile))
    for _buffer_pages in buffer_sizes:
        curves["BTC"].append(next(results).total_io)
        for ilimit in ilimits:
            curves[f"HYB-{ilimit:g}"].append(next(results).total_io)
    data.series = curves
    return data


# ---------------------------------------------------------------------------
# Figure 7 -- the successor tree algorithms vs. BTC, full closure.
# ---------------------------------------------------------------------------

def figure7(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G2", "G5", "G8", "G11"),
    buffer_pages: int = 20,
) -> dict[str, FigureData]:
    """(a) total I/O and (b) duplicates vs. average out-degree.

    The locality-200 graph families G2/G5/G8/G11 span F = 2..50.  The
    paper's findings: BTC beats the tree algorithms on page I/O even
    though they fetch fewer tuples; SPN closes the gap as the degree
    grows; JKB's preprocessing explodes with the degree; the tree
    algorithms generate far fewer duplicates (panel b).
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    spec = QuerySpec.full()
    system = SystemConfig(buffer_pages=buffer_pages)
    names = ("btc", "spn", "jkb", "jkb2")
    degrees = [graph_family(family_name).avg_out_degree for family_name in families]
    results = iter(run_cells(
        [Cell(name, family_name, spec, system)
         for family_name in families for name in names],
        profile,
    ))
    cells: dict[str, list[AveragedMetrics]] = {name: [] for name in names}
    for _family_name in families:
        for name in names:
            cells[name].append(next(results))

    panel_a = FigureData(
        title="Figure 7(a). Successor tree algorithms vs BTC, full closure: total I/O",
        x_label="F",
        xs=degrees,
        series={
            "BTC": [m.total_io for m in cells["btc"]],
            "SPN": [m.total_io for m in cells["spn"]],
            "JKB": [m.total_io for m in cells["jkb"]],
            "JKB2": [m.total_io for m in cells["jkb2"]],
        },
    )
    panel_b = FigureData(
        title="Figure 7(b). Duplicates generated",
        x_label="F",
        xs=degrees,
        series={
            "BTC": [m.duplicates for m in cells["btc"]],
            "SPN": [m.duplicates for m in cells["spn"]],
        },
    )
    return {"a": panel_a, "b": panel_b}


# ---------------------------------------------------------------------------
# Figures 8-12 -- high-selectivity PTC on G4 and G11.
# ---------------------------------------------------------------------------

_HIGH_SEL_ALGOS = ("btc", "bj", "jkb2", "srch")


def _high_selectivity_cells(
    profile: ScaleProfile,
    family: str,
    selectivities: tuple[int, ...],
    buffer_pages: int,
) -> tuple[list[int], dict[str, list[AveragedMetrics]]]:
    system = SystemConfig(buffer_pages=buffer_pages)
    xs = [profile.scaled_selectivity(s) for s in selectivities]
    results = iter(run_cells(
        [Cell(name, family, QuerySpec.selection(profile.scaled_selectivity(s)), system)
         for s in selectivities for name in _HIGH_SEL_ALGOS],
        profile,
    ))
    cells: dict[str, list[AveragedMetrics]] = {name: [] for name in _HIGH_SEL_ALGOS}
    for _s in selectivities:
        for name in cells:
            cells[name].append(next(results))
    return xs, cells


def _high_selectivity_figure(
    profile: ScaleProfile | str,
    metric: str,
    figure_title: str,
    families: tuple[str, ...],
    selectivities: tuple[int, ...],
    buffer_pages: int,
    algorithms: tuple[str, ...] = _HIGH_SEL_ALGOS,
) -> dict[str, FigureData]:
    if isinstance(profile, str):
        profile = get_profile(profile)
    panels: dict[str, FigureData] = {}
    for panel, family in zip("ab", families):
        xs, cells = _high_selectivity_cells(profile, family, selectivities, buffer_pages)
        cells = {name: cells[name] for name in algorithms}
        panels[panel] = FigureData(
            title=f"{figure_title} ({family})",
            x_label="s",
            xs=xs,
            series={name.upper(): values for name, values in _metric_series(cells, metric).items()},
        )
    return panels


def figure8(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivities: tuple[int, ...] = HIGH_SELECTIVITIES,
    buffer_pages: int = 10,
) -> dict[str, FigureData]:
    """Total I/O for high-selectivity PTC (the paper's two extremes:
    JKB2 at ~1/3 of BTC's I/O on G4, and 2-3x BTC's I/O on G11)."""
    return _high_selectivity_figure(
        profile, "total_io", "Figure 8. High selectivity: total I/O",
        families, selectivities, buffer_pages,
    )


def figure9(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivities: tuple[int, ...] = HIGH_SELECTIVITIES,
    buffer_pages: int = 10,
) -> dict[str, FigureData]:
    """Tuples generated (the selection-efficiency numerator's inverse):
    JKB2 generates under 1% of BTC/BJ's tuples; SRCH is optimal."""
    return _high_selectivity_figure(
        profile, "tuples_generated", "Figure 9. High selectivity: tuples generated",
        families, selectivities, buffer_pages,
    )


def figure10(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivities: tuple[int, ...] = HIGH_SELECTIVITIES,
    buffer_pages: int = 10,
) -> dict[str, FigureData]:
    """Successor-list unions: SRCH's count grows rapidly with s; JKB2
    performs many more unions than BTC/BJ (poor marking utilisation)."""
    return _high_selectivity_figure(
        profile, "list_unions", "Figure 10. High selectivity: successor list unions",
        families, selectivities, buffer_pages,
    )


def figure11(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivities: tuple[int, ...] = HIGH_SELECTIVITIES,
    buffer_pages: int = 10,
) -> dict[str, FigureData]:
    """Marking percentage: near zero for JKB2, zero for SRCH."""
    return _high_selectivity_figure(
        profile, "marking_percentage", "Figure 11. High selectivity: marking percentage",
        families, selectivities, buffer_pages,
    )


def figure12(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivities: tuple[int, ...] = HIGH_SELECTIVITIES,
    buffer_pages: int = 10,
) -> dict[str, FigureData]:
    """Average locality of unmarked (processed) arcs: much worse for
    JKB2, predicting its extra I/O per union."""
    return _high_selectivity_figure(
        profile, "avg_unmarked_locality",
        "Figure 12. High selectivity: avg unmarked-arc locality",
        families, selectivities, buffer_pages,
    )


# ---------------------------------------------------------------------------
# Figure 13 -- effect of the buffer pool size.
# ---------------------------------------------------------------------------

def figure13(
    profile: ScaleProfile | str = "default",
    families: tuple[str, ...] = ("G4", "G11"),
    selectivity: int = 10,
    buffer_sizes: tuple[int, ...] = BUFFER_SIZES,
) -> dict[str, FigureData]:
    """Total I/O (panels a, b) and buffer hit ratio (panels c, d) as the
    buffer pool grows, for a 10-source PTC query.

    The paper's finding: all algorithms improve with M; JKB2 is the most
    sensitive -- its small special-node trees become memory-resident and
    its computation-phase I/O almost vanishes.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    algorithms = ("btc", "jkb2", "srch")
    spec = QuerySpec.selection(profile.scaled_selectivity(selectivity))
    panels: dict[str, FigureData] = {}
    for io_panel, hit_panel, family in zip("ab", "cd", families):
        results = iter(run_cells(
            [Cell(name, family, spec, SystemConfig(buffer_pages=buffer_pages))
             for buffer_pages in buffer_sizes for name in algorithms],
            profile,
        ))
        cells: dict[str, list[AveragedMetrics]] = {name: [] for name in algorithms}
        for _buffer_pages in buffer_sizes:
            for name in algorithms:
                cells[name].append(next(results))
        panels[io_panel] = FigureData(
            title=f"Figure 13({io_panel}). Total I/O vs buffer size ({family})",
            x_label="M",
            xs=list(buffer_sizes),
            series={n.upper(): v for n, v in _metric_series(cells, "total_io").items()},
        )
        panels[hit_panel] = FigureData(
            title=f"Figure 13({hit_panel}). Buffer hit ratio ({family})",
            x_label="M",
            xs=list(buffer_sizes),
            series={n.upper(): v for n, v in _metric_series(cells, "hit_ratio").items()},
        )
    return panels


# ---------------------------------------------------------------------------
# Figure 14 -- low-selectivity trends on G9.
# ---------------------------------------------------------------------------

def figure14(
    profile: ScaleProfile | str = "default",
    family: str = "G9",
    selectivities: tuple[int, ...] = LOW_SELECTIVITIES,
    buffer_pages: int = 20,
) -> dict[str, FigureData]:
    """Low-selectivity PTC: I/O, tuples generated, marking percentage
    and unions for BTC, BJ and JKB2 as s approaches n (where the three
    converge to the full closure)."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    algorithms = ("btc", "bj", "jkb2")
    system = SystemConfig(buffer_pages=buffer_pages)
    xs = [profile.scaled_selectivity(s) for s in selectivities]
    results = iter(run_cells(
        [Cell(name, family,
              QuerySpec.selection(profile.scaled_selectivity(s)), system)
         for s in selectivities for name in algorithms],
        profile,
    ))
    cells: dict[str, list[AveragedMetrics]] = {name: [] for name in algorithms}
    for _s in selectivities:
        for name in algorithms:
            cells[name].append(next(results))

    def panel(letter: str, metric: str, label: str) -> FigureData:
        return FigureData(
            title=f"Figure 14({letter}). Low selectivity: {label} ({family})",
            x_label="s",
            xs=xs,
            series={n.upper(): v for n, v in _metric_series(cells, metric).items()},
        )

    return {
        "a": panel("a", "total_io", "total I/O"),
        "b": panel("b", "tuples_generated", "tuples generated"),
        "c": panel("c", "marking_percentage", "marking percentage"),
        "d": panel("d", "list_unions", "successor list unions"),
    }


# ---------------------------------------------------------------------------
# Chains figure -- the modern chain-decomposition family vs BTC/HYB.
# ---------------------------------------------------------------------------

def figure_chains(
    profile: ScaleProfile | str = "default",
    family: str = "G9",
    buffer_sizes: tuple[int, ...] = (10, 20, 50),
    ilimit: float = 0.2,
) -> FigureData:
    """Total I/O of the chain-decomposition family vs BTC and Hybrid.

    A comparison the 1994 study could never draw: the ``chains`` family
    (Kritikakis & Tollis) builds k-vector reachability summaries on
    dedicated pages and emits each closure from one vector read, never
    re-reading another node's expanded list.  Run under the same cost
    model, the figure shows where the modern index's page bill --
    vector construction plus suffix emission -- undercuts the paper's
    repeated successor-list unions, and how each side responds to
    buffer pressure.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    spec = QuerySpec.full()
    data = FigureData(
        title=f"Figure C1. Chain-decomposition index vs BTC/HYB, "
        f"full closure ({family})",
        x_label="M",
        xs=list(buffer_sizes),
    )
    names = ("btc", "hyb", "chains")
    labels = {"btc": "BTC", "hyb": f"HYB-{ilimit:g}", "chains": "CHAINS"}
    results = iter(run_cells(
        [Cell(name, family, spec,
              SystemConfig(buffer_pages=buffer_pages, ilimit=ilimit))
         for buffer_pages in buffer_sizes for name in names],
        profile,
    ))
    curves: dict[str, list[float]] = {labels[name]: [] for name in names}
    for _buffer_pages in buffer_sizes:
        for name in names:
            curves[labels[name]].append(next(results).total_io)
    data.series = curves
    return data


ALL_FIGURES = {
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure_chains": figure_chains,
}
"""Every figure entry point, keyed by name (used by ``run_all``)."""
