"""Scale profiles for the experiment suite.

The paper's workloads use 2000-node graphs, five random graphs per
family and five source-node samples per selection experiment.  A pure
Python reproduction can run that grid, but not in seconds; the profiles
below trade repetitions and graph size for wall-clock time while
preserving each family's shape (the scale factor divides the node count
and the generation locality together, so relative density and locality
are unchanged).

========  =====  ============  ==============  =========================
profile   scale  graphs/family  source samples  intended use
========  =====  ============  ==============  =========================
paper     1      3             3               full reproduction runs
default   2      2             2               `run_all`, EXPERIMENTS.md
smoke     8      1             1               tests and benchmarks
========  =====  ============  ==============  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graphs.datasets import PAPER_NUM_NODES, GraphFamily, graph_family
from repro.graphs.digraph import Digraph


@dataclass(frozen=True)
class ScaleProfile:
    """How big and how repeated the experiment runs are."""

    name: str
    scale: int
    graphs_per_family: int
    source_samples: int

    def build(self, family: str | GraphFamily, seed: int = 0) -> Digraph:
        """Generate one graph of a family at this profile's scale."""
        if isinstance(family, str):
            family = graph_family(family)
        return family.generate(seed=seed, num_nodes=PAPER_NUM_NODES, scale=self.scale)

    def scaled_selectivity(self, s: int) -> int:
        """Scale a paper selectivity value to this profile's graph size.

        Keeping ``s`` proportional to ``n`` preserves the high/low
        selectivity regimes of Section 6.3.
        """
        return max(1, s // self.scale)

    @property
    def num_nodes(self) -> int:
        """Nodes per generated graph under this profile."""
        return max(2, PAPER_NUM_NODES // self.scale)


PROFILES: dict[str, ScaleProfile] = {
    "paper": ScaleProfile("paper", scale=1, graphs_per_family=3, source_samples=3),
    "default": ScaleProfile("default", scale=2, graphs_per_family=2, source_samples=2),
    "smoke": ScaleProfile("smoke", scale=8, graphs_per_family=1, source_samples=1),
}


def get_profile(name: str) -> ScaleProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        valid = ", ".join(PROFILES)
        raise ConfigurationError(
            f"unknown scale profile {name!r}; valid profiles: {valid}"
        ) from None
