"""Query specifications for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.graphs.datasets import sample_sources
from repro.graphs.digraph import Digraph


@dataclass(frozen=True)
class QuerySpec:
    """A query shape: full closure, or a selection of ``s`` sources.

    The paper repeats each selection experiment with several randomly
    drawn source sets (Section 5.2); :meth:`materialise` draws one such
    set deterministically from ``sample_index``.
    """

    selectivity: int | None = None  # None = full closure

    @classmethod
    def full(cls) -> "QuerySpec":
        """The complete-closure query shape (CTC)."""
        return cls(selectivity=None)

    @classmethod
    def selection(cls, s: int) -> "QuerySpec":
        """A partial-closure query shape with ``s`` source nodes."""
        return cls(selectivity=s)

    def materialise(self, graph: Digraph, sample_index: int = 0) -> Query:
        """Draw a concrete query for ``graph``."""
        if self.selectivity is None:
            return Query.full()
        sources = sample_sources(graph, self.selectivity, seed=1000 + sample_index)
        return Query.ptc(sources)
