"""Query specifications for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.graphs.datasets import sample_sources
from repro.graphs.digraph import Digraph


@dataclass(frozen=True)
class QuerySpec:
    """A query shape: full closure, or a selection of ``s`` sources.

    The paper repeats each selection experiment with several randomly
    drawn source sets (Section 5.2); :meth:`materialise` draws one such
    set deterministically from ``sample_index``.
    """

    selectivity: int | None = None  # None = full closure

    @classmethod
    def full(cls) -> "QuerySpec":
        """The complete-closure query shape (CTC)."""
        return cls(selectivity=None)

    @classmethod
    def selection(cls, s: int) -> "QuerySpec":
        """A partial-closure query shape with ``s`` source nodes."""
        return cls(selectivity=s)

    def materialise(
        self, graph: Digraph, sample_index: int = 0, seed: int | None = None
    ) -> Query:
        """Draw a concrete query for ``graph``.

        The source sample is a pure function of ``(selectivity,
        sample_index)`` -- seed ``1000 + sample_index`` -- so any
        process that materialises the same spec draws the same sources
        (the parallel engine's seeding contract).  ``seed`` overrides
        the derived seed for callers that manage seeds themselves (the
        CLI's ``--seed``).
        """
        if self.selectivity is None:
            return Query.full()
        if seed is None:
            seed = 1000 + sample_index
        sources = sample_sources(graph, self.selectivity, seed=seed)
        return Query.ptc(sources)
