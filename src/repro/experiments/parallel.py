"""Process-pool experiment engine with deterministic seeding.

The paper's evaluation is a grid of *cells* -- one (algorithm, graph
family, query shape, system configuration) combination per data point
-- and every cell is itself a small grid of *work units*: one run per
(graph seed, source sample).  All of those units are independent, so
this module fans them out across ``--jobs N`` worker processes while
guaranteeing that the aggregated output is **bit-identical** to the
serial execution:

* **Seeding contract.**  Nothing in a unit depends on process-global
  random state.  The graph is fully determined by its
  :class:`GraphSpec` (family/custom parameters + seed, hashed through
  the same ``crc32`` mix as the serial path), and the source sample is
  fully determined by ``(selectivity, sample_index)`` (or an explicit
  ``source_seed``).  A unit therefore produces the same simulator
  counters no matter which process -- or machine -- executes it.
* **Canonical ordering.**  Workers return their
  :class:`~repro.core.result.ClosureResult` and
  :class:`~repro.obs.record.RunRecord` to the parent, which emits the
  records to *its* sinks in the serial order (cell order, then graph
  seed, then sample index) and averages the results with the very same
  :meth:`AveragedMetrics.from_results` call the serial path uses.
  Worker processes never emit to a sink themselves (a forked worker
  inherits the parent's global sink; :func:`_worker_init` detaches it).
* **Storage engines.**  A unit's :class:`SystemConfig` carries the
  *resolved* engine name (``paged``/``fast``) by value, so pickled
  units run the driver's engine in every worker with no extra
  environment plumbing (unlike chaos, which re-arms per process from
  ``REPRO_CHAOS`` in :func:`_worker_init`).
* **Serial fallback.**  ``jobs=1`` -- the default everywhere -- does
  not touch ``multiprocessing`` at all: cells are executed through the
  exact pre-existing :func:`~repro.experiments.runner.average_runs`
  code path.

Robustness: every unit runs under an optional wall-clock ``timeout``
(SIGALRM where available so pure-Python hangs are interrupted, a soft
post-run deadline check elsewhere), is retried with a jittered
exponential backoff, and -- if it still fails -- yields a structured
:class:`UnitError` on ``engine.failures`` while the rest of the grid
completes.  A failed cell renders as ``nan`` in tables/figures and the
drivers exit non-zero.  When a :class:`~repro.chaos.faults.FaultPlan`
is armed (``--chaos``/``REPRO_CHAOS``) each unit is also a crash
opportunity, and any injected fault surfaces as a ``UnitError`` of
kind ``"fault"``.

Checkpoint/resume: attach a :class:`~repro.chaos.checkpoint.SweepJournal`
and every completed cell is durably journaled under its deterministic
key; on the next run journaled cells replay their records through the
same emission path and return the stored averages, so a killed sweep
resumed with ``--resume`` produces byte-identical output.

Because the cells of a sweep frequently repeat (Figures 8-12 share one
cell grid and only plot different metrics), the engine also memoises
finished cells by identity: a repeated cell replays its records and
returns the identical :class:`AveragedMetrics` without recomputation.
The serial path intentionally has no memo -- it is the reference
execution.
"""

from __future__ import annotations

import dataclasses
import math
import signal
import threading
import time
import traceback
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any

from repro.chaos.checkpoint import SweepJournal, cell_key
from repro.chaos.faults import FaultKind, active_plan, arm_from_env
from repro.core.query import SystemConfig
from repro.core.result import ClosureResult
from repro.errors import InjectedCrashError, InjectedFaultError
from repro.experiments.config import ScaleProfile
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import AveragedMetrics, average_runs
from repro.graphs.datasets import PAPER_NUM_NODES, build_graph
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.obs.record import RunRecord, system_config_dict
from repro.obs.sink import RunSink, get_global_sink, reset_worker_sinks
from repro.obs.tracing import TraceCollector, TraceEventRecord
from repro.serve.retry import DEFAULT_BACKOFF_BASE, BackoffPolicy

DEFAULT_RETRIES = 1
"""How many times a failed or timed-out unit is resubmitted."""

DEFAULT_BACKOFF = DEFAULT_BACKOFF_BASE
"""Base delay (seconds) of the jittered exponential retry backoff
(the shared :mod:`repro.serve.retry` default)."""


# ---------------------------------------------------------------------------
# Work descriptions (all frozen, picklable, and -- for GraphSpec -- hashable).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphSpec:
    """A deterministic recipe for one input graph.

    Either a paper family at a scale (``family`` set) or a custom
    random DAG (``family`` None).  Equal specs generate equal graphs in
    any process, which is what makes the per-worker graph cache and the
    bit-identical guarantee sound.
    """

    seed: int = 0
    family: str | None = None
    num_nodes: int = PAPER_NUM_NODES
    scale: int = 1
    out_degree: float = 5.0
    locality: int = 100

    @classmethod
    def for_profile(cls, family: str, profile: ScaleProfile, seed: int) -> "GraphSpec":
        """The graph a profile cell builds (same as ``profile.build``)."""
        return cls(seed=seed, family=family, num_nodes=PAPER_NUM_NODES, scale=profile.scale)

    @classmethod
    def custom(cls, num_nodes: int, out_degree: float, locality: int, seed: int) -> "GraphSpec":
        """A custom random DAG (the CLI's ``--nodes`` workload)."""
        return cls(seed=seed, family=None, num_nodes=num_nodes,
                   out_degree=out_degree, locality=locality)

    def build(self) -> Digraph:
        """Generate the graph (deterministic in ``self`` alone)."""
        if self.family is not None:
            return build_graph(self.family, seed=self.seed,
                               num_nodes=self.num_nodes, scale=self.scale)
        return generate_dag(self.num_nodes, self.out_degree, self.locality, seed=self.seed)


@dataclass(frozen=True)
class Cell:
    """One experimental cell: a data point of a table or figure."""

    algorithm: str
    family: str
    query: QuerySpec
    system: SystemConfig


@dataclass(frozen=True)
class WorkUnit:
    """One run: a cell crossed with one graph seed and source sample."""

    cell_index: int
    algorithm: str
    graph: GraphSpec
    query: QuerySpec
    system: SystemConfig
    graph_seed: int = 0
    sample_index: int = 0
    source_seed: int | None = None
    workload: tuple[tuple[str, Any], ...] = ()
    collect_trace: bool = False
    """Instrument the run (spans + page trace + event collector) exactly
    like the serial ``--trace-out`` path, and ship the trace events back
    on :attr:`UnitOutcome.trace`."""

    def describe(self) -> dict[str, Any]:
        """A JSON-safe identity for error records."""
        return {
            "algorithm": self.algorithm,
            "graph": {f.name: getattr(self.graph, f.name) for f in fields(self.graph)},
            "selectivity": self.query.selectivity,
            "graph_seed": self.graph_seed,
            "sample_index": self.sample_index,
        }


@dataclass(frozen=True)
class UnitError:
    """Structured record of a unit that failed after all retries."""

    kind: str  # "exception" | "timeout" | "fault" | "lost"
    message: str
    attempts: int
    unit: dict[str, Any]

    def render(self) -> str:
        u = self.unit
        where = u.get("graph", {}).get("family") or f"n={u.get('graph', {}).get('num_nodes')}"
        return (f"{u.get('algorithm')}@{where} seed={u.get('graph_seed')} "
                f"sample={u.get('sample_index')}: {self.kind} after "
                f"{self.attempts} attempt(s): {self.message}")


@dataclass
class UnitOutcome:
    """What a worker hands back for one unit: a result or an error."""

    cell_index: int
    graph_seed: int
    sample_index: int
    result: ClosureResult | None = None
    record: RunRecord | None = None
    error: UnitError | None = None
    trace: tuple[TraceEventRecord, ...] | None = None
    """The unit's trace events (``collect_trace`` units only); frozen
    records are picklable, so they cross the process boundary intact."""

    @property
    def ok(self) -> bool:
        return self.error is None

    def order_key(self) -> tuple[int, int]:
        return (self.graph_seed, self.sample_index)


def failed_metrics(algorithm: str) -> AveragedMetrics:
    """The nan-filled sentinel a failed cell contributes to a series."""
    values = {
        f.name: math.nan
        for f in fields(AveragedMetrics)
        if f.name not in ("algorithm", "runs")
    }
    return AveragedMetrics(algorithm=algorithm, runs=0, **values)


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------

_GRAPH_CACHE: dict[GraphSpec, Digraph] = {}
"""Per-process graph cache: one generated DAG per spec, shared by every
unit of every cell that names it (algorithms never mutate the input)."""


class UnitTimeout(Exception):
    """Raised inside a worker when a unit exceeds its wall-clock budget."""


def _worker_init() -> None:
    """Initialise a worker process.

    Forked workers inherit the parent's process-wide sink (the
    benchmark suite installs a :class:`MemorySink`, ``run_all`` may
    install a :class:`JsonlSink`); records are merged by the parent in
    canonical order, so emitting in the worker would double-count.

    The chaos plane re-arms from ``REPRO_CHAOS`` (the drivers export
    the spec before building the pool), so fault opportunities are
    counted per process -- documented behaviour: an ``after=N`` clause
    means "the N-th opportunity *in that worker*".
    """
    reset_worker_sinks()
    _GRAPH_CACHE.clear()
    arm_from_env()


def _cached_graph(spec: GraphSpec) -> Digraph:
    graph = _GRAPH_CACHE.get(spec)
    if graph is None:
        graph = _GRAPH_CACHE[spec] = spec.build()
    return graph


_HAS_SIGALRM = hasattr(signal, "SIGALRM")


@contextmanager
def _unit_guard(timeout: float | None) -> Iterator[Callable[[], None]]:
    """Bound a unit's wall clock, portably.

    Where SIGALRM exists and we are on the main thread of the process
    (always true for pool workers and the serial path), pure-Python
    hangs are interrupted mid-flight.  Elsewhere (Windows, exotic
    embedding threads) the guard degrades to a *soft deadline*: the
    yielded check callable raises :class:`UnitTimeout` after the fact,
    so an over-budget unit is still reported -- it just is not
    preempted.  Callers must invoke the check once the guarded work
    returns.
    """
    if not timeout or timeout <= 0:
        yield lambda: None
        return

    if _HAS_SIGALRM and threading.current_thread() is threading.main_thread():
        def _on_alarm(signum: int, frame: object) -> None:
            raise UnitTimeout(f"unit exceeded {timeout:g}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            yield lambda: None
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    deadline = time.monotonic() + timeout

    def _check() -> None:
        if time.monotonic() > deadline:
            raise UnitTimeout(f"unit exceeded {timeout:g}s (soft deadline)")

    yield _check


def _make_runner(name: str):
    """Resolve an algorithm or baseline by name (workers import lazily
    so a spawn-started pool works too)."""
    from repro.baselines import BASELINE_NAMES, make_baseline
    from repro.core.registry import make_algorithm

    if name.lower() in BASELINE_NAMES:
        return make_baseline(name)
    return make_algorithm(name)


def execute_unit(unit: WorkUnit, timeout: float | None, attempt: int = 1,
                 delay: float = 0.0) -> UnitOutcome:
    """Run one unit to completion; never raises (errors are data).

    ``delay`` is the retry backoff, slept *here* (in the worker for a
    pooled retry) so the parent's scheduling loop never blocks.
    """
    if delay > 0:
        time.sleep(delay)
    outcome = UnitOutcome(unit.cell_index, unit.graph_seed, unit.sample_index)
    plan = active_plan()
    if plan is not None:
        plan.drain_events()  # events of a previous unit are not ours
    try:
        if plan is not None:
            event = plan.fire(FaultKind.CRASH_UNIT)
            if event is not None:
                raise InjectedCrashError(
                    f"injected crash at the start of unit "
                    f"(chaos opportunity {event.opportunity})"
                )
        graph = _cached_graph(unit.graph)
        query = unit.query.materialise(graph, unit.sample_index, seed=unit.source_seed)
        algorithm = _make_runner(unit.algorithm)
        recorder = trace = collector = None
        if unit.collect_trace:
            # Mirror the serial --trace-out instrumentation exactly, so
            # a --jobs N trace merges to the same event stream.
            from repro.core.base import TwoPhaseAlgorithm
            from repro.obs.spans import SpanRecorder
            from repro.storage.trace import PageTrace

            instrumentable = isinstance(algorithm, TwoPhaseAlgorithm) or getattr(
                algorithm, "accepts_instrumentation", False
            )
            if instrumentable:
                collector = TraceCollector(label=unit.algorithm)
                recorder = SpanRecorder(collector=collector)
                if isinstance(algorithm, TwoPhaseAlgorithm):
                    trace = PageTrace()
        with _unit_guard(timeout) as check_deadline:
            start = time.perf_counter()
            if collector is not None:
                if trace is not None:
                    result = algorithm.run(graph, query, unit.system,
                                           recorder=recorder, trace=trace,
                                           collector=collector)
                else:
                    result = algorithm.run(graph, query, unit.system,
                                           recorder=recorder, collector=collector)
            else:
                result = algorithm.run(graph, query, unit.system)
            wall_seconds = time.perf_counter() - start
            check_deadline()
    except UnitTimeout as exc:
        outcome.error = UnitError("timeout", str(exc), attempt, unit.describe())
        return outcome
    except InjectedFaultError as exc:
        message = f"{type(exc).__name__}: {exc}"
        outcome.error = UnitError("fault", message, attempt, unit.describe())
        return outcome
    except Exception as exc:
        message = f"{type(exc).__name__}: {exc}"
        described = {**unit.describe(), "traceback": traceback.format_exc(limit=5)}
        outcome.error = UnitError("exception", message, attempt, described)
        return outcome
    workload = dict(unit.workload) or {"nodes": graph.num_nodes, "arcs": graph.num_arcs}
    outcome.result = result
    outcome.record = RunRecord.from_result(result, workload=workload, recorder=recorder,
                                           trace=trace, wall_seconds=wall_seconds)
    if collector is not None:
        outcome.trace = tuple(collector.events)
    if plan is not None:
        # Non-fatal faults (slow-io, evict-storm) that fired during the
        # run travel with the record, so chaos runs are auditable.
        outcome.record.faults = [event.as_dict() for event in plan.drain_events()]
    return outcome


# ---------------------------------------------------------------------------
# Parent side: the engine.
# ---------------------------------------------------------------------------


class ExperimentEngine:
    """Runs experiment cells, serially or across a process pool.

    One engine owns one worker pool for its whole lifetime, so the
    per-worker graph caches persist across every table and figure of a
    ``run_all`` sweep.  Close (or use as a context manager) to release
    the workers.
    """

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 retries: int = DEFAULT_RETRIES, backoff: float = DEFAULT_BACKOFF,
                 checkpoint: SweepJournal | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.checkpoint = checkpoint
        self.failures: list[UnitError] = []
        self._pool: ProcessPoolExecutor | None = None
        self._cell_memo: dict[str, tuple[AveragedMetrics, list[RunRecord]]] = {}
        # Fixed-seed jitter: retry delays are deterministic for a given
        # submission order, like everything else about the engine.  The
        # policy is shared with the serve layer's rebuild retries.
        self._backoff_policy = BackoffPolicy(base=backoff)

    def _retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` (>= 2)."""
        return self._backoff_policy.delay(attempt)

    # -- lifecycle -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- unit-level API (the CLI's fan-out) ----------------------------------

    def map_units(self, units: Sequence[WorkUnit]) -> list[UnitOutcome]:
        """Execute units (in parallel when ``jobs > 1``) and return their
        outcomes in submission order.  Failed units are retried
        ``retries`` times; permanent failures are returned as outcomes
        with ``.error`` set *and* appended to :attr:`failures`.
        """
        if not units:
            return []
        if not self.parallel:
            outcomes = [self._run_with_retry_serial(unit) for unit in units]
        else:
            outcomes = self._map_units_pool(units)
        for outcome in outcomes:
            if outcome.error is not None:
                self.failures.append(outcome.error)
        return outcomes

    def _run_with_retry_serial(self, unit: WorkUnit) -> UnitOutcome:
        outcome = execute_unit(unit, self.timeout)
        attempt = 1
        while outcome.error is not None and attempt <= self.retries:
            attempt += 1
            outcome = execute_unit(unit, self.timeout, attempt=attempt,
                                   delay=self._retry_delay(attempt))
        return outcome

    def _map_units_pool(self, units: Sequence[WorkUnit]) -> list[UnitOutcome]:
        pool = self._ensure_pool()
        outcomes: dict[int, UnitOutcome] = {}
        pending = {pool.submit(execute_unit, unit, self.timeout): (index, unit, 1)
                   for index, unit in enumerate(units)}
        # The in-worker SIGALRM is the real timeout; the parent-side
        # wait() deadline is a backstop for a worker wedged outside
        # Python bytecode (it cannot reclaim the worker, only report).
        backstop = None
        if self.timeout:
            backstop = (self.timeout * (self.retries + 1) + 30.0) * len(units)
        deadline = time.monotonic() + backstop if backstop else None
        while pending:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            done, _ = wait(pending, timeout=remaining, return_when=FIRST_COMPLETED)
            if not done:  # backstop expired: report every outstanding unit
                for index, unit, attempt in pending.values():
                    outcomes[index] = UnitOutcome(
                        unit.cell_index, unit.graph_seed, unit.sample_index,
                        error=UnitError("lost", "worker did not respond before the "
                                        "parent-side deadline", attempt, unit.describe()),
                    )
                break
            for future in done:
                index, unit, attempt = pending.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:  # BrokenProcessPool and friends
                    outcome = UnitOutcome(
                        unit.cell_index, unit.graph_seed, unit.sample_index,
                        error=UnitError("lost", f"{type(exc).__name__}: {exc}",
                                        attempt, unit.describe()),
                    )
                if outcome.error is not None and attempt <= self.retries:
                    retry = pool.submit(execute_unit, unit, self.timeout,
                                        attempt + 1, self._retry_delay(attempt + 1))
                    pending[retry] = (index, unit, attempt + 1)
                    continue
                outcomes[index] = outcome
        return [outcomes[index] for index in range(len(units))]

    # -- cell-level API (tables and figures) ---------------------------------

    def run_cells(
        self,
        cells: Sequence[Cell],
        profile: ScaleProfile,
        sink: RunSink | None = None,
    ) -> list[AveragedMetrics]:
        """Execute one cell grid and return one average per cell, in order.

        ``jobs == 1`` delegates each cell to the unchanged serial
        :func:`~repro.experiments.runner.average_runs`.  Otherwise all
        units of all (unmemoised) cells are fanned out at once and the
        aggregation replays the serial order exactly.  A cell with a
        permanently failed unit yields :func:`failed_metrics` (its
        errors are on :attr:`failures`).

        With a :attr:`checkpoint` journal attached, cells already in
        the journal replay instead of re-running, and every freshly
        completed cell is durably appended; failed cells are never
        journaled, so a resume retries them.
        """
        if not self.parallel:
            if self.checkpoint is None:
                return [
                    average_runs(cell.algorithm, cell.family, cell.query, profile,
                                 cell.system, sink=sink)
                    for cell in cells
                ]
            return [self._run_cell_serial_journaled(cell, profile, sink)
                    for cell in cells]
        results: list[AveragedMetrics | None] = [None] * len(cells)
        units: list[WorkUnit] = []
        fresh: dict[int, Cell] = {}
        for cell_index, cell in enumerate(cells):
            memo = self._lookup_cell(self._cell_key(cell, profile))
            if memo is not None:
                metrics, records = memo
                self._emit(records, sink)
                results[cell_index] = metrics
                continue
            fresh[cell_index] = cell
            units.extend(self._cell_units(cell_index, cell, profile))

        by_cell: dict[int, list[UnitOutcome]] = {index: [] for index in fresh}
        for outcome in self.map_units(units):
            by_cell[outcome.cell_index].append(outcome)

        for cell_index, cell in fresh.items():
            outcomes = sorted(by_cell[cell_index], key=UnitOutcome.order_key)
            if any(not outcome.ok for outcome in outcomes):
                results[cell_index] = failed_metrics(cell.algorithm)
                continue
            records = [outcome.record for outcome in outcomes]
            self._emit(records, sink)
            metrics = AveragedMetrics.from_results(
                cell.algorithm, [outcome.result for outcome in outcomes]
            )
            self._store_cell(self._cell_key(cell, profile), metrics, records)
            results[cell_index] = metrics
        return results  # type: ignore[return-value]

    def _run_cell_serial_journaled(
        self, cell: Cell, profile: ScaleProfile, sink: RunSink | None
    ) -> AveragedMetrics:
        """One serial cell with checkpoint replay/append.

        A journaled cell replays its records through :meth:`_emit`
        (sink plus global sink -- the same two destinations
        ``run_single`` writes), so a resumed sweep's output is
        byte-identical to an uninterrupted one.  Fresh cells run
        through the unchanged serial path with a tee sink capturing
        the records for the journal.
        """
        key = self._cell_key(cell, profile)
        cached = self.checkpoint.get(key) if self.checkpoint is not None else None
        if cached is not None:
            metrics, records = cached
            self._emit(records, sink)
            return metrics
        # run_single also emits to the process-wide sink; when that is
        # the very sink we were given, forwarding from the tee would
        # double-emit, so the tee only captures.
        forward = sink if sink is not get_global_sink() else None
        capture = _CaptureSink(forward)
        metrics = average_runs(cell.algorithm, cell.family, cell.query, profile,
                               cell.system, sink=capture)
        if self.checkpoint is not None and metrics.runs > 0:
            self.checkpoint.record(key, metrics, capture.records)
        return metrics

    def _lookup_cell(
        self, key: str
    ) -> tuple[AveragedMetrics, list[RunRecord]] | None:
        memo = self._cell_memo.get(key)
        if memo is None and self.checkpoint is not None:
            memo = self.checkpoint.get(key)
            if memo is not None:
                self._cell_memo[key] = memo
        return memo

    def _store_cell(self, key: str, metrics: AveragedMetrics,
                    records: list[RunRecord]) -> None:
        self._cell_memo[key] = (metrics, records)
        if self.checkpoint is not None:
            self.checkpoint.record(key, metrics, records)

    def _cell_units(self, cell_index: int, cell: Cell,
                    profile: ScaleProfile) -> Iterator[WorkUnit]:
        """The serial repetition protocol, as independent units."""
        workload = (
            ("family", cell.family),
            ("profile", profile.name),
            ("nodes", profile.num_nodes),
        )
        samples = 1 if cell.query.selectivity is None else profile.source_samples
        for graph_seed in range(profile.graphs_per_family):
            for sample_index in range(samples):
                yield WorkUnit(
                    cell_index=cell_index,
                    algorithm=cell.algorithm,
                    graph=GraphSpec.for_profile(cell.family, profile, graph_seed),
                    query=cell.query,
                    system=cell.system,
                    graph_seed=graph_seed,
                    sample_index=sample_index,
                    workload=workload,
                )

    @staticmethod
    def _cell_key(cell: Cell, profile: ScaleProfile) -> str:
        """The cell's canonical identity string (also the journal key)."""
        return cell_key(
            cell.algorithm,
            cell.family,
            cell.query.selectivity,
            system_config_dict(cell.system),
            dataclasses.asdict(profile),
        )

    @staticmethod
    def _emit(records: Sequence[RunRecord], sink: RunSink | None) -> None:
        """Mirror ``run_single``'s double emission in the parent."""
        global_sink = get_global_sink()
        for record in records:
            if sink is not None:
                sink.emit(record)
            if global_sink is not None and global_sink is not sink:
                global_sink.emit(record)


class _CaptureSink:
    """Tee sink: forwards to the real sink while keeping the records.

    Used by the journaled serial path, which needs the records of a
    cell to persist them -- while the downstream sink still sees every
    record exactly when and where it otherwise would.
    """

    def __init__(self, forward: RunSink | None) -> None:
        self.forward = forward
        self.records: list[RunRecord] = []

    def emit(self, record: RunRecord) -> None:
        self.records.append(record)
        if self.forward is not None:
            self.forward.emit(record)


# ---------------------------------------------------------------------------
# The process-wide active engine (what tables/figures route through).
# ---------------------------------------------------------------------------

_SERIAL = ExperimentEngine(jobs=1)
_active: ExperimentEngine | None = None


def get_engine() -> ExperimentEngine:
    """The active engine; a serial (jobs=1) engine when none is set."""
    return _active if _active is not None else _SERIAL


def set_engine(engine: ExperimentEngine | None) -> ExperimentEngine | None:
    """Install (or clear) the process-wide engine; returns the previous."""
    global _active
    previous = _active
    _active = engine
    return previous


@contextmanager
def use_engine(engine: ExperimentEngine) -> Iterator[ExperimentEngine]:
    """Scope an engine as the process-wide active one."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)


def run_cells(
    cells: Sequence[Cell],
    profile: ScaleProfile,
    sink: RunSink | None = None,
) -> list[AveragedMetrics]:
    """Run a cell grid through the active engine (serial by default)."""
    return get_engine().run_cells(cells, profile, sink=sink)
