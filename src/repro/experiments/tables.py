"""Regeneration of the paper's Tables 2, 3 and 4.

(Table 1 is the query parameter grid; it is data, not an experiment --
see :mod:`repro.graphs.datasets`.)
"""

from __future__ import annotations

import time

from repro.core.query import SystemConfig
from repro.core.registry import make_algorithm
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.parallel import Cell, run_cells
from repro.experiments.queries import QuerySpec
from repro.graphs.analysis import profile_graph
from repro.graphs.datasets import GRAPH_FAMILIES
from repro.metrics.report import format_table


def table2(profile: ScaleProfile | str = "default") -> list[dict[str, object]]:
    """Table 2: characteristics of the G1..G12 graphs.

    Columns mirror the paper: generation parameters (F, l), number of
    arcs, maximum node level, rectangle-model height and width, average
    locality of all arcs and of the irredundant arcs, and the size of
    the transitive closure.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    rows = []
    for family in GRAPH_FAMILIES:
        graph = profile.build(family, seed=0)
        stats = profile_graph(graph)
        rows.append(
            {
                "graph": family.name,
                "F": family.avg_out_degree,
                "l": max(1, family.locality // profile.scale),
                "arcs": stats.num_arcs,
                "max_level": stats.max_level,
                "H": round(stats.height),
                "W": round(stats.width),
                "avg_loc": round(stats.avg_arc_locality),
                "avg_irred_loc": round(stats.avg_irredundant_locality),
                "closure": stats.closure_size,
            }
        )
    return rows


def table3(profile: ScaleProfile | str = "default") -> list[dict[str, object]]:
    """Table 3: I/O and CPU cost breakdown of BTC (G6, CTC, M=10..50).

    The paper reports real/user/system time measured with Unix ``time``
    plus the simulated page I/O count and the estimated I/O time at
    20 ms per I/O.  Here real time is wall-clock time, user time is
    process CPU time, and the I/O columns come from the same simulated
    buffer manager.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    graph = profile.build("G6", seed=0)
    rows = []
    for buffer_pages in (10, 20, 50):
        algorithm = make_algorithm("btc")
        start = time.perf_counter()
        result = algorithm.run(graph, system=SystemConfig(buffer_pages=buffer_pages))
        wall = time.perf_counter() - start
        metrics = result.metrics
        rows.append(
            {
                "M": buffer_pages,
                "real_s": round(wall, 3),
                "user_s": round(metrics.cpu_seconds, 3),
                "restructure_cpu_s": round(metrics.restructure_cpu_seconds, 3),
                "page_io": metrics.total_io,
                "est_io_s": round(metrics.estimated_io_seconds(), 2),
                "io_bound": metrics.estimated_io_seconds() > metrics.cpu_seconds,
            }
        )
    return rows


def table4(
    profile: ScaleProfile | str = "default",
    selectivities: tuple[int, ...] = (5, 10),
) -> list[dict[str, object]]:
    """Table 4: JKB2 I/O relative to BTC, against graph width.

    Graphs are sorted by increasing rectangle-model width; each cell is
    JKB2's total I/O divided by BTC's for the same PTC queries (s = 5
    and s = 10 source nodes, M = 10 buffer pages).  The paper's
    observation: the ratio grows with the width -- JKB2 wins on narrow
    graphs and loses on wide ones -- and is far less sensitive to the
    height.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    system = SystemConfig(buffer_pages=10)
    results = iter(run_cells(
        [Cell(name, family.name,
              QuerySpec.selection(profile.scaled_selectivity(s)), system)
         for family in GRAPH_FAMILIES for s in selectivities
         for name in ("btc", "jkb2")],
        profile,
    ))
    rows = []
    for family in GRAPH_FAMILIES:
        graph = profile.build(family, seed=0)
        stats = profile_graph(graph, include_closure_size=False)
        row: dict[str, object] = {
            "graph": family.name,
            "W": round(stats.width),
            "H": round(stats.height),
        }
        for s in selectivities:
            btc = next(results)
            jkb2 = next(results)
            ratio = jkb2.total_io / btc.total_io if btc.total_io else 0.0
            row[f"jkb2/btc@s={s}"] = round(ratio, 2)
        rows.append(row)
    rows.sort(key=lambda row: row["W"])
    return rows


def render_tables(profile: ScaleProfile | str = "default") -> str:
    """Render Tables 2-4 as text (used by ``run_all`` and the benches)."""
    parts = [
        format_table(table2(profile), title="Table 2. Graph parameters"),
        format_table(table3(profile), title="Table 3. I/O and CPU cost of BTC (G6, CTC)"),
        format_table(table4(profile), title="Table 4. JKB2 vs BTC for PTC queries (by width)"),
    ]
    return "\n\n".join(parts)
