"""High-level convenience API.

The algorithm classes in :mod:`repro.core` mirror the paper exactly:
they require an acyclic input and make the caller pick an algorithm.
This module is the front door a downstream user actually wants:

* :func:`transitive_closure` accepts any directed graph (cyclic inputs
  are condensed first, the standard preprocessing of Section 1), any
  query shape, and picks an algorithm automatically unless told
  otherwise;
* :func:`choose_algorithm` exposes the selection heuristic on its own
  -- the paper's Section 6 findings and rectangle model distilled into
  a decision procedure;
* :func:`reachable` answers a single reachability probe.

Example::

    import repro.api as tc

    closure = tc.transitive_closure(arcs=[(0, 1), (1, 2), (2, 0)], num_nodes=3)
    assert closure.reaches(0, 0)   # cycles are handled
    print(closure.chosen_algorithm, closure.metrics.total_io)
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.errors import ConfigurationError
from repro.graphs.analysis import bitset_to_nodes
from repro.graphs.condensation import Condensation, condensation
from repro.graphs.digraph import Digraph
from repro.graphs.toposort import is_acyclic
from repro.metrics.counters import MetricSet


@dataclass
class Closure:
    """The answer of a :func:`transitive_closure` call.

    ``successors`` maps each answered node to the set of nodes it
    reaches.  For cyclic inputs a node can reach itself; for acyclic
    inputs it never does.
    """

    successors: dict[int, set[int]]
    chosen_algorithm: str
    metrics: MetricSet
    condensed: bool = False
    condensation_info: Condensation | None = None
    tuples: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.tuples = sum(len(reached) for reached in self.successors.values())

    def reaches(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` (proper paths only)."""
        return dst in self.successors.get(src, set())

    def successors_of(self, node: int) -> list[int]:
        """The sorted successors of an answered node."""
        return sorted(self.successors.get(node, set()))


def choose_algorithm(
    graph: Digraph,
    sources: Iterable[int] | None = None,
    buffer_pages: int = 20,
) -> str:
    """Pick an algorithm for a query, per the paper's findings.

    The decision procedure distils Section 6:

    1. Full closure, or nearly all nodes selected: **BTC** -- it was
       the overall best algorithm for CTC (blocking hurts Hybrid, the
       tree algorithms pay extra page I/O, conclusion 1).
    2. A handful of sources (``s`` at most ~1% of the nodes): **SRCH**
       -- the best performer at high selectivity (conclusion 4).
    3. Otherwise consult the rectangle model (Section 6.3.4): a
       *narrow* magic graph favours **JKB2**, a wide one **BJ** (BTC
       plus the free single-parent improvement, conclusion 2).

    The width test compares W(G_m) against the number of magic nodes:
    Table 4's crossover sits where the width approaches roughly a
    fifth of the node count for the paper's 2000-node workloads.
    """
    if sources is None:
        return "btc"
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise ConfigurationError("sources must not be empty")
    if len(source_list) <= max(2, graph.num_nodes // 100):
        return "srch"

    from repro.graphs.toposort import reachable_from

    magic_nodes = reachable_from(graph, source_list)
    if len(source_list) >= 0.5 * graph.num_nodes:
        return "btc"
    from repro.graphs.analysis import profile_graph

    stats = profile_graph(graph, nodes=magic_nodes, include_closure_size=False)
    if stats.width < 0.2 * max(1, len(magic_nodes)):
        return "jkb2"
    return "bj"


def transitive_closure(
    graph: Digraph | None = None,
    arcs: Iterable[tuple[int, int]] | None = None,
    num_nodes: int | None = None,
    sources: Iterable[int] | None = None,
    algorithm: str = "auto",
    buffer_pages: int = 20,
    system: SystemConfig | None = None,
    engine: str = "fast",
) -> Closure:
    """Compute a full or partial transitive closure of any digraph.

    Parameters
    ----------
    graph / arcs, num_nodes:
        The input: either an existing :class:`Digraph`, or an arc list
        plus node count.
    sources:
        Source nodes for a partial closure; omit for the full closure.
    algorithm:
        A registry name (``btc``, ``hyb``, ``bj``, ``srch``, ``spn``,
        ``jkb``, ``jkb2``) or ``"auto"`` to apply
        :func:`choose_algorithm`.
    buffer_pages / system:
        Simulated system configuration (``system`` wins if given).
    engine:
        Storage engine name.  The API serves *answers*, not cost
        curves, so it defaults to the in-memory ``"fast"`` engine;
        pass ``"paged"`` (or a ``system`` config carrying an engine)
        to charge the paper's page-I/O model.  An explicit ``system``
        takes precedence.

    Cyclic inputs are handled by condensation: the closure is computed
    on the acyclic condensation and expanded back, so nodes on cycles
    correctly reach themselves.
    """
    if graph is None:
        if arcs is None or num_nodes is None:
            raise ConfigurationError("pass either a graph, or arcs plus num_nodes")
        graph = Digraph.from_arcs(num_nodes, arcs)
    elif arcs is not None:
        raise ConfigurationError("pass either a graph or arcs, not both")

    system = system or SystemConfig(buffer_pages=buffer_pages, engine=engine)
    source_list = None if sources is None else list(dict.fromkeys(sources))

    if is_acyclic(graph):
        return _acyclic_closure(graph, source_list, algorithm, system)
    return _cyclic_closure(graph, source_list, algorithm, system)


def reachable(graph: Digraph, src: int, dst: int, buffer_pages: int = 20) -> bool:
    """Single reachability probe: is there a (non-empty) path src -> dst?"""
    closure = transitive_closure(
        graph, sources=[src], algorithm="auto", buffer_pages=buffer_pages
    )
    return closure.reaches(src, dst)


# -- internals ------------------------------------------------------------


def _resolve(algorithm: str, graph: Digraph, sources: list[int] | None) -> str:
    if algorithm != "auto":
        return algorithm
    return choose_algorithm(graph, sources)


def _acyclic_closure(
    graph: Digraph,
    sources: list[int] | None,
    algorithm: str,
    system: SystemConfig,
) -> Closure:
    name = _resolve(algorithm, graph, sources)
    query = Query.full() if sources is None else Query.ptc(sources)
    result = make_algorithm(name).run(graph, query, system)
    successors = {
        node: set(bitset_to_nodes(bits))
        for node, bits in result.successor_bits.items()
    }
    return Closure(
        successors=successors,
        chosen_algorithm=name,
        metrics=result.metrics,
    )


def _cyclic_closure(
    graph: Digraph,
    sources: list[int] | None,
    algorithm: str,
    system: SystemConfig,
) -> Closure:
    cond = condensation(graph)
    dag = cond.dag
    if sources is None:
        dag_sources = None
    else:
        dag_sources = list(dict.fromkeys(cond.component_of[s] for s in sources))

    name = _resolve(algorithm, dag, dag_sources)
    query = Query.full() if dag_sources is None else Query.ptc(dag_sources)
    result = make_algorithm(name).run(dag, query, system)

    component_closure = {
        comp: set(bitset_to_nodes(bits))
        for comp, bits in result.successor_bits.items()
    }
    if dag_sources is not None:
        # Components not answered (non-source) contribute nothing.
        for comp in range(dag.num_nodes):
            component_closure.setdefault(comp, set())

    from repro.graphs.condensation import expand_closure_to_original

    expanded = expand_closure_to_original(cond, component_closure)
    if sources is None:
        successors = expanded
    else:
        successors = {s: expanded[s] for s in sources}
    return Closure(
        successors=successors,
        chosen_algorithm=name,
        metrics=result.metrics,
        condensed=True,
        condensation_info=cond,
    )
