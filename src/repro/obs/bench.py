"""Aggregation of per-run records into the benchmark perf trajectory.

The benchmark suite installs a :class:`~repro.obs.sink.MemorySink` as
the process-wide sink, so every :func:`~repro.experiments.runner
.run_single` call made by the regenerated tables and figures emits one
:class:`~repro.obs.record.RunRecord`.  At session end those records are
folded into one entry per *benchmark cell* (algorithm x workload x
query shape) and written as ``BENCH_summary.json`` -- the durable
perf-trajectory file later PRs diff against.
"""

from __future__ import annotations

from typing import Any

from repro.obs.record import RunRecord


def _query_label(query: dict[str, Any]) -> str:
    if query.get("kind") == "full":
        return "full"
    return f"s={query.get('selectivity')}"


def build_bench_summary(records: list[RunRecord]) -> list[dict[str, Any]]:
    """One summary entry per cell, averaging that cell's runs.

    Each entry carries the cell identity (algorithm, family/workload,
    query shape) plus mean ``total_io``, mean ``cpu_seconds`` and mean
    wall-clock seconds over the cell's runs.
    """
    cells: dict[tuple[str, str, str, str], list[RunRecord]] = {}
    for record in records:
        cells.setdefault(record.cell_key(), []).append(record)

    summary = []
    for key in sorted(cells):
        runs = cells[key]
        first = runs[0]
        entry: dict[str, Any] = {
            "algorithm": first.algorithm,
            "family": first.workload.get("family"),
            "workload": first.workload,
            "query": _query_label(first.query),
            "buffer_pages": first.system.get("buffer_pages"),
            "system": first.system,
            "runs": len(runs),
            "total_io": sum(r.total_io for r in runs) / len(runs),
            "cpu_seconds": round(sum(r.cpu_seconds for r in runs) / len(runs), 6),
            "wall_seconds": round(sum(r.wall_seconds for r in runs) / len(runs), 6),
        }
        summary.append(entry)
    return summary
