"""Aggregation of per-run records into the benchmark perf trajectory.

The benchmark suite installs a :class:`~repro.obs.sink.MemorySink` as
the process-wide sink, so every :func:`~repro.experiments.runner
.run_single` call made by the regenerated tables and figures emits one
:class:`~repro.obs.record.RunRecord`.  At session end those records are
folded into one entry per *benchmark cell* (algorithm x workload x
query shape) and written as ``BENCH_summary.json`` -- the durable
perf-trajectory file later PRs diff against.

Repetitions: the bench harness can run each cell ``N`` times
(``--repro-reps`` in the benchmark suite, ``--reps`` on the CLI).  The
simulated counters are deterministic, so the per-cell ``total_io`` is
a mean purely for symmetry; the *measured* metrics use **min-of-N** --
the minimum is the least-noisy estimator of a timing's true cost on a
shared machine -- with every sample preserved in ``cpu_samples`` /
``wall_samples`` so the compare gate can derive a variance band.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.record import RunRecord


def _query_label(query: dict[str, Any]) -> str:
    if query.get("kind") == "full":
        return "full"
    return f"s={query.get('selectivity')}"


def build_bench_summary(records: list[RunRecord]) -> list[dict[str, Any]]:
    """One summary entry per cell, aggregating that cell's runs.

    Each entry carries the cell identity (algorithm, family/workload,
    query shape) plus mean ``total_io`` and min-of-N ``cpu_seconds``
    and ``wall_seconds``.  Cells with more than one run additionally
    record every timing sample (``cpu_samples``/``wall_samples``).
    """
    cells: dict[tuple[str, str, str, str], list[RunRecord]] = {}
    for record in records:
        cells.setdefault(record.cell_key(), []).append(record)

    summary = []
    for key in sorted(cells):
        runs = cells[key]
        first = runs[0]
        cpu_samples = [round(r.cpu_seconds, 6) for r in runs]
        wall_samples = [round(r.wall_seconds, 6) for r in runs]
        entry: dict[str, Any] = {
            "algorithm": first.algorithm,
            "family": first.workload.get("family"),
            "workload": first.workload,
            "query": _query_label(first.query),
            "buffer_pages": first.system.get("buffer_pages"),
            "system": first.system,
            "runs": len(runs),
            "total_io": sum(r.total_io for r in runs) / len(runs),
            "cpu_seconds": min(cpu_samples),
            "wall_seconds": min(wall_samples),
        }
        if len(runs) > 1:
            entry["cpu_samples"] = cpu_samples
            entry["wall_samples"] = wall_samples
        summary.append(entry)
    return summary


def write_bench_summary(summary: Any, path: str | Path) -> None:
    """Write a bench summary as reviewable JSON.

    Keys are sorted and the file ends with a trailing newline, so the
    diff between two PRs' ``BENCH_summary.json`` is minimal and every
    line is a real change.
    """
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


# -- repetitions knob --------------------------------------------------------

_bench_reps = 1


def set_bench_reps(reps: int) -> int:
    """Set how many times :func:`~repro.experiments.runner.run_single`
    repeats each run (returns the previous value so callers restore it).
    """
    global _bench_reps
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    previous = _bench_reps
    _bench_reps = reps
    return previous


def bench_reps() -> int:
    """The current per-run repetition count (1 = no repetition)."""
    return _bench_reps
