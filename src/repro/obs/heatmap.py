"""Aggregations over trace events: page heatmaps and pool residency.

These reduce a :class:`~repro.obs.tracing.TraceCollector` event stream
(or one re-read from a Chrome trace file) into small JSON-safe grids
the HTML report renders directly:

* :func:`page_heatmap` -- how often each page (or page bin) was touched
  in each slice of the run, split by page kind.  This is the picture
  the paper argues with: BTC's sequential sweeps versus JKB's
  scattered unclustered probes.
* :func:`residency_timeline` -- how many distinct pages were resident
  in (and pinned by) the buffer pool over the run, reconstructed from
  fetch/create/evict/pin/unpin events.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.tracing import (
    EV_PAGE_CREATE,
    EV_PAGE_EVICT,
    EV_PAGE_FETCH,
    EV_PAGE_PIN,
    EV_PAGE_UNPIN,
    PAGE_TOUCH_EVENTS,
    TraceEventRecord,
)

__all__ = ["page_heatmap", "residency_timeline"]


def _page_events(events: Sequence[TraceEventRecord]) -> list[TraceEventRecord]:
    return [
        record
        for record in events
        if record.name in PAGE_TOUCH_EVENTS and record.page is not None
    ]


def page_heatmap(
    events: Sequence[TraceEventRecord],
    *,
    buckets: int = 48,
    max_rows: int = 32,
) -> dict[str, Any]:
    """Bucket page touches into a (page-row x time-bucket) count grid.

    Rows are per page when few pages were touched, otherwise contiguous
    page *bins* per kind so the grid never exceeds ``max_rows`` rows.
    Time buckets slice the event sequence evenly by event index (not
    wall time): the grid stays meaningful even when most events land in
    one hot phase.
    """
    touches = _page_events(events)
    if not touches:
        return {"rows": [], "buckets": 0, "max_count": 0, "touches": 0}
    buckets = min(buckets, len(touches))
    # Page universe per kind decides row granularity.
    pages_by_kind: dict[str, set[int]] = {}
    for record in touches:
        pages_by_kind.setdefault(record.kind or "?", set()).add(record.page or 0)
    total_pages = sum(len(pages) for pages in pages_by_kind.values())
    rows: list[dict[str, Any]] = []
    row_of: dict[tuple[str, int], int] = {}
    for kind in sorted(pages_by_kind):
        pages = sorted(pages_by_kind[kind])
        # Proportional share of the row budget, at least one row per kind.
        kind_rows = max(1, round(max_rows * len(pages) / total_pages))
        bin_size = max(1, -(-len(pages) // kind_rows))  # ceil division
        for start in range(0, len(pages), bin_size):
            chunk = pages[start : start + bin_size]
            index = len(rows)
            rows.append(
                {
                    "kind": kind,
                    "page_lo": chunk[0],
                    "page_hi": chunk[-1],
                    "counts": [0] * buckets,
                }
            )
            for page in chunk:
                row_of[(kind, page)] = index
    span = len(touches)
    for position, record in enumerate(touches):
        bucket = min(buckets - 1, position * buckets // span)
        row = row_of[(record.kind or "?", record.page or 0)]
        rows[row]["counts"][bucket] += 1
    max_count = max(max(row["counts"]) for row in rows)
    return {
        "rows": rows,
        "buckets": buckets,
        "max_count": max_count,
        "touches": len(touches),
    }


def residency_timeline(
    events: Sequence[TraceEventRecord], *, buckets: int = 96
) -> dict[str, Any]:
    """Reconstruct buffer-pool occupancy over the event sequence.

    Fetches and creates admit a page, evictions drop it; pins nest.
    Sampled at ``buckets`` evenly spaced points in event order, plus
    the final state.
    """
    if not events:
        return {"resident": [], "pinned": [], "peak_resident": 0, "buckets": 0}
    buckets = min(buckets, len(events))
    resident: set[tuple[str, int]] = set()
    pins: dict[tuple[str, int], int] = {}
    samples: list[int] = []
    pinned_samples: list[int] = []
    peak = 0
    stride = len(events) / buckets
    next_sample = stride
    for position, record in enumerate(events, start=1):
        key = (record.kind or "?", record.page or 0)
        if record.name in (EV_PAGE_FETCH, EV_PAGE_CREATE):
            resident.add(key)
            peak = max(peak, len(resident))
        elif record.name == EV_PAGE_EVICT:
            resident.discard(key)
            pins.pop(key, None)
        elif record.name == EV_PAGE_PIN:
            pins[key] = pins.get(key, 0) + 1
        elif record.name == EV_PAGE_UNPIN:
            count = pins.get(key, 0) - 1
            if count <= 0:
                pins.pop(key, None)
            else:
                pins[key] = count
        if position >= next_sample:
            samples.append(len(resident))
            pinned_samples.append(len(pins))
            next_sample += stride
    if len(samples) < buckets:
        samples.append(len(resident))
        pinned_samples.append(len(pins))
    return {
        "resident": samples,
        "pinned": pinned_samples,
        "peak_resident": peak,
        "buckets": len(samples),
    }
