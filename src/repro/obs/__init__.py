"""Structured run telemetry: spans, run records, sinks, comparison.

The paper's methodological point is that performance claims need the
*right* measurements; this subpackage makes every run's measurements
durable.  See ``docs/OBSERVABILITY.md`` for the full guide.

* :mod:`repro.obs.spans` -- nested wall-clock span timers, aggregated
  by path, free when not attached;
* :mod:`repro.obs.record` -- :class:`RunRecord`, the JSON-serialisable
  description of one run (workload, config, metrics, per-phase I/O,
  spans, optional page-trace profile);
* :mod:`repro.obs.sink` -- JSONL / memory / null sinks plus the
  ``REPRO_OBS`` environment toggle and a process-wide sink;
* :mod:`repro.obs.compare` -- the noise-aware baseline-vs-candidate
  regression gate behind ``python -m repro compare``;
* :mod:`repro.obs.tracing` -- the structured engine event trace
  (ring-buffered :class:`TraceCollector`, Chrome trace-event export);
* :mod:`repro.obs.heatmap` -- page-access / pool-residency aggregation
  over trace events;
* :mod:`repro.obs.report` -- the self-contained HTML dashboard behind
  ``python -m repro obs report``;
* :mod:`repro.obs.bench` -- per-cell benchmark summaries (min-of-N
  timings, ``--reps`` knob).

The storage layer imports :mod:`repro.obs.spans` and
:mod:`repro.obs.tracing` (which depend on nothing), while
:mod:`repro.obs.record` depends on the storage layer; to keep that
legal the package exports everything except the span API lazily
(PEP 562).
"""

from repro.obs.spans import NULL_SPAN, SpanRecorder, SpanStats, span

_LAZY = {
    "CellDelta": "repro.obs.compare",
    "ComparisonReport": "repro.obs.compare",
    "MetricGate": "repro.obs.compare",
    "compare_runs": "repro.obs.compare",
    "default_gates": "repro.obs.compare",
    "load_records": "repro.obs.compare",
    "RunRecord": "repro.obs.record",
    "summarise_trace": "repro.obs.record",
    "JsonlSink": "repro.obs.sink",
    "MemorySink": "repro.obs.sink",
    "NullSink": "repro.obs.sink",
    "RunSink": "repro.obs.sink",
    "get_global_sink": "repro.obs.sink",
    "obs_enabled": "repro.obs.sink",
    "set_global_sink": "repro.obs.sink",
    "TraceCollector": "repro.obs.tracing",
    "TraceEventRecord": "repro.obs.tracing",
    "chrome_trace": "repro.obs.tracing",
    "events_from_chrome": "repro.obs.tracing",
    "validate_chrome_trace": "repro.obs.tracing",
    "write_chrome_trace": "repro.obs.tracing",
    "page_heatmap": "repro.obs.heatmap",
    "residency_timeline": "repro.obs.heatmap",
    "build_report": "repro.obs.report",
    "render_report": "repro.obs.report",
    "build_bench_summary": "repro.obs.bench",
    "write_bench_summary": "repro.obs.bench",
    "set_bench_reps": "repro.obs.bench",
    "bench_reps": "repro.obs.bench",
}

__all__ = [
    "NULL_SPAN",
    "SpanRecorder",
    "SpanStats",
    "span",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
