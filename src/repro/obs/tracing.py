"""Structured event tracing at the storage-engine seam.

Where :class:`repro.storage.trace.PageTrace` records buffer-manager
events for *analysis inside a test*, this module records them for
*export*: a :class:`TraceCollector` is a ring buffer of structured
events -- page traffic, block maintenance, delta spool/scan markers
and span boundaries -- that can be serialised to Chrome trace-event
JSON (loadable in ``chrome://tracing`` and https://ui.perfetto.dev)
or aggregated into heatmaps (:mod:`repro.obs.heatmap`) and HTML run
reports (:mod:`repro.obs.report`).

Tracing is a *capability* of the engine seam: only engines that
advertise ``CAP_TRACE`` (the paged substrate) accept a collector; the
fast engine refuses explicitly with :class:`EngineCapabilityError`.
Every emit site is gated on ``collector is not None`` so a disabled
trace plane costs one pointer test and cannot move a counter.

Event vocabulary
----------------

===================  ====================================================
``page.hit``         buffer-pool request satisfied from a resident frame
``page.fetch``       request missed; a physical read was simulated
``page.create``      a page materialised directly in the pool
``page.write``       a dirty page's write-back was simulated
``page.evict``       a frame was dropped by the replacement policy
``page.pin`` /       a frame was pinned to / released from memory
``page.unpin``
``block.split``      a successor list grew a block on a fresh page
``block.relocate``   a list was moved wholesale to a new page
``block.reblock``    Hybrid evicted a pinned list under memory pressure
``delta.spool`` /    semi-naive delta relation written out / re-scanned
``delta.scan``
``span.begin`` /     a :class:`~repro.obs.spans.SpanRecorder` span opened
``span.end``         or closed (span name in ``detail``)
===================  ====================================================
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Sequence

__all__ = [
    "EV_PAGE_HIT",
    "EV_PAGE_FETCH",
    "EV_PAGE_CREATE",
    "EV_PAGE_WRITE",
    "EV_PAGE_EVICT",
    "EV_PAGE_PIN",
    "EV_PAGE_UNPIN",
    "EV_BLOCK_SPLIT",
    "EV_BLOCK_RELOCATE",
    "EV_BLOCK_REBLOCK",
    "EV_DELTA_SPOOL",
    "EV_DELTA_SCAN",
    "EV_SPAN_BEGIN",
    "EV_SPAN_END",
    "EVENT_NAMES",
    "PAGE_TOUCH_EVENTS",
    "TraceEventRecord",
    "TraceCollector",
    "chrome_trace",
    "events_from_chrome",
    "merge_identities",
    "validate_chrome_trace",
    "write_chrome_trace",
]

EV_PAGE_HIT = "page.hit"
EV_PAGE_FETCH = "page.fetch"
EV_PAGE_CREATE = "page.create"
EV_PAGE_WRITE = "page.write"
EV_PAGE_EVICT = "page.evict"
EV_PAGE_PIN = "page.pin"
EV_PAGE_UNPIN = "page.unpin"
EV_BLOCK_SPLIT = "block.split"
EV_BLOCK_RELOCATE = "block.relocate"
EV_BLOCK_REBLOCK = "block.reblock"
EV_DELTA_SPOOL = "delta.spool"
EV_DELTA_SCAN = "delta.scan"
EV_SPAN_BEGIN = "span.begin"
EV_SPAN_END = "span.end"

EVENT_NAMES = frozenset(
    {
        EV_PAGE_HIT,
        EV_PAGE_FETCH,
        EV_PAGE_CREATE,
        EV_PAGE_WRITE,
        EV_PAGE_EVICT,
        EV_PAGE_PIN,
        EV_PAGE_UNPIN,
        EV_BLOCK_SPLIT,
        EV_BLOCK_RELOCATE,
        EV_BLOCK_REBLOCK,
        EV_DELTA_SPOOL,
        EV_DELTA_SCAN,
        EV_SPAN_BEGIN,
        EV_SPAN_END,
    }
)

#: Events that touch a page and therefore feed the access heatmap.
PAGE_TOUCH_EVENTS = frozenset({EV_PAGE_HIT, EV_PAGE_FETCH, EV_PAGE_CREATE})


@dataclass(frozen=True)
class TraceEventRecord:
    """One structured trace event.

    ``ts`` is seconds since the collector was created (monotonic).
    ``phase`` is the execution phase the engine was in when the event
    fired (``"restructure"``, ``"compute"``, ``"writeout"`` or ``""``
    before the first phase transition).
    """

    seq: int
    ts: float
    phase: str
    name: str
    kind: str | None = None
    page: int | None = None
    detail: str | None = None

    def identity(self) -> tuple[str, str, str | None, int | None, str | None]:
        """The event minus its measured fields (seq, wall time).

        Two runs of the same deterministic cell produce equal identity
        streams even though their timestamps differ -- this is what the
        serial-vs-parallel merge tests compare.
        """
        return (self.phase, self.name, self.kind, self.page, self.detail)


class TraceCollector:
    """A bounded, ordered recording of structured trace events.

    The buffer is a ring: once ``capacity`` events are held, each new
    event evicts the oldest and increments :attr:`dropped`.  The
    default capacity comfortably holds the full event stream of every
    paper-scale cell; the bound exists so a runaway workload degrades
    to losing history instead of memory.
    """

    DEFAULT_CAPACITY = 1_000_000

    def __init__(self, capacity: int = DEFAULT_CAPACITY, label: str = "") -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.label = label
        self.dropped = 0
        self.phase = ""
        self._events: deque[TraceEventRecord] = deque(maxlen=capacity)
        self._seq = 0
        self._t0 = perf_counter()

    # -- recording (the hot path) -------------------------------------------

    def emit(
        self,
        name: str,
        kind: str | None = None,
        page: int | None = None,
        detail: str | None = None,
    ) -> None:
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(
            TraceEventRecord(
                self._seq, perf_counter() - self._t0, self.phase, name, kind, page, detail
            )
        )
        self._seq += 1

    def span_begin(self, name: str) -> None:
        self.emit(EV_SPAN_BEGIN, detail=name)

    def span_end(self, name: str) -> None:
        self.emit(EV_SPAN_END, detail=name)

    # -- inspection ---------------------------------------------------------

    @property
    def events(self) -> list[TraceEventRecord]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> Counter[str]:
        """Event counts by name (golden-test fodder)."""
        return Counter(record.name for record in self._events)

    def to_chrome(self) -> dict[str, Any]:
        """This collector alone as a Chrome trace-event payload."""
        return chrome_trace([(self.label or "run", self.events)])


# ---------------------------------------------------------------------------
# Chrome trace-event (Perfetto-compatible) serialisation
# ---------------------------------------------------------------------------

def _chrome_ts(ts: float) -> float:
    # Chrome trace timestamps are microseconds.
    return round(ts * 1e6, 3)


def chrome_trace(
    sections: Sequence[tuple[str, Sequence[TraceEventRecord]]],
) -> dict[str, Any]:
    """Serialise labelled event streams to Chrome trace-event JSON.

    Each ``(label, events)`` section becomes its own trace *process*
    (``pid``), labelled via a ``process_name`` metadata event, so a
    multi-algorithm run renders as parallel swim-lanes in Perfetto.
    Span events map to duration pairs (``ph: "B"/"E"``); everything
    else maps to thread-scoped instant events (``ph: "i"``) carrying
    ``phase``/``kind``/``page``/``detail`` in ``args``.
    """
    trace_events: list[dict[str, Any]] = []
    for pid, (label, events) in enumerate(sections, start=1):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for record in events:
            if record.name == EV_SPAN_BEGIN or record.name == EV_SPAN_END:
                trace_events.append(
                    {
                        "name": record.detail or "span",
                        "cat": "span",
                        "ph": "B" if record.name == EV_SPAN_BEGIN else "E",
                        "ts": _chrome_ts(record.ts),
                        "pid": pid,
                        "tid": 1,
                        "args": {"phase": record.phase},
                    }
                )
                continue
            args: dict[str, Any] = {"phase": record.phase}
            if record.kind is not None:
                args["kind"] = record.kind
            if record.page is not None:
                args["page"] = record.page
            if record.detail is not None:
                args["detail"] = record.detail
            trace_events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "i",
                    "s": "t",
                    "ts": _chrome_ts(record.ts),
                    "pid": pid,
                    "tid": 1,
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Any, sections: Sequence[tuple[str, Sequence[TraceEventRecord]]]
) -> None:
    """Write sections to ``path`` as Chrome trace-event JSON."""
    payload = chrome_trace(sections)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def events_from_chrome(
    payload: dict[str, Any],
) -> list[tuple[str, list[TraceEventRecord]]]:
    """Reconstruct labelled event streams from a Chrome trace payload.

    The inverse of :func:`chrome_trace` up to sequence numbering: the
    report renderer uses this to aggregate heatmaps from a trace file
    without needing the original collectors.
    """
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("not a Chrome trace-event payload: " + problems[0])
    labels: dict[int, str] = {}
    streams: dict[int, list[TraceEventRecord]] = {}
    for event in payload["traceEvents"]:
        pid = event.get("pid", 0)
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                labels[pid] = event.get("args", {}).get("name", f"pid {pid}")
            continue
        args = event.get("args", {})
        stream = streams.setdefault(pid, [])
        if event.get("ph") in ("B", "E"):
            name = EV_SPAN_BEGIN if event["ph"] == "B" else EV_SPAN_END
            record = TraceEventRecord(
                seq=len(stream),
                ts=event.get("ts", 0.0) / 1e6,
                phase=args.get("phase", ""),
                name=name,
                detail=event.get("name"),
            )
        else:
            record = TraceEventRecord(
                seq=len(stream),
                ts=event.get("ts", 0.0) / 1e6,
                phase=args.get("phase", ""),
                name=event.get("name", ""),
                kind=args.get("kind"),
                page=args.get("page"),
                detail=args.get("detail"),
            )
        stream.append(record)
    return [
        (labels.get(pid, f"pid {pid}"), stream)
        for pid, stream in sorted(streams.items())
    ]


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check ``payload`` against the Chrome trace-event JSON shape.

    Returns a list of problems; an empty list means the payload is a
    well-formed JSON-object-format trace (the format Perfetto and
    ``chrome://tracing`` load).  Used by tests and the CI trace-smoke
    leg (``repro obs validate-trace``).
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object with a traceEvents array"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    open_spans: Counter[int] = Counter()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"event {index}: missing name")
        if not isinstance(ph, str) or ph not in ("B", "E", "i", "I", "M", "X", "C"):
            problems.append(f"event {index}: unsupported ph {ph!r}")
            continue
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {index}: missing or negative ts")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {index}: missing pid")
        if ph in ("i", "I") and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"event {index}: bad instant scope {event.get('s')!r}")
        if ph == "B":
            open_spans[event.get("pid", 0)] += 1
        elif ph == "E":
            open_spans[event.get("pid", 0)] -= 1
            if open_spans[event.get("pid", 0)] < 0:
                problems.append(f"event {index}: span end without begin")
                open_spans[event.get("pid", 0)] = 0
    for pid, depth in open_spans.items():
        if depth > 0:
            problems.append(f"pid {pid}: {depth} span(s) never closed")
    return problems


def merge_identities(
    sections: Iterable[tuple[str, Sequence[TraceEventRecord]]],
) -> list[tuple[str, tuple[str, str, str | None, int | None, str | None]]]:
    """Flatten sections to ``(label, identity)`` pairs, order preserved.

    Timestamp-free view of a merged trace: equal for a serial run and
    a parallel run of the same cells merged in submission order.
    """
    return [
        (label, record.identity())
        for label, events in sections
        for record in events
    ]
