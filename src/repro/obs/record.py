"""Durable, machine-readable records of one algorithm run.

A :class:`RunRecord` captures everything the paper's methodology says a
credible performance claim needs: the workload parameters, the
:class:`~repro.core.query.SystemConfig`, the complete
:class:`~repro.metrics.counters.MetricSet` including the per-phase and
per-page-kind I/O breakdowns of :class:`~repro.storage.iostats.IoStats`,
the span timings of an attached
:class:`~repro.obs.spans.SpanRecorder`, and (optionally) a summary of a
:class:`~repro.storage.trace.PageTrace`: the buffer-pool hit-ratio
timeline, the per-:class:`~repro.storage.page.PageKind` access
histogram, and the hottest pages.

Records serialise to plain JSON dictionaries (one per line in a JSONL
file, see :mod:`repro.obs.sink`) and load back for regression
comparison (see :mod:`repro.obs.compare`).
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.spans import SpanRecorder
from repro.storage.engine import PageKind
from repro.storage.iostats import IoStats, Phase
from repro.storage.trace import PageTrace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import ClosureResult

SCHEMA_VERSION = 2
"""Bump when the serialised RunRecord layout changes incompatibly.

Version history:

* **1** -- the original layout; ``trace`` always present (``null``
  when no page trace was attached).
* **2** -- ``trace`` is omitted entirely when no trace was collected,
  matching the ``faults`` behaviour.  Version-1 records load
  unchanged (an explicit ``"trace": null`` reads back as ``None``).
"""

SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})
"""Schema versions :meth:`RunRecord.from_dict` accepts."""


def io_stats_dict(io: IoStats) -> dict[str, Any]:
    """Serialise :class:`IoStats` with both of its breakdowns.

    The reads/writes counters key physical I/Os two ways at once --
    by :class:`Phase` and by :class:`PageKind` -- so the phase and kind
    breakdowns are split apart here.
    """

    def by_phase(counter: Counter[Phase | PageKind]) -> dict[str, int]:
        return {phase.value: counter[phase] for phase in Phase}

    def by_kind(counter: Counter[Phase | PageKind]) -> dict[str, int]:
        return {
            kind.value: counter[kind] for kind in PageKind if counter[kind]
        }

    return {
        "reads_by_phase": by_phase(io.reads),
        "writes_by_phase": by_phase(io.writes),
        "requests_by_phase": by_phase(io.requests),
        "hits_by_phase": by_phase(io.hits),
        "reads_by_kind": by_kind(io.reads),
        "writes_by_kind": by_kind(io.writes),
        "total_reads": io.total_reads,
        "total_writes": io.total_writes,
        "total_io": io.total_io,
        "hit_ratio": io.hit_ratio(),
        "compute_hit_ratio": io.hit_ratio(Phase.COMPUTE),
    }


def system_config_dict(system: Any) -> dict[str, Any]:
    """Serialise a :class:`SystemConfig` to JSON-safe values.

    The default ``paged`` engine is omitted (like empty fault lists in
    :meth:`RunRecord.to_dict`): paged-engine records and sweep-journal
    cell keys stay byte-identical to those written before the engine
    field existed.
    """
    out: dict[str, Any] = {}
    for f in dataclasses.fields(system):
        value = getattr(system, f.name)
        if f.name == "engine" and value == "paged":
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[f.name] = value
        else:  # enums (ListPlacementPolicy) and anything else exotic
            out[f.name] = getattr(value, "value", str(value))
    return out


def query_dict(query: Any) -> dict[str, Any]:
    """Serialise a :class:`Query` (kind plus selectivity, not sources)."""
    return {
        "kind": "full" if query.is_full else "ptc",
        "selectivity": query.selectivity,
    }


def summarise_trace(
    trace: PageTrace, buckets: int = 20, top_k: int = 10
) -> dict[str, Any]:
    """Condense a :class:`PageTrace` into a JSON-sized profile.

    Returns the hit-ratio timeline (the request stream split into at
    most ``buckets`` equal chunks), the per-kind request histogram, and
    the ``top_k`` most-requested pages (only available when the trace
    was recorded by a :class:`~repro.storage.trace.TracedPool`, which
    captures full page identities).
    """
    requests = [
        record
        for record in trace.records
        if record.event in (TraceEvent.REQUEST_HIT, TraceEvent.REQUEST_MISS)
    ]

    timeline: list[float] = []
    if requests:
        buckets = max(1, min(buckets, len(requests)))
        per_bucket = len(requests) / buckets
        for index in range(buckets):
            chunk = requests[round(index * per_bucket) : round((index + 1) * per_bucket)]
            if not chunk:
                continue
            hits = sum(1 for r in chunk if r.event is TraceEvent.REQUEST_HIT)
            timeline.append(round(hits / len(chunk), 4))

    histogram: Counter[str] = Counter(r.kind.value for r in requests)

    pages: Counter[str] = Counter(
        f"{r.kind.value}:{r.page_number}"
        for r in requests
        if r.page_number is not None
    )
    hot_pages = [
        {"page": page, "requests": count}
        for page, count in pages.most_common(top_k)
    ]

    return {
        "events": len(trace),
        "requests": len(requests),
        "hit_ratio_timeline": timeline,
        "kind_histogram": dict(histogram),
        "hot_pages": hot_pages,
    }


def metric_set_dict(metrics: Any) -> dict[str, Any]:
    """Serialise a :class:`MetricSet`: headline summary plus full I/O."""
    out = dict(metrics.summary())
    out["restructure_cpu_seconds"] = round(metrics.restructure_cpu_seconds, 6)
    out["reblocking_events"] = metrics.reblocking_events
    out["io"] = io_stats_dict(metrics.io)
    return out


@dataclass
class RunRecord:
    """One algorithm run, fully described and JSON-serialisable."""

    algorithm: str
    workload: dict[str, Any] = field(default_factory=dict)
    query: dict[str, Any] = field(default_factory=dict)
    system: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] | None = None
    wall_seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION
    faults: list[dict[str, Any]] = field(default_factory=list)
    """Injected chaos faults that fired during this run (normally empty)."""

    @classmethod
    def from_result(
        cls,
        result: "ClosureResult",
        workload: dict[str, Any] | None = None,
        recorder: SpanRecorder | None = None,
        trace: PageTrace | None = None,
        wall_seconds: float | None = None,
    ) -> "RunRecord":
        """Build a record from a finished :class:`ClosureResult`.

        ``workload`` identifies the input graph (family, scale, seed,
        node/arc counts ...); it is what :mod:`repro.obs.compare` keys
        cells on, together with the algorithm and the query shape.
        """
        if wall_seconds is None and recorder is not None:
            wall_seconds = recorder.total_seconds("run")
        metrics = metric_set_dict(result.metrics)
        metrics["magic"] = {
            "nodes": result.magic_nodes,
            "arcs": result.magic_arcs,
            "height": round(result.magic_height, 4),
            "width": round(result.magic_width, 4),
            "max_level": result.magic_max_level,
        }
        metrics["answer_tuples"] = result.num_tuples
        return cls(
            algorithm=result.algorithm,
            workload=dict(workload or {}),
            query=query_dict(result.query),
            system=system_config_dict(result.system),
            metrics=metrics,
            spans=recorder.as_dict() if recorder is not None else {},
            trace=summarise_trace(trace) if trace is not None else None,
            wall_seconds=round(wall_seconds or 0.0, 6),
        )

    # -- convenience accessors used by the comparison gate ------------------

    @property
    def total_io(self) -> float:
        """Total page I/O of the run (the paper's primary measure)."""
        return float(self.metrics.get("total_io", 0))

    @property
    def cpu_seconds(self) -> float:
        """Measured process CPU time of the run."""
        return float(self.metrics.get("cpu_seconds", 0.0))

    def cell_key(self) -> tuple[str, str, str, str]:
        """Identity of the experimental cell this run belongs to.

        Two runs of the same algorithm on the same workload, query
        shape and system configuration are repetitions of one cell;
        :func:`repro.obs.compare.compare_runs` averages within cells
        before diffing.  The system config is part of the identity so
        that sweeps (buffer sizes, ILIMIT values) stay separate cells.
        """
        return (
            self.algorithm,
            json.dumps(self.workload, sort_keys=True),
            json.dumps(self.query, sort_keys=True),
            json.dumps(self.system, sort_keys=True),
        )

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form, ready for ``json.dumps``.

        ``faults`` is omitted when empty, so records of fault-free runs
        serialise byte-identically to the pre-chaos schema; ``trace``
        is likewise omitted when no page trace was collected (schema
        version 2).
        """
        data = dataclasses.asdict(self)
        if not data["faults"]:
            del data["faults"]
        if data["trace"] is None:
            del data["trace"]
        return data

    def to_json(self) -> str:
        """One compact JSON line (no embedded newlines)."""
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        """Rebuild a record from its dictionary form.

        Accepts every schema version in
        :data:`SUPPORTED_SCHEMA_VERSIONS` (older records simply lack
        the newer optional keys); refuses records written by a *newer*
        schema rather than silently dropping fields it cannot know
        about.
        """
        version = data.get("schema_version", SCHEMA_VERSION)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
            raise ValueError(
                f"unsupported RunRecord schema version {version!r} "
                f"(supported: {supported})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        """Rebuild a record from one JSONL line."""
        return cls.from_dict(json.loads(line))
