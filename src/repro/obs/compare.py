"""Baseline-vs-candidate comparison of JSONL run records.

Loads two JSONL files of :class:`~repro.obs.record.RunRecord`\\ s,
groups each side into experimental *cells* (algorithm x workload x
query shape), averages repetitions within a cell, and reports the
per-cell delta of the paper's primary measure (``total_io``) and of
``cpu_seconds``.  Thresholds turn the report into a *noise-aware*
regression gate: every metric carries a :class:`MetricGate` combining
a relative tolerance, an absolute floor, and a variance band derived
from the baseline's own repetitions (``k`` standard deviations across
the cell's samples).  The defaults express the repository's policy:

* ``total_io`` is **deterministic** -- the simulator charges the same
  page I/O every run -- so its gate is purely relative and the CLI
  defaults it to *exact* (any growth fails);
* ``cpu_seconds`` is measured and machine-noisy, so it is report-only
  unless a ``cpu_threshold`` is passed;
* ``wall_seconds`` is the noisiest of all: when gated (pass a
  ``wall_threshold``) its band is ``max(rel x base, abs floor,
  k x sigma)`` so a cell with three ``--reps`` samples showing 2%
  jitter is not failed over a 1% drift.

``python -m repro compare baseline.jsonl out.jsonl`` exits non-zero
iff any gated metric in any cell grew beyond its band.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.metrics.report import format_table
from repro.obs.record import RunRecord

RecordSource = Union[str, Path, list[RunRecord]]


def load_records(source: RecordSource) -> list[RunRecord]:
    """Read run records from a JSONL file (or pass a list through).

    A truncated *final* line -- the signature a crash mid-append leaves
    behind (:class:`~repro.obs.sink.JsonlSink` fsyncs whole lines) --
    is discarded with a warning.  Corruption anywhere else still
    raises: that is not a crash artefact but a damaged file.
    """
    if isinstance(source, list):
        return source
    path = Path(source)
    records = []
    with path.open() as handle:
        lines = handle.readlines()
    for number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line:
            continue
        try:
            records.append(RunRecord.from_json(line))
        except (json.JSONDecodeError, TypeError) as exc:
            if number == len(lines):
                print(
                    f"warning: {path}:{number}: discarding truncated final "
                    f"record line ({type(exc).__name__})",
                    file=sys.stderr,
                )
                continue
            raise ValueError(f"{path}:{number}: not a RunRecord line: {exc}") from exc
    return records


@dataclass(frozen=True)
class MetricGate:
    """Tolerance policy of one metric in the regression gate.

    A metric regresses when its growth exceeds *all three* allowances
    at once -- i.e. when ``delta > max(rel x baseline, absolute,
    noise_sigma x stddev(baseline samples))``.  ``rel=None`` makes the
    metric report-only (its delta is shown, never gated).
    """

    metric: str
    rel: float | None = None
    absolute: float = 0.0
    noise_sigma: float = 0.0

    @property
    def gated(self) -> bool:
        return self.rel is not None

    def allowance(self, base_mean: float, base_std: float) -> float:
        """The absolute growth this gate tolerates for one cell."""
        return max(
            (self.rel or 0.0) * base_mean,
            self.absolute,
            self.noise_sigma * base_std,
        )


def default_gates(
    threshold: float = 0.05,
    cpu_threshold: float | None = None,
    wall_threshold: float | None = None,
    wall_abs: float = 0.005,
    noise_sigma: float = 3.0,
) -> tuple[MetricGate, ...]:
    """The standard gate set (see the module docstring for the policy)."""
    gates = [
        MetricGate("total_io", rel=threshold),
        MetricGate("cpu_seconds", rel=cpu_threshold),
    ]
    if wall_threshold is not None:
        gates.append(
            MetricGate(
                "wall_seconds",
                rel=wall_threshold,
                absolute=wall_abs,
                noise_sigma=noise_sigma,
            )
        )
    return tuple(gates)


@dataclass(frozen=True)
class CellDelta:
    """The change of one metric in one experimental cell."""

    cell: str
    metric: str
    baseline: float
    candidate: float
    regressed: bool
    allowance: float = 0.0
    """Absolute growth the metric's gate tolerated in this cell."""
    gated: bool = True
    """False when the metric was report-only here."""

    @property
    def delta(self) -> float:
        """Absolute change, candidate minus baseline."""
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float | None:
        """Relative change ``delta / baseline`` (None when baseline is 0)."""
        if self.baseline == 0:
            return None
        return self.delta / self.baseline


@dataclass
class ComparisonReport:
    """All per-cell deltas plus the cells only one side has."""

    deltas: list[CellDelta] = field(default_factory=list)
    missing_in_candidate: list[str] = field(default_factory=list)
    new_in_candidate: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CellDelta]:
        """The deltas that breached their threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """True when no cell regressed (the gate passes)."""
        return not self.regressions

    def render(self) -> str:
        """Aligned text table of every delta, regressions marked."""
        if not self.deltas:
            return "(no overlapping cells to compare)"
        rows = []
        for d in self.deltas:
            ratio = d.ratio
            if not d.gated:
                verdict = "report-only"
            elif d.regressed:
                verdict = "REGRESSED"
            else:
                verdict = "ok"
            rows.append(
                {
                    "cell": d.cell,
                    "metric": d.metric,
                    "baseline": d.baseline,
                    "candidate": d.candidate,
                    "delta": d.delta,
                    "delta_%": "n/a" if ratio is None else f"{100 * ratio:+.1f}%",
                    "band": f"{d.allowance:g}" if d.gated else "-",
                    "verdict": verdict,
                }
            )
        parts = [format_table(rows, title="repro compare")]
        if self.missing_in_candidate:
            parts.append(
                "cells missing in candidate: " + ", ".join(self.missing_in_candidate)
            )
        if self.new_in_candidate:
            parts.append("cells new in candidate: " + ", ".join(self.new_in_candidate))
        return "\n".join(parts)


def _cell_label(key: tuple[str, str, str, str]) -> str:
    """A compact human-readable name for one cell key."""
    algorithm, workload_json, query_json, system_json = key
    workload = json.loads(workload_json)
    query = json.loads(query_json)
    system = json.loads(system_json)
    workload_bits = [
        f"{name}={workload[name]}"
        for name in ("family", "scale", "nodes", "seed")
        if name in workload
    ]
    if "buffer_pages" in system:
        workload_bits.append(f"M={system['buffer_pages']}")
    query_bit = "full" if query.get("kind") == "full" else f"s={query.get('selectivity')}"
    return f"{algorithm}[{','.join(workload_bits) or 'custom'}|{query_bit}]"


def _cells(records: list[RunRecord]) -> dict[tuple[str, str, str, str], list[RunRecord]]:
    cells: dict[tuple[str, str, str, str], list[RunRecord]] = {}
    for record in records:
        cells.setdefault(record.cell_key(), []).append(record)
    return cells


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: list[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def compare_runs(
    baseline: RecordSource,
    candidate: RecordSource,
    threshold: float = 0.05,
    cpu_threshold: float | None = None,
    *,
    gates: tuple[MetricGate, ...] | None = None,
    wall_threshold: float | None = None,
    wall_abs: float = 0.005,
    noise_sigma: float = 3.0,
) -> ComparisonReport:
    """Diff two sets of run records cell by cell.

    ``threshold`` is the relative growth of mean ``total_io`` a cell
    may show before it counts as a regression (0.0 = byte-exact, the
    CLI default; a baseline of 0 regresses on any growth at all).
    ``cpu_threshold`` does the same for mean ``cpu_seconds`` and is off
    (report-only) by default.  ``wall_threshold`` additionally gates
    mean ``wall_seconds`` with the noise-aware band ``max(rel x base,
    wall_abs, noise_sigma x stddev(baseline samples))``.  Pass
    ``gates`` to replace the whole policy with explicit
    :class:`MetricGate`\\ s.
    """
    base_cells = _cells(load_records(baseline))
    cand_cells = _cells(load_records(candidate))

    report = ComparisonReport()
    report.missing_in_candidate = [
        _cell_label(key) for key in base_cells if key not in cand_cells
    ]
    report.new_in_candidate = [
        _cell_label(key) for key in cand_cells if key not in base_cells
    ]

    if gates is None:
        gates = default_gates(
            threshold, cpu_threshold, wall_threshold, wall_abs, noise_sigma
        )
    for key, base_records in base_cells.items():
        cand_records = cand_cells.get(key)
        if cand_records is None:
            continue
        label = _cell_label(key)
        for gate in gates:
            base_values = [getattr(r, gate.metric) for r in base_records]
            base = _mean(base_values)
            cand = _mean([getattr(r, gate.metric) for r in cand_records])
            allowance = gate.allowance(base, _std(base_values))
            regressed = gate.gated and cand - base > allowance
            report.deltas.append(
                CellDelta(
                    label,
                    gate.metric,
                    base,
                    cand,
                    regressed,
                    allowance=allowance,
                    gated=gate.gated,
                )
            )
    return report
