"""Baseline-vs-candidate comparison of JSONL run records.

Loads two JSONL files of :class:`~repro.obs.record.RunRecord`\\ s,
groups each side into experimental *cells* (algorithm x workload x
query shape), averages repetitions within a cell, and reports the
per-cell delta of the paper's primary measure (``total_io``) and of
``cpu_seconds``.  A relative threshold turns the report into a
regression gate: ``python -m repro compare baseline.jsonl out.jsonl``
exits non-zero iff any cell's ``total_io`` grew by more than the
threshold (CPU gating is off by default because process CPU time is
noisy across machines; pass a ``cpu_threshold`` to enable it).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.metrics.report import format_table
from repro.obs.record import RunRecord

RecordSource = Union[str, Path, list[RunRecord]]


def load_records(source: RecordSource) -> list[RunRecord]:
    """Read run records from a JSONL file (or pass a list through).

    A truncated *final* line -- the signature a crash mid-append leaves
    behind (:class:`~repro.obs.sink.JsonlSink` fsyncs whole lines) --
    is discarded with a warning.  Corruption anywhere else still
    raises: that is not a crash artefact but a damaged file.
    """
    if isinstance(source, list):
        return source
    path = Path(source)
    records = []
    with path.open() as handle:
        lines = handle.readlines()
    for number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line:
            continue
        try:
            records.append(RunRecord.from_json(line))
        except (json.JSONDecodeError, TypeError) as exc:
            if number == len(lines):
                print(
                    f"warning: {path}:{number}: discarding truncated final "
                    f"record line ({type(exc).__name__})",
                    file=sys.stderr,
                )
                continue
            raise ValueError(f"{path}:{number}: not a RunRecord line: {exc}") from exc
    return records


@dataclass(frozen=True)
class CellDelta:
    """The change of one metric in one experimental cell."""

    cell: str
    metric: str
    baseline: float
    candidate: float
    regressed: bool

    @property
    def delta(self) -> float:
        """Absolute change, candidate minus baseline."""
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float | None:
        """Relative change ``delta / baseline`` (None when baseline is 0)."""
        if self.baseline == 0:
            return None
        return self.delta / self.baseline


@dataclass
class ComparisonReport:
    """All per-cell deltas plus the cells only one side has."""

    deltas: list[CellDelta] = field(default_factory=list)
    missing_in_candidate: list[str] = field(default_factory=list)
    new_in_candidate: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CellDelta]:
        """The deltas that breached their threshold."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """True when no cell regressed (the gate passes)."""
        return not self.regressions

    def render(self) -> str:
        """Aligned text table of every delta, regressions marked."""
        if not self.deltas:
            return "(no overlapping cells to compare)"
        rows = []
        for d in self.deltas:
            ratio = d.ratio
            rows.append(
                {
                    "cell": d.cell,
                    "metric": d.metric,
                    "baseline": d.baseline,
                    "candidate": d.candidate,
                    "delta": d.delta,
                    "delta_%": "n/a" if ratio is None else f"{100 * ratio:+.1f}%",
                    "verdict": "REGRESSED" if d.regressed else "ok",
                }
            )
        parts = [format_table(rows, title="repro compare")]
        if self.missing_in_candidate:
            parts.append(
                "cells missing in candidate: " + ", ".join(self.missing_in_candidate)
            )
        if self.new_in_candidate:
            parts.append("cells new in candidate: " + ", ".join(self.new_in_candidate))
        return "\n".join(parts)


def _cell_label(key: tuple[str, str, str, str]) -> str:
    """A compact human-readable name for one cell key."""
    algorithm, workload_json, query_json, system_json = key
    workload = json.loads(workload_json)
    query = json.loads(query_json)
    system = json.loads(system_json)
    workload_bits = [
        f"{name}={workload[name]}"
        for name in ("family", "scale", "nodes", "seed")
        if name in workload
    ]
    if "buffer_pages" in system:
        workload_bits.append(f"M={system['buffer_pages']}")
    query_bit = "full" if query.get("kind") == "full" else f"s={query.get('selectivity')}"
    return f"{algorithm}[{','.join(workload_bits) or 'custom'}|{query_bit}]"


def _cells(records: list[RunRecord]) -> dict[tuple[str, str, str, str], list[RunRecord]]:
    cells: dict[tuple[str, str, str, str], list[RunRecord]] = {}
    for record in records:
        cells.setdefault(record.cell_key(), []).append(record)
    return cells


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def compare_runs(
    baseline: RecordSource,
    candidate: RecordSource,
    threshold: float = 0.05,
    cpu_threshold: float | None = None,
) -> ComparisonReport:
    """Diff two sets of run records cell by cell.

    ``threshold`` is the relative growth of mean ``total_io`` a cell may
    show before it counts as a regression (0.05 = 5%); a baseline of 0
    regresses on any growth at all.  ``cpu_threshold`` does the same for
    mean ``cpu_seconds`` and is off (report-only) by default.
    """
    base_cells = _cells(load_records(baseline))
    cand_cells = _cells(load_records(candidate))

    report = ComparisonReport()
    report.missing_in_candidate = [
        _cell_label(key) for key in base_cells if key not in cand_cells
    ]
    report.new_in_candidate = [
        _cell_label(key) for key in cand_cells if key not in base_cells
    ]

    gates = {"total_io": threshold, "cpu_seconds": cpu_threshold}
    for key, base_records in base_cells.items():
        cand_records = cand_cells.get(key)
        if cand_records is None:
            continue
        label = _cell_label(key)
        for metric, gate in gates.items():
            base = _mean([getattr(r, metric) for r in base_records])
            cand = _mean([getattr(r, metric) for r in cand_records])
            if gate is None:
                regressed = False
            elif base == 0:
                regressed = cand > 0
            else:
                regressed = (cand - base) / base > gate
            report.deltas.append(CellDelta(label, metric, base, cand, regressed))
    return report
