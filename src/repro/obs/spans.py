"""Lightweight nested span timers.

A *span* is a named, timed region of execution.  Spans nest: entering a
span while another is open records the inner one under the outer one's
path (``run/compute/pool.read``).  The recorder aggregates by path --
count, total, min and max duration -- instead of storing one object per
entry, so instrumenting a hot path (every simulated page I/O) stays
cheap and the serialised form stays small.

Instrumentation is strictly opt-in.  When no recorder is supplied (or a
recorder is disabled) :func:`span` returns a shared no-op context
manager, so the cost of an un-instrumented call site is one ``None``
check.  Nothing in this module touches the simulator's cost counters:
spans measure wall-clock time only, and enabling them cannot change any
:class:`~repro.metrics.counters.MetricSet` value.

Usage::

    recorder = SpanRecorder()
    with recorder.span("run"):
        with recorder.span("restructure"):
            ...
    recorder.as_dict()
    # {"run": {"count": 1, ...}, "run/restructure": {"count": 1, ...}}
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import TraceCollector


@dataclass
class SpanStats:
    """Aggregated timings of every span recorded at one path."""

    path: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one completed span into the aggregate."""
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready form (min is 0.0 when nothing was recorded)."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": 0.0 if self.count == 0 else self.min_seconds,
            "max_seconds": self.max_seconds,
        }


class _NullSpan:
    """Shared no-op context manager returned when spans are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one entry into one named span."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        self._recorder._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        self._recorder._pop(elapsed)
        return False


@dataclass
class SpanRecorder:
    """Collects nested span timings, aggregated by path.

    ``enabled=False`` turns every :meth:`span` into the shared no-op
    context manager, making an attached-but-disabled recorder free.

    When ``collector`` is attached, every span open/close additionally
    emits a ``span.begin``/``span.end`` trace event (the span *name*,
    not the full path, travels in the event's ``detail``), which is how
    phase waterfalls reach the Chrome trace and the HTML report.
    """

    enabled: bool = True
    collector: "TraceCollector | None" = None
    _stack: list[str] = field(default_factory=list)
    _stats: dict[str, SpanStats] = field(default_factory=dict)

    def span(self, name: str) -> _SpanHandle | _NullSpan:
        """Open a (possibly nested) span named ``name``."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name)

    # -- bookkeeping used by the handles -----------------------------------

    def _push(self, name: str) -> None:
        self._stack.append(name)
        if self.collector is not None:
            self.collector.span_begin(name)

    def _pop(self, elapsed: float) -> None:
        path = "/".join(self._stack)
        name = self._stack.pop()
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = SpanStats(path)
        stats.add(elapsed)
        if self.collector is not None:
            self.collector.span_end(name)

    # -- introspection ------------------------------------------------------

    def stats(self) -> list[SpanStats]:
        """All aggregates, in first-recorded order."""
        return list(self._stats.values())

    def get(self, path: str) -> SpanStats | None:
        """The aggregate at ``path``, or None if never entered."""
        return self._stats.get(path)

    def total_seconds(self, path: str) -> float:
        """Total time spent in spans at ``path`` (0.0 if never entered)."""
        stats = self._stats.get(path)
        return stats.total_seconds if stats else 0.0

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-ready mapping of path -> aggregate."""
        return {path: stats.as_dict() for path, stats in self._stats.items()}

    def clear(self) -> None:
        """Drop all recorded spans (the nesting stack must be empty)."""
        self._stats.clear()


def span(name: str, recorder: SpanRecorder | None) -> _SpanHandle | _NullSpan:
    """Open a span on ``recorder``, or do nothing when it is ``None``.

    This is the form instrumented call sites use so that passing no
    recorder costs a single ``None`` check::

        with span("restructure", recorder):
            ...
    """
    if recorder is None or not recorder.enabled:
        return NULL_SPAN
    return _SpanHandle(recorder, name)
