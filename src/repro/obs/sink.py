"""Run-record sinks: where :class:`~repro.obs.record.RunRecord`\\ s go.

The default everywhere is *no sink*: the runner and the algorithms take
``sink=None`` and skip record construction entirely, so observability
costs nothing unless asked for.  Three sinks are provided:

* :class:`JsonlSink` -- appends one JSON line per record to a file;
* :class:`MemorySink` -- collects records in a list (tests, the
  benchmark session summary);
* :class:`NullSink` -- explicit no-op, for code that wants to pass a
  sink object unconditionally.

:class:`JsonlSink` honours the ``REPRO_OBS`` environment variable:
setting it to ``0``/``false``/``off``/``no`` disables emission even
when a sink is constructed, so a pipeline can be silenced without
touching code.  The constructor's ``enabled`` argument overrides the
environment either way.

A process-wide *global sink* can also be installed with
:func:`set_global_sink`; :func:`repro.experiments.runner.run_single`
emits to it in addition to any explicitly passed sink.  The benchmark
suite uses this to collect one record per run without threading a sink
through every table/figure function.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from pathlib import Path
from typing import IO, Union

from repro.obs.record import RunRecord

ENV_TOGGLE = "REPRO_OBS"
"""Environment variable that force-disables sinks when falsy."""

_FALSY = {"0", "false", "off", "no"}


def obs_enabled(default: bool = True) -> bool:
    """Whether the environment allows record emission."""
    value = os.environ.get(ENV_TOGGLE)
    if value is None:
        return default
    return value.strip().lower() not in _FALSY


class RunSink:
    """Interface: something that accepts finished run records."""

    def emit(self, record: RunRecord) -> None:
        """Accept one record."""
        raise NotImplementedError

    def emit_many(self, records: Iterable[RunRecord]) -> None:
        """Accept several records, preserving their order.

        Multi-process runs merge through this path: worker processes
        hand their records back to the parent, which replays them here
        in the canonical (serial) order -- sinks therefore never need
        cross-process locking.
        """
        for record in records:
            self.emit(record)

    def close(self) -> None:
        """Release any resources; emitting afterwards is an error."""

    def __enter__(self) -> "RunSink":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class NullSink(RunSink):
    """A sink that discards everything."""

    def emit(self, record: RunRecord) -> None:
        pass


class MemorySink(RunSink):
    """Collects records in memory, in emission order."""

    def __init__(self) -> None:
        self.records: list[RunRecord] = []

    def emit(self, record: RunRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink(RunSink):
    """Appends records to a JSONL file, one compact JSON object per line.

    The file is opened lazily on the first emit (append mode, so a
    baseline file can be accumulated over several invocations).  By
    default every record is written as one whole line, flushed, *and
    fsynced*, so a crash -- even a power loss -- can at worst truncate
    the final line, never lose an acknowledged record or interleave two
    (:func:`repro.obs.compare.load_records` tolerates exactly that
    truncated-final-line signature).

    ``flush_every=N`` opts into *batched* durability for high-rate
    emission (bench sweeps with ``--reps``, trace-heavy sessions): the
    flush+fsync pair runs once per ``N`` records instead of per record,
    and always on :meth:`close`.  The crash window widens to at most
    ``N - 1`` acknowledged records; whole-line atomicity is unchanged.
    """

    def __init__(
        self,
        path: str | Path,
        enabled: bool | None = None,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.enabled = obs_enabled() if enabled is None else enabled
        self.flush_every = flush_every
        self._handle: IO[str] | None = None
        self._pending = 0
        self._pid = os.getpid()

    def emit(self, record: RunRecord) -> None:
        if not self.enabled:
            return
        if self._handle is not None and os.getpid() != self._pid:
            # Fork guard: a child that inherited an open handle must not
            # share the parent's file position.  Reopen in this process
            # (append mode keeps concurrent whole-line writes intact).
            self._handle = None
            self._pending = 0
        if self._handle is None:
            self._pid = os.getpid()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(record.to_json() + "\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            self._make_durable()

    def _make_durable(self) -> None:
        """Flush and fsync the handle: the sink's one durability point.

        Every buffered-write path ends here (per record by default,
        per batch under ``flush_every``, and unconditionally on close),
        which is the discipline the RPL006 lint rule checks.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._pending = 0

    def close(self) -> None:
        if self._handle is not None:
            self._make_durable()
            self._handle.close()
            self._handle = None


# -- process-wide sink -------------------------------------------------------

_global_sink: RunSink | None = None


def set_global_sink(sink: RunSink | None) -> RunSink | None:
    """Install (or clear, with ``None``) the process-wide sink.

    Returns the previously installed sink so callers can restore it.
    """
    global _global_sink
    previous = _global_sink
    _global_sink = sink
    return previous


def get_global_sink() -> RunSink | None:
    """The currently installed process-wide sink, if any."""
    return _global_sink


def reset_worker_sinks() -> None:
    """Detach inherited sinks inside a forked worker process.

    The parallel experiment engine merges run records in the *parent*
    (in canonical order); a forked worker that kept the inherited
    global sink would emit every record a second time -- into a
    :class:`MemorySink` nobody reads, or worse, into the parent's JSONL
    file out of order.  Worker initialisers call this first.
    """
    set_global_sink(None)
