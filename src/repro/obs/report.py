"""Static self-contained HTML run reports.

``repro obs report`` renders one HTML file -- no external scripts,
stylesheets or fonts -- from the observability artefacts a run leaves
behind:

* **Phase waterfall** -- per-algorithm wall-clock split across the
  restructure / compute / writeout phases, from RunRecord spans;
* **Page-access heatmap** -- page bins x time, per traced algorithm,
  from a Chrome trace file written by ``--trace-out``;
* **Pool residency timeline** -- distinct resident (and pinned) pages
  over each traced run;
* **BENCH trajectory** -- per-cell ``total_io`` bars from the run
  records (or a ``BENCH_summary.json``).

The styling follows the repository's data-viz conventions: colors are
CSS custom properties with a selected dark mode (``prefers-color-scheme``
plus a ``data-theme`` override), identity is carried by labels rather
than color alone, every panel ships a table view, and text always wears
the text tokens, never a series color.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Sequence

from repro.obs.heatmap import page_heatmap, residency_timeline
from repro.obs.record import RunRecord
from repro.obs.tracing import TraceEventRecord

__all__ = ["build_report", "render_report"]

# Validated reference palette (see docs/OBSERVABILITY.md#reports).
_CSS = """\
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --heat-0: #cde2fb; --heat-1: #b7d3f6; --heat-2: #9ec5f4; --heat-3: #86b6ef;
  --heat-4: #6da7ec; --heat-5: #5598e7; --heat-6: #3987e5; --heat-7: #2a78d6;
  --heat-8: #256abf; --heat-9: #1c5cab; --heat-10: #184f95; --heat-11: #104281;
  --heat-12: #0d366b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --heat-0: #0d366b; --heat-1: #104281; --heat-2: #184f95; --heat-3: #1c5cab;
    --heat-4: #256abf; --heat-5: #2a78d6; --heat-6: #3987e5; --heat-7: #5598e7;
    --heat-8: #6da7ec; --heat-9: #86b6ef; --heat-10: #9ec5f4; --heat-11: #b7d3f6;
    --heat-12: #cde2fb;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --heat-0: #0d366b; --heat-1: #104281; --heat-2: #184f95; --heat-3: #1c5cab;
  --heat-4: #256abf; --heat-5: #2a78d6; --heat-6: #3987e5; --heat-7: #5598e7;
  --heat-8: #6da7ec; --heat-9: #86b6ef; --heat-10: #9ec5f4; --heat-11: #b7d3f6;
  --heat-12: #cde2fb;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.panel {
  background: var(--surface-1);
  border: 1px solid var(--gridline);
  border-radius: 8px;
  padding: 16px 20px;
  margin: 0 0 20px;
  max-width: 980px;
}
.panel h2 { font-size: 14px; font-weight: 600; margin: 0 0 2px; }
.panel .note { color: var(--text-secondary); font-size: 12px; margin: 0 0 12px; }
.panel svg { display: block; }
.panel svg text { font-family: inherit; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--text-secondary);
          margin: 10px 0 0; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
                  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
details { margin-top: 10px; font-size: 12px; }
details summary { color: var(--text-muted); cursor: pointer; }
details table { border-collapse: collapse; margin-top: 8px; }
details th, details td { border: 1px solid var(--gridline); padding: 3px 8px;
                         text-align: right; font-variant-numeric: tabular-nums; }
details th { color: var(--text-secondary); font-weight: 600; }
details td:first-child, details th:first-child { text-align: left; }
"""

_PHASES = ("restructure", "compute", "writeout")
_PHASE_VARS = {"restructure": "--series-1", "compute": "--series-2",
               "writeout": "--series-3"}


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    if value >= 100:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        "<details><summary>table view</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        "</details>"
    )


# -- panel: phase waterfall --------------------------------------------------

def _phase_seconds(record: RunRecord) -> dict[str, float]:
    spans = record.spans or {}
    return {
        phase: float(spans.get(f"run/{phase}", {}).get("total_seconds", 0.0))
        for phase in _PHASES
    }


def phase_waterfall_svg(records: Sequence[RunRecord]) -> str:
    """Per-algorithm horizontal bars, one segment per execution phase."""
    rows: list[tuple[str, dict[str, float]]] = []
    seen: set[str] = set()
    for record in records:
        if record.algorithm in seen or not record.spans:
            continue
        seen.add(record.algorithm)
        rows.append((record.algorithm, _phase_seconds(record)))
    if not rows:
        return "<p class='note'>(no span data in the supplied records)</p>"
    max_total = max(sum(phases.values()) for _, phases in rows) or 1.0
    label_w, bar_w, row_h, gap = 90, 720, 20, 8
    height = len(rows) * (row_h + gap) + 24
    parts = [
        f"<svg viewBox='0 0 {label_w + bar_w + 90} {height}' "
        f"width='{label_w + bar_w + 90}' height='{height}' role='img' "
        "aria-label='Phase waterfall'>"
    ]
    y = 4
    for name, phases in rows:
        total = sum(phases.values())
        parts.append(
            f"<text x='{label_w - 8}' y='{y + 14}' text-anchor='end' "
            f"font-size='12' fill='var(--text-secondary)'>{_esc(name)}</text>"
        )
        x = float(label_w)
        for phase in _PHASES:
            seconds = phases[phase]
            w = bar_w * seconds / max_total
            if w <= 0:
                continue
            # 2px surface gap between stacked segments.
            parts.append(
                f"<rect x='{x:.1f}' y='{y}' width='{max(w - 2, 1):.1f}' "
                f"height='{row_h}' rx='2' fill='var({_PHASE_VARS[phase]})'>"
                f"<title>{_esc(name)} {phase}: {seconds:.4f}s</title></rect>"
            )
            x += w
        parts.append(
            f"<text x='{x + 6:.1f}' y='{y + 14}' font-size='12' "
            f"fill='var(--text-primary)'>{total:.3f}s</text>"
        )
        y += row_h + gap
    parts.append(
        f"<line x1='{label_w}' y1='{y}' x2='{label_w + bar_w}' y2='{y}' "
        "stroke='var(--baseline)' stroke-width='1'/>"
    )
    parts.append("</svg>")
    legend = "".join(
        f"<span><span class='swatch' style='background:var({_PHASE_VARS[p]})'></span>"
        f"{p}</span>"
        for p in _PHASES
    )
    table = _table(
        ["algorithm", *_PHASES, "total s"],
        [
            [name, *(f"{phases[p]:.4f}" for p in _PHASES),
             f"{sum(phases.values()):.4f}"]
            for name, phases in rows
        ],
    )
    return "".join(parts) + f"<div class='legend'>{legend}</div>" + table


# -- panel: bench trajectory -------------------------------------------------

def bench_trajectory_svg(entries: Sequence[dict[str, Any]]) -> str:
    """Per-cell ``total_io`` bars (single series: identity is the label)."""
    cells = [
        (
            f"{e.get('algorithm')} {e.get('family') or ''} {e.get('query')}"
            + (f" M={e['buffer_pages']}" if e.get("buffer_pages") else ""),
            float(e.get("total_io", 0.0)),
            int(e.get("runs", 1)),
        )
        for e in entries
    ]
    if not cells:
        return "<p class='note'>(no records to chart)</p>"
    max_io = max(value for _, value, _ in cells) or 1.0
    label_w, bar_w, row_h, gap = 220, 600, 16, 6
    height = len(cells) * (row_h + gap) + 20
    parts = [
        f"<svg viewBox='0 0 {label_w + bar_w + 90} {height}' "
        f"width='{label_w + bar_w + 90}' height='{height}' role='img' "
        "aria-label='BENCH trajectory'>"
    ]
    y = 4
    for label, value, runs in cells:
        w = max(bar_w * value / max_io, 1)
        parts.append(
            f"<text x='{label_w - 8}' y='{y + 12}' text-anchor='end' "
            f"font-size='11' fill='var(--text-secondary)'>{_esc(label)}</text>"
        )
        parts.append(
            f"<rect x='{label_w}' y='{y}' width='{w:.1f}' height='{row_h}' "
            f"rx='2' fill='var(--series-1)'>"
            f"<title>{_esc(label)}: total_io {_fmt(value)} over {runs} run(s)"
            f"</title></rect>"
        )
        parts.append(
            f"<text x='{label_w + w + 6:.1f}' y='{y + 12}' font-size='11' "
            f"fill='var(--text-primary)'>{_fmt(value)}</text>"
        )
        y += row_h + gap
    parts.append(
        f"<line x1='{label_w}' y1='{y}' x2='{label_w + bar_w}' y2='{y}' "
        "stroke='var(--baseline)' stroke-width='1'/>"
    )
    parts.append("</svg>")
    table = _table(
        ["cell", "total_io", "runs"],
        [[label, _fmt(value), runs] for label, value, runs in cells],
    )
    return "".join(parts) + table


# -- panel: page heatmap -----------------------------------------------------

def heatmap_svg(label: str, events: Sequence[TraceEventRecord]) -> str:
    """Page-bin x time grid of page touches on the sequential ramp."""
    grid = page_heatmap(events)
    if not grid["rows"]:
        return "<p class='note'>(no page events in this trace)</p>"
    cell_w, cell_h, gap = 14, 13, 1
    label_w = 150
    rows, buckets = grid["rows"], grid["buckets"]
    width = label_w + buckets * (cell_w + gap) + 20
    height = len(rows) * (cell_h + gap) + 26
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        f"role='img' aria-label='Page heatmap for {_esc(label)}'>"
    ]
    max_count = grid["max_count"] or 1
    for r, row in enumerate(rows):
        y = r * (cell_h + gap) + 2
        pages = (
            f"p{row['page_lo']}"
            if row["page_lo"] == row["page_hi"]
            else f"p{row['page_lo']}-{row['page_hi']}"
        )
        parts.append(
            f"<text x='{label_w - 8}' y='{y + 10}' text-anchor='end' "
            f"font-size='10' fill='var(--text-secondary)'>"
            f"{_esc(row['kind'])} {pages}</text>"
        )
        for b, count in enumerate(row["counts"]):
            if not count:
                continue
            step = min(12, int(12 * count / max_count))
            x = label_w + b * (cell_w + gap)
            parts.append(
                f"<rect x='{x}' y='{y}' width='{cell_w}' height='{cell_h}' "
                f"fill='var(--heat-{step})'>"
                f"<title>{_esc(row['kind'])} {pages}, slice {b + 1}/{buckets}: "
                f"{count} touch(es)</title></rect>"
            )
    y_axis = len(rows) * (cell_h + gap) + 14
    parts.append(
        f"<text x='{label_w}' y='{y_axis}' font-size='10' "
        "fill='var(--text-muted)'>run start</text>"
    )
    parts.append(
        f"<text x='{label_w + buckets * (cell_w + gap)}' y='{y_axis}' "
        "text-anchor='end' font-size='10' fill='var(--text-muted)'>run end</text>"
    )
    parts.append("</svg>")
    table = _table(
        ["row", "touches"],
        [
            [f"{row['kind']} p{row['page_lo']}-{row['page_hi']}", sum(row["counts"])]
            for row in rows
        ],
    )
    return "".join(parts) + table


# -- panel: residency timeline -----------------------------------------------

def residency_svg(label: str, events: Sequence[TraceEventRecord]) -> str:
    """Resident-page count over the run (single 2px line)."""
    timeline = residency_timeline(events)
    samples = timeline["resident"]
    if not samples:
        return "<p class='note'>(no pool events in this trace)</p>"
    width, height, pad = 720, 120, 8
    peak = max(timeline["peak_resident"], 1)
    step = (width - 2 * pad) / max(len(samples) - 1, 1)
    points = " ".join(
        f"{pad + i * step:.1f},{height - pad - (height - 2 * pad) * v / peak:.1f}"
        for i, v in enumerate(samples)
    )
    parts = [
        f"<svg viewBox='0 0 {width + 60} {height + 20}' width='{width + 60}' "
        f"height='{height + 20}' role='img' "
        f"aria-label='Pool residency for {_esc(label)}'>",
        f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
        f"y2='{height - pad}' stroke='var(--baseline)' stroke-width='1'/>",
        f"<line x1='{pad}' y1='{height - pad - (height - 2 * pad):.1f}' "
        f"x2='{width - pad}' y2='{height - pad - (height - 2 * pad):.1f}' "
        "stroke='var(--gridline)' stroke-width='1' stroke-dasharray='2 4'/>",
        f"<polyline points='{points}' fill='none' stroke='var(--series-1)' "
        "stroke-width='2'><title>resident pages over the run"
        f" (peak {peak})</title></polyline>",
        f"<text x='{width + 2}' y='{height - pad - (height - 2 * pad) + 4:.1f}' "
        f"font-size='11' fill='var(--text-secondary)'>peak {peak}</text>",
        f"<text x='{pad}' y='{height + 12}' font-size='10' "
        "fill='var(--text-muted)'>run start</text>",
        f"<text x='{width - pad}' y='{height + 12}' text-anchor='end' "
        "font-size='10' fill='var(--text-muted)'>run end</text>",
        "</svg>",
    ]
    stride = max(len(samples) // 12, 1)
    table = _table(
        ["sample", "resident", "pinned"],
        [
            [i + 1, samples[i], timeline["pinned"][i]]
            for i in range(0, len(samples), stride)
        ],
    )
    return "".join(parts) + table


# -- assembly ----------------------------------------------------------------

def _panel(title: str, note: str, body: str) -> str:
    return (
        f"<figure class='panel'><h2>{_esc(title)}</h2>"
        f"<p class='note'>{_esc(note)}</p>{body}</figure>"
    )


def build_report(
    records: Sequence[RunRecord] = (),
    trace_sections: Sequence[tuple[str, Sequence[TraceEventRecord]]] = (),
    bench_entries: Sequence[dict[str, Any]] | None = None,
    title: str = "repro run report",
) -> str:
    """Assemble the full self-contained HTML document."""
    from repro.obs.bench import build_bench_summary

    panels: list[str] = []
    if records:
        panels.append(
            _panel(
                "Phase waterfall",
                "wall-clock seconds per execution phase, from RunRecord spans",
                phase_waterfall_svg(records),
            )
        )
    if bench_entries is None and records:
        bench_entries = build_bench_summary(list(records))
    if bench_entries:
        panels.append(
            _panel(
                "BENCH trajectory",
                "total simulated page I/O per benchmark cell",
                bench_trajectory_svg(bench_entries),
            )
        )
    for label, events in trace_sections:
        panels.append(
            _panel(
                f"Page heatmap - {label}",
                "page touches (hit/fetch/create) per page bin over the run",
                heatmap_svg(label, events),
            )
        )
        panels.append(
            _panel(
                f"Pool residency - {label}",
                "distinct resident pages over the run, from trace events",
                residency_svg(label, events),
            )
        )
    if not panels:
        panels.append(
            _panel("Nothing to report", "no records or trace events supplied", "")
        )
    summary_bits = []
    if records:
        summary_bits.append(f"{len(records)} run record(s)")
    if trace_sections:
        events = sum(len(evs) for _, evs in trace_sections)
        summary_bits.append(
            f"{len(trace_sections)} trace section(s), {events} event(s)"
        )
    subtitle = " - ".join(summary_bits) or "empty inputs"
    return (
        "<!DOCTYPE html>\n<html lang='en'>\n<head>\n<meta charset='utf-8'>\n"
        f"<title>{_esc(title)}</title>\n"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>\n"
        f"<style>\n{_CSS}</style>\n</head>\n"
        "<body class='viz-root'>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f"<p class='subtitle'>{_esc(subtitle)}</p>\n"
        + "\n".join(panels)
        + "\n</body>\n</html>\n"
    )


def render_report(
    out_path: str | Path,
    records: Sequence[RunRecord] = (),
    trace_payload: dict[str, Any] | None = None,
    bench_entries: Sequence[dict[str, Any]] | None = None,
    title: str = "repro run report",
) -> Path:
    """Render the report to ``out_path`` and return it.

    ``trace_payload`` is a parsed Chrome trace file (the format
    ``--trace-out`` writes); its sections are reconstructed via
    :func:`repro.obs.tracing.events_from_chrome`.
    """
    from repro.obs.tracing import events_from_chrome

    sections: Sequence[tuple[str, Sequence[TraceEventRecord]]] = ()
    if trace_payload is not None:
        sections = events_from_chrome(trace_payload)
    document = build_report(records, sections, bench_entries, title=title)
    out = Path(out_path)
    out.write_text(document, encoding="utf-8")
    return out


def load_bench_entries(path: str | Path) -> list[dict[str, Any]]:
    """Load a ``BENCH_summary.json`` file for the trajectory panel."""
    entries = json.loads(Path(path).read_text())
    if not isinstance(entries, list):
        raise ValueError(f"{path}: expected a JSON array of bench entries")
    return entries
