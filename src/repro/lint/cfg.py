"""Intra-procedural control-flow graphs over ``ast`` function bodies.

The PR-5 rules are per-scope and syntactic: they can see *that* a call
happens somewhere in a function, never *on which paths*.  The flow
rules (RPL008 resource lifecycle, RPL009 async hygiene) need to ask
"does a release run on **every** path out of this function, including
the exception paths?" -- which takes a control-flow graph.

:func:`build_cfg` turns one ``FunctionDef`` / ``AsyncFunctionDef`` into
a :class:`CFG` of :class:`Block` basic blocks:

* every statement of the function body (compound headers included,
  nested function/class bodies excluded) lives in **exactly one**
  block -- a property the hypothesis suite asserts over generated
  programs;
* edges are typed: ``NORMAL`` fallthrough, ``TRUE``/``FALSE`` branch
  arms, ``BACK`` loop back-edges, and ``EXCEPT`` exception edges;
* two synthetic sinks: :attr:`CFG.exit` collects normal returns and
  fallthrough, :attr:`CFG.raise_exit` collects exceptions that escape
  the function.  Every block conservatively owns an ``EXCEPT`` edge to
  its innermost exception target (handler set, enclosing ``finally``,
  or ``raise_exit``), because nearly any Python statement can raise;
* ``try``/``except``/``else``/``finally`` is modelled with handler
  dispatch (an exception in the protected body may reach each handler
  *or* escape) and a single shared ``finally`` subgraph whose exit
  fans out to every continuation observed in the protected region
  (fallthrough, re-raise, ``return``/``break``/``continue``).

Known approximations, all conservative for may-path analyses: loop
conditions are never constant-folded (``while True`` still grows a
``FALSE`` edge), a ``return`` routed through *nested* ``finally``
blocks runs only the innermost one, and ``with`` blocks do not model
``__exit__`` suppression (rules recognise ``with``-managed resources
syntactically instead).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

NORMAL = "normal"
"""Fallthrough / unconditional successor."""

TRUE = "true"
"""Branch taken (loop entered, condition satisfied)."""

FALSE = "false"
"""Branch not taken (loop exhausted, condition failed)."""

BACK = "back"
"""Loop back-edge from the body's last block to the loop head."""

EXCEPT = "except"
"""Exception edge: control may leave the block before it completes."""


@dataclass
class Block:
    """One basic block: a run of statements with shared successors."""

    index: int
    label: str = ""
    stmts: list[ast.AST] = field(default_factory=list)
    succ: list[tuple[int, str]] = field(default_factory=list)
    pred: list[tuple[int, str]] = field(default_factory=list)

    def successors(self, *kinds: str) -> list[tuple[int, str]]:
        """Typed successor pairs, optionally filtered by edge kind."""
        if not kinds:
            return list(self.succ)
        return [(index, kind) for index, kind in self.succ if kind in kinds]


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = 0
        self.exit = 0
        self.raise_exit = 0
        self.finally_blocks: set[int] = set()
        self._block_of: dict[ast.AST, int] = {}

    def block_of(self, stmt: ast.AST) -> Block | None:
        """The block holding ``stmt`` (None for nested-scope statements)."""
        index = self._block_of.get(stmt)
        return None if index is None else self.blocks[index]

    def body_blocks(self) -> Iterator[Block]:
        """Every block except the two synthetic sinks."""
        for block in self.blocks:
            if block.index not in (self.exit, self.raise_exit):
                yield block

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry (any edge kind)."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(succ for succ, _ in self.blocks[index].succ)
        return seen

    def render(self) -> str:
        """A compact text dump (debugging and golden tests)."""
        lines = []
        for block in self.blocks:
            heads = ", ".join(
                f"{kind}->{index}" for index, kind in sorted(block.succ)
            )
            stmts = ", ".join(type(stmt).__name__ for stmt in block.stmts)
            lines.append(f"B{block.index}[{block.label}] ({stmts}) => {heads}")
        return "\n".join(lines)


def scan_nodes(stmt: ast.stmt | ast.AST) -> Iterator[ast.AST]:
    """The AST nodes a block-level effect scan should walk for ``stmt``.

    Compound statements contribute only their *headers* (test, iterator,
    context managers) -- their bodies live in other blocks and would be
    double-counted.  Simple statements contribute themselves.  Nested
    function/class definitions contribute nothing: their bodies are
    separate scopes with their own CFGs.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield stmt.type
    elif isinstance(stmt, ast.Match):
        yield stmt.subject
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    else:
        yield stmt


@dataclass
class _LoopFrame:
    head: int
    after: int
    finally_depth: int = 0


@dataclass
class _FinallyFrame:
    """One pending ``finally`` suite and the continuations routed at it."""

    body: list[ast.stmt]
    entry: int
    targets: list[tuple[int, str]] = field(default_factory=list)

    def add_target(self, index: int, kind: str) -> None:
        if (index, kind) not in self.targets:
            self.targets.append((index, kind))


class _Builder:
    """One-pass recursive CFG construction."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        self.current = self._new_block("entry")
        self.cfg.entry = self.current
        self.cfg.exit = self._new_block("exit")
        self.cfg.raise_exit = self._new_block("raise")
        # Innermost-last stacks.  exc_targets holds, per nesting level,
        # the block set an in-flight exception may reach next.
        self.exc_targets: list[list[int]] = [[self.cfg.raise_exit]]
        self.loops: list[_LoopFrame] = []
        self.finallys: list[_FinallyFrame] = []

    # -- plumbing --------------------------------------------------------------

    def _new_block(self, label: str) -> int:
        block = Block(index=len(self.cfg.blocks), label=label)
        self.cfg.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int, kind: str) -> None:
        src_block = self.cfg.blocks[src]
        if (dst, kind) not in src_block.succ:
            src_block.succ.append((dst, kind))
            self.cfg.blocks[dst].pred.append((src, kind))

    def _append(self, stmt: ast.AST) -> None:
        self.cfg.blocks[self.current].stmts.append(stmt)
        self.cfg._block_of[stmt] = self.current

    def _seal_with_exceptions(self, block: int) -> None:
        """Give a finished block its EXCEPT edges (if it has statements)."""
        if not self.cfg.blocks[block].stmts:
            return
        for target in self.exc_targets[-1]:
            self._edge(block, target, EXCEPT)

    def _start_block(self, label: str, *, link: bool = True) -> int:
        """Seal the current block and begin a new one.

        ``link`` draws the NORMAL fallthrough edge; terminators
        (return/raise/break/continue) pass ``link=False`` so trailing
        dead code starts in a predecessor-less block.
        """
        self._seal_with_exceptions(self.current)
        fresh = self._new_block(label)
        if link:
            self._edge(self.current, fresh, NORMAL)
        self.current = fresh
        return fresh

    def _innermost_finally_between(
        self, frame_depth: int
    ) -> _FinallyFrame | None:
        """The nearest finally frame opened after ``frame_depth`` frames."""
        if len(self.finallys) > frame_depth:
            return self.finallys[-1]
        return None

    # -- statement dispatch ----------------------------------------------------

    def build(self) -> CFG:
        self._visit_body(self.cfg.func.body)
        self._seal_with_exceptions(self.current)
        self._edge(self.current, self.cfg.exit, NORMAL)
        return self.cfg

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._visit_loop(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        elif isinstance(stmt, ast.Return):
            self._visit_jump(stmt, self.cfg.exit, NORMAL, loop_frames=0)
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            for target in self.exc_targets[-1]:
                self._edge(self.current, target, EXCEPT)
            self._start_block("dead", link=False)
        elif isinstance(stmt, ast.Break):
            if self.loops:
                self._visit_jump(
                    stmt, self.loops[-1].after, NORMAL,
                    loop_frames=self._loop_finally_depth(),
                )
            else:  # pragma: no cover - invalid Python, parser rejects it
                self._append(stmt)
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                self._visit_jump(
                    stmt, self.loops[-1].head, BACK,
                    loop_frames=self._loop_finally_depth(),
                )
            else:  # pragma: no cover - invalid Python, parser rejects it
                self._append(stmt)
        else:
            self._append(stmt)

    def _loop_finally_depth(self) -> int:
        """Finally frames opened before the innermost loop."""
        return self.loops[-1].finally_depth

    def _visit_jump(
        self, stmt: ast.stmt, target: int, kind: str, *, loop_frames: int
    ) -> None:
        """return / break / continue, routed through an enclosing finally."""
        self._append(stmt)
        frame = self._innermost_finally_between(loop_frames)
        if frame is not None:
            self._edge(self.current, frame.entry, NORMAL)
            frame.add_target(target, kind)
        else:
            self._edge(self.current, target, kind)
        self._start_block("dead", link=False)

    # -- compound statements ---------------------------------------------------

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(stmt)
        head = self.current
        self._seal_with_exceptions(head)
        after = self._new_block("after-if")

        then = self._new_block("then")
        self._edge(head, then, TRUE)
        self.current = then
        self._visit_body(stmt.body)
        self._seal_with_exceptions(self.current)
        self._edge(self.current, after, NORMAL)

        if stmt.orelse:
            orelse = self._new_block("else")
            self._edge(head, orelse, FALSE)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._seal_with_exceptions(self.current)
            self._edge(self.current, after, NORMAL)
        else:
            self._edge(head, after, FALSE)
        self.current = after

    def _visit_loop(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        self._seal_with_exceptions(self.current)
        head = self._new_block("loop-head")
        self._edge(self.current, head, NORMAL)
        self.current = head
        self._append(stmt)
        self._seal_with_exceptions(head)

        after = self._new_block("after-loop")
        frame = _LoopFrame(
            head=head, after=after, finally_depth=len(self.finallys)
        )
        self.loops.append(frame)

        body = self._new_block("loop-body")
        self._edge(head, body, TRUE)
        self.current = body
        self._visit_body(stmt.body)
        self._seal_with_exceptions(self.current)
        self._edge(self.current, head, BACK)
        self.loops.pop()

        if stmt.orelse:
            orelse = self._new_block("loop-else")
            self._edge(head, orelse, FALSE)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._seal_with_exceptions(self.current)
            self._edge(self.current, after, NORMAL)
        else:
            self._edge(head, after, FALSE)
        self.current = after

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        self._append(stmt)
        self._seal_with_exceptions(self.current)
        body = self._new_block("with-body")
        self._edge(self.current, body, NORMAL)
        self.current = body
        self._visit_body(stmt.body)
        self._start_block("after-with")

    def _visit_match(self, stmt: ast.Match) -> None:
        self._append(stmt)
        head = self.current
        self._seal_with_exceptions(head)
        after = self._new_block("after-match")
        for case in stmt.cases:
            arm = self._new_block("case")
            self._edge(head, arm, TRUE)
            self.current = arm
            self._visit_body(case.body)
            self._seal_with_exceptions(self.current)
            self._edge(self.current, after, NORMAL)
        self._edge(head, after, FALSE)
        self.current = after

    def _visit_try(self, stmt: ast.Try) -> None:
        self._append(stmt)
        self._seal_with_exceptions(self.current)
        after = self._new_block("after-try")

        frame: _FinallyFrame | None = None
        if stmt.finalbody:
            frame = _FinallyFrame(
                body=stmt.finalbody, entry=self._new_block("finally")
            )
            self.finallys.append(frame)

        handler_entries = [self._new_block("handler") for _ in stmt.handlers]
        # An exception inside the protected body may dispatch to any
        # handler, or escape (through the finally when there is one).
        escape = [frame.entry] if frame is not None else self.exc_targets[-1]
        self.exc_targets.append([*handler_entries, *escape])
        body = self._new_block("try-body")
        self._edge(self.current, body, NORMAL)
        self.current = body
        self._visit_body(stmt.body)
        self._seal_with_exceptions(self.current)
        body_end = self.current
        self.exc_targets.pop()

        # Normal completion: else-suite, then finally (or straight out).
        if stmt.orelse:
            orelse = self._new_block("try-else")
            self._edge(body_end, orelse, NORMAL)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._seal_with_exceptions(self.current)
            body_end = self.current
        if frame is not None:
            self._edge(body_end, frame.entry, NORMAL)
            frame.add_target(after, NORMAL)
        else:
            self._edge(body_end, after, NORMAL)

        # Handler bodies.  An exception raised inside a handler escapes
        # outward (through the finally when there is one).
        handler_escape = (
            [frame.entry] if frame is not None else self.exc_targets[-1]
        )
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.exc_targets.append(list(handler_escape))
            self.current = entry
            self._append(handler)
            self._visit_body(handler.body)
            self._seal_with_exceptions(self.current)
            if frame is not None:
                self._edge(self.current, frame.entry, NORMAL)
            else:
                self._edge(self.current, after, NORMAL)
            self.exc_targets.pop()

        if frame is not None:
            self.finallys.pop()
            # Build the shared finally subgraph once; its exit fans out
            # to every continuation the protected region routed here,
            # plus outward exception propagation.
            self.current = frame.entry
            first_new = len(self.cfg.blocks)
            self._visit_body(frame.body)
            self._seal_with_exceptions(self.current)
            self.cfg.finally_blocks.add(frame.entry)
            self.cfg.finally_blocks.update(
                range(first_new, len(self.cfg.blocks))
            )
            for target in self.exc_targets[-1]:
                self._edge(self.current, target, EXCEPT)
            if not frame.targets:
                frame.add_target(after, NORMAL)
            for target, kind in frame.targets:
                self._edge(self.current, target, kind)
        self.current = after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func).build()


def may_raise(stmt: ast.AST) -> bool:
    """Whether a statement can realistically raise.

    Python-pedantically almost anything can raise (``MemoryError`` on a
    dict store), but a leak report for ``pinned[page] = None`` failing
    between an acquire and its hand-off would drown the signal.  The
    pragmatic set -- the one resource linters converge on -- is calls,
    explicit ``raise``/``assert``, and ``await``/``yield`` suspension
    points (the coroutine may never be resumed).  Only these statements
    contribute exception-edge states in :mod:`repro.lint.dataflow`.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for root in scan_nodes(stmt):
        for node in ast.walk(root):
            if isinstance(
                node, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom)
            ):
                return True
    return False


def function_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.stmt]:
    """Every statement of ``func``'s own body, nested scopes excluded.

    This is the node set the one-block-per-statement property (and the
    hypothesis suite) quantifies over: compound statements count
    themselves *and* their nested statements, but the bodies of nested
    function/class definitions belong to other scopes.
    """
    collected: list[ast.stmt] = []

    def walk(body: list[ast.stmt]) -> None:
        for stmt in body:
            collected.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if isinstance(nested, list):
                    walk([s for s in nested if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                walk(case.body)

    walk(func.body)
    return collected
