"""Command line front-end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes follow the CI convention: 0 clean, 1 findings, 2 usage or
internal error.  Defaults come from ``[tool.repro-lint]`` in the
nearest ``pyproject.toml``; command-line flags override.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cache import LintCache, rules_signature
from repro.lint.config import LintConfig, load_pyproject_config
from repro.lint.framework import LintResult, lint_paths
from repro.lint.gitdiff import changed_python_files
from repro.lint.rules import ALL_RULES, make_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="per-file result cache (content-hash keyed; invalidated "
        "automatically when rules or analyzer sources change)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured cache for this run",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs git HEAD (plus untracked); "
        "falls back to the full file set outside a git checkout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _split_codes(values: list[str] | None) -> list[str]:
    codes: list[str] = []
    for value in values or []:
        codes.extend(part.strip().upper() for part in value.split(",") if part.strip())
    return codes


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    config = LintConfig() if args.no_config else load_pyproject_config()
    if args.select is not None:
        config.select = _split_codes(args.select)
    if args.ignore is not None:
        config.ignore = _split_codes(args.ignore)
    if args.baseline is not None:
        config.baseline = args.baseline
    if args.cache is not None:
        config.cache = args.cache
    if args.no_cache:
        config.cache = None
    return config


def _restrict_to(paths: list[str], changed: list[str]) -> list[str]:
    """Changed files that fall under one of the requested paths."""
    import os

    roots = [os.path.abspath(p) for p in paths]
    kept: list[str] = []
    for candidate in changed:
        absolute = os.path.abspath(candidate)
        for root in roots:
            if absolute == root or absolute.startswith(root + os.sep):
                kept.append(candidate)
                break
    return kept


def _render_text(result: LintResult, out: object = None) -> None:
    stream = out or sys.stdout
    for finding in result.findings:
        print(finding.render(), file=stream)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" ({result.suppressed} suppressed, {result.baselined} baselined)"
    )
    print(summary, file=stream)


def _render_json(result: LintResult) -> None:
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "files": result.files,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.code}  {rule_class.name}: {rule_class.summary}")
        return EXIT_CLEAN

    try:
        config = _resolve_config(args)
        rules = make_rules(config)
        if not rules:
            print("repro-lint: no rules selected", file=sys.stderr)
            return EXIT_ERROR
        baseline: set[tuple[str, str, str]] | None = None
        if config.baseline and not args.write_baseline:
            baseline = load_baseline(config.baseline)
        paths = list(args.paths)
        if args.changed_only:
            changed = changed_python_files()
            if changed is None:
                print(
                    "repro-lint: --changed-only outside a git checkout; "
                    "linting the full file set",
                    file=sys.stderr,
                )
            else:
                paths = _restrict_to(paths, changed)
        cache: LintCache | None = None
        if config.cache:
            cache = LintCache.load(config.cache, rules_signature(list(rules)))
        result = lint_paths(paths, rules, baseline=baseline, cache=cache)
        if cache is not None:
            cache.save()
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline:
        if not config.baseline:
            print(
                "repro-lint: --write-baseline needs --baseline or a "
                "configured baseline path",
                file=sys.stderr,
            )
            return EXIT_ERROR
        count = write_baseline(config.baseline, result.findings)
        print(f"wrote {count} finding(s) to {config.baseline}")
        return EXIT_CLEAN

    if args.format == "json":
        _render_json(result)
    else:
        _render_text(result)
    return EXIT_FINDINGS if result.findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
