"""Forward dataflow over :mod:`repro.lint.cfg` graphs.

Two layers:

* :func:`solve_forward` -- the generic worklist.  The client supplies a
  transfer function that maps a block's IN state to one OUT state per
  edge kind, and a join (union for *may* analyses, intersection for
  *must*).  States are frozensets of hashable facts.
* :class:`GenKillProblem` / :func:`solve_gen_kill` -- the gen/kill
  convenience layer every shipped rule uses.  The client describes,
  per statement, which facts are generated and which are killed; the
  layer derives the per-edge transfer:

  - the **normal/true/false/back** OUT is the usual sequential
    composition ``(((IN - kill1) | gen1) - kill2) | gen2 ...`` over the
    block's statements;
  - the **except** OUT models where exceptions actually originate: the
    join (union for may, intersection for must) of the *pre*-states of
    every statement :func:`repro.lint.cfg.may_raise` considers able to
    raise.  Using the pre-state matters twice over -- an acquire call
    that raises did *not* acquire (no false leak from ``pin_page``
    itself failing), while a later raising statement carries the
    still-held fact out (the real leak).  Blocks with no raising
    statement contribute nothing along their exception edges.
  - blocks inside a ``finally`` suite are treated as **atomic**: their
    except OUT is the sequential OUT.  A release sweep in a ``finally``
    is exactly the fix the resource rule demands, so an exception
    hypothetically firing between the suite's first statement and the
    release must not re-flag the fixed code.

The worklist iterates to a fixpoint; states only grow (may) or shrink
(must) so termination is immediate for finite fact domains.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass

from .cfg import CFG, EXCEPT, Block, may_raise

Fact = Hashable
State = frozenset[Fact]

MAY = "may"
MUST = "must"

_UNREACHED = None


def solve_forward(
    cfg: CFG,
    transfer: Callable[[Block, State], dict[str, State]],
    *,
    mode: str = MAY,
    entry_state: State = frozenset(),
) -> dict[int, State]:
    """Run a forward worklist to fixpoint; returns IN states per block.

    ``transfer(block, in_state)`` returns a mapping of edge kind to the
    OUT state carried on edges of that kind; kinds absent from the
    mapping default to the ``"normal"`` entry (which must be present).
    """
    joins: dict[int, State | None] = {b.index: _UNREACHED for b in cfg.blocks}
    joins[cfg.entry] = entry_state
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}

    while work:
        index = work.popleft()
        queued.discard(index)
        in_state = joins[index]
        assert in_state is not None
        outs = transfer(cfg.blocks[index], in_state)
        for succ, kind in cfg.blocks[index].succ:
            out = outs.get(kind, outs[("normal")])
            current = joins[succ]
            if current is _UNREACHED:
                merged = out
            elif mode == MAY:
                merged = current | out
            else:
                merged = current & out
            if merged != current:
                joins[succ] = merged
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
    return {
        index: state
        for index, state in joins.items()
        if state is not _UNREACHED
    }


@dataclass
class GenKill:
    """The facts one statement generates and kills."""

    gen: frozenset[Fact] = frozenset()
    kill: frozenset[Fact] = frozenset()


class GenKillProblem:
    """A gen/kill description of a dataflow problem over one CFG."""

    def __init__(
        self,
        cfg: CFG,
        effects: Callable[[ast.AST], GenKill],
        *,
        mode: str = MAY,
    ) -> None:
        self.cfg = cfg
        self.mode = mode
        self._effects = {
            stmt: effects(stmt)
            for block in cfg.blocks
            for stmt in block.stmts
        }

    def effect(self, stmt: ast.AST) -> GenKill:
        return self._effects.get(stmt, GenKill())

    def _transfer(self, block: Block, state: State) -> dict[str, State]:
        sequential = state
        exceptional: State | None = None
        for stmt in block.stmts:
            eff = self.effect(stmt)
            if may_raise(stmt):
                # An exception inside ``stmt`` leaves with the gens not
                # yet applied (a failed acquire acquired nothing).  A
                # *pure* release additionally gets its kills (a release
                # raising mid-release is not protectable by another
                # release); a statement that both acquires and releases
                # keeps the conservative pre-state.
                at_raise = (
                    sequential - eff.kill if not eff.gen else sequential
                )
                if exceptional is None:
                    exceptional = at_raise
                elif self.mode == MAY:
                    exceptional = exceptional | at_raise
                else:
                    exceptional = exceptional & at_raise
            sequential = (sequential - eff.kill) | eff.gen
        if block.index in self.cfg.finally_blocks:
            exceptional = sequential
        elif exceptional is None:
            exceptional = frozenset() if self.mode == MAY else sequential
        return {"normal": sequential, EXCEPT: exceptional}

    def solve(self, entry_state: State = frozenset()) -> "GenKillSolution":
        ins = solve_forward(
            self.cfg, self._transfer, mode=self.mode, entry_state=entry_state
        )
        return GenKillSolution(self, ins)


@dataclass
class GenKillSolution:
    """Fixpoint IN states plus the helpers rules actually ask for."""

    problem: GenKillProblem
    block_in: dict[int, State]

    def in_state(self, index: int) -> State:
        return self.block_in.get(index, frozenset())

    def out_states(self, index: int) -> dict[str, State]:
        state = self.block_in.get(index)
        if state is None:
            return {}
        return self.problem._transfer(
            self.problem.cfg.blocks[index], state
        )

    def facts_reaching(self, *indices: int) -> State:
        """Union of IN states at the given blocks (may-mode reporting).

        For leak detection pass ``cfg.exit`` and ``cfg.raise_exit``:
        any fact still live on entry to either sink survived some path
        out of the function.
        """
        facts: set[Fact] = set()
        for index in indices:
            facts |= self.block_in.get(index, frozenset())
        return frozenset(facts)


def solve_gen_kill(
    cfg: CFG,
    effects: Callable[[ast.AST], GenKill],
    *,
    mode: str = MAY,
    entry_state: Iterable[Fact] = (),
) -> GenKillSolution:
    """One-shot helper: build the problem and solve it."""
    problem = GenKillProblem(cfg, effects, mode=mode)
    return problem.solve(frozenset(entry_state))
