"""Baseline files: grandfathering existing findings without fixing them.

A baseline is a JSON file holding the fingerprints of known findings.
A lint run with ``--baseline`` subtracts every baselined fingerprint
from its output, so new code is held to the rules while legacy findings
are burned down independently.  ``--write-baseline`` records the
current findings; an **empty** baseline (the checked-in default --
``src/`` is clean) is simply ``{"version": 1, "findings": []}``.

Fingerprints are line-number independent (rule, file, message), so
grandfathered findings survive unrelated edits above them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.framework import Finding

BASELINE_VERSION = 1
"""Bump when the baseline layout changes incompatibly."""


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Load the fingerprints of a baseline file.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (a broken baseline silently un-suppressing -- or
    worse, suppressing -- findings would defeat the gate).
    """
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    try:
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        entries = data["findings"]
        return {
            (entry["code"], entry["path"], entry["message"]) for entry in entries
        }
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed baseline file {baseline_path}: {exc}") from exc


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write the given findings as the new baseline; returns the count.

    Entries are sorted and deduplicated by fingerprint so the file is
    stable under re-runs and merges cleanly.
    """
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"code": code, "path": file_path, "message": message}
            for code, file_path, message in fingerprints
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(fingerprints)
