"""Lint configuration: rule selection and per-rule options.

Configuration merges three layers, weakest first:

1. built-in defaults (every rule enabled, repo-layout scopes);
2. ``[tool.repro-lint]`` in ``pyproject.toml`` -- ``select``,
   ``ignore``, ``baseline`` keys plus per-rule tables like
   ``[tool.repro-lint.rpl002]`` whose keys are handed to the rule's
   :meth:`~repro.lint.framework.Rule.configure`;
3. command-line flags (``--select``/``--ignore``/``--baseline``).

Rule codes are case-insensitive everywhere.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

if sys.version_info >= (3, 11):  # pragma: no cover - version dispatch
    import tomllib
else:  # pragma: no cover - the image ships 3.11; kept for 3.10 support
    tomllib = None  # type: ignore[assignment,unused-ignore]


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    select: list[str] = field(default_factory=list)
    """Rule codes to run; empty means every registered rule."""

    ignore: list[str] = field(default_factory=list)
    """Rule codes to skip (applied after ``select``)."""

    baseline: str | None = None
    """Path of the baseline file, if any."""

    cache: str | None = None
    """Path of the per-file result cache, if caching is enabled."""

    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    """Per-rule option tables, keyed by upper-case rule code."""

    def enabled(self, code: str) -> bool:
        code = code.upper()
        if self.select and code not in self.select:
            return False
        return code not in self.ignore

    def options_for(self, code: str) -> dict[str, Any]:
        return self.rule_options.get(code.upper(), {})


def _normalise_codes(values: Any) -> list[str]:
    if isinstance(values, str):
        values = [part.strip() for part in values.split(",")]
    return [str(value).upper() for value in values if str(value).strip()]


def load_pyproject_config(start: str | Path = ".") -> LintConfig:
    """Read ``[tool.repro-lint]`` from the nearest ``pyproject.toml``.

    Searches ``start`` and its parents; returns defaults when no file
    (or no table, or no TOML parser on 3.10) is found.
    """
    config = LintConfig()
    if tomllib is None:
        return config
    directory = Path(start).resolve()
    candidates = [directory, *directory.parents]
    for candidate in candidates:
        pyproject = candidate / "pyproject.toml"
        if not pyproject.exists():
            continue
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return config
        table = data.get("tool", {}).get("repro-lint", {})
        if not isinstance(table, dict):
            return config
        config.select = _normalise_codes(table.get("select", []))
        config.ignore = _normalise_codes(table.get("ignore", []))
        baseline = table.get("baseline")
        if baseline:
            config.baseline = str(candidate / str(baseline))
        cache = table.get("cache")
        if cache:
            config.cache = str(candidate / str(cache))
        for key, value in table.items():
            if isinstance(value, dict):
                config.rule_options[key.upper()] = dict(value)
        return config
    return config
