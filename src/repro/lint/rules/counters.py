"""RPL003: paper counters are folded through the MetricSet API.

Every number in the reproduced tables comes out of a
:class:`~repro.metrics.counters.MetricSet`.  Scattered ``metrics.x += 1``
writes make it impossible to audit which algorithm charges which
counter where, and invite drift between the paged and fast engines.
Algorithm code therefore accumulates plain local integers and folds
them through the sanctioned API -- ``metrics.fold(...)``,
``metrics.set_totals(...)``, ``metrics.count_union(...)`` -- which only
``repro/metrics/`` itself may implement with direct attribute writes.

The nested ``metrics.io`` block is exempt: ``IoStats`` is the
phase-bucketed I/O ledger with its own charge API, already funnelled
through the engines.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule, terminal_name

METRICS_RECEIVERS = ("metrics", "_metrics", "metric_set")

FALLBACK_COUNTER_FIELDS = (
    "tuples_generated",
    "duplicates",
    "distinct_tuples",
    "output_tuples",
    "tuple_io",
    "list_unions",
    "list_reads",
    "arcs_considered",
    "arcs_marked",
    "unmarked_locality_total",
    "reblocking_events",
    "cpu_seconds",
    "restructure_cpu_seconds",
)


def _counter_fields() -> tuple[str, ...]:
    """The MetricSet counter fields, read from the dataclass itself.

    Importing the real dataclass keeps the rule honest when fields are
    added; the literal fallback keeps the linter usable standalone.
    """
    try:
        import dataclasses

        from repro.metrics.counters import MetricSet

        return tuple(
            f.name for f in dataclasses.fields(MetricSet) if f.name != "io"
        )
    except Exception:  # pragma: no cover - standalone fallback
        return FALLBACK_COUNTER_FIELDS


class CounterDisciplineRule(Rule):
    code = "RPL003"
    name = "counter-discipline"
    summary = (
        "no direct MetricSet attribute writes outside repro/metrics/ -- "
        "fold locals through metrics.fold()/set_totals()/count_union()"
    )

    def __init__(self) -> None:
        self.fields: tuple[str, ...] = _counter_fields()
        self.receivers: tuple[str, ...] = METRICS_RECEIVERS
        self.allowed_prefixes: tuple[str, ...] = ("repro.metrics",)

    def _is_counter_write(self, target: ast.AST) -> str | None:
        """The written counter name, if ``target`` is one."""
        if not isinstance(target, ast.Attribute) or target.attr not in self.fields:
            return None
        receiver = terminal_name(target.value)
        if receiver in self.receivers:
            return target.attr
        return None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if self.applies_to(ctx.module, self.allowed_prefixes):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST]
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                counter = self._is_counter_write(target)
                if counter is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct write to MetricSet counter {counter!r}; "
                        f"accumulate locally and fold through metrics.fold()/"
                        f"set_totals()/count_union()",
                    )
