"""RPL007: scale hygiene on graph-sized hot paths.

The CSR refactor exists because per-node Python containers cost ~100
bytes per node where a flat ``array('q')`` costs 8; at the ingestion
scale (100k+ nodes, 1M+ arcs) the difference decides whether a build
fits in memory.  The regression this rule guards against is the easy
one: a loop over every node or arc of a graph that accumulates into a
dict keyed by node id --

    for src, dst in graph.arcs():
        adjacency.setdefault(src, []).append(dst)

-- rebuilding exactly the per-node-list structure the CSR core retired.
On a graph-sized path that should be flat arc columns fed to
``graph_from_columns`` (or the graph's own zero-copy
``adjacency_rows()``).

The rule only fires when the *enclosing loop* visibly iterates a
graph-scale source: a ``.arcs()`` or ``.nodes()`` call, a ``range()``
over a ``num_nodes``-derived bound, or an iterable named ``arcs``.
Node-keyed dicts built from bounded or derived iterables (a chain
``order``, a frontier, a query's source set) are idiomatic and stay
clean.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule

SCOPE_DEFAULT = (
    "repro.core",
    "repro.graphs",
)

GRAPH_SCALE_METHODS = ("arcs", "nodes")

ARCS_NAMES = ("arcs",)


class ScaleHygieneRule(Rule):
    code = "RPL007"
    name = "scale-hygiene"
    summary = (
        "no per-node dict/list accumulators in loops over every node "
        "or arc of a graph; use flat arc columns or CSR rows"
    )

    def __init__(self) -> None:
        self.modules: tuple[str, ...] = SCOPE_DEFAULT

    # -- graph-scale loop detection -------------------------------------------

    def _is_graph_scale_iter(self, node: ast.expr) -> bool:
        """Whether a loop iterable visibly ranges over a whole graph."""
        # graph.arcs() / graph.nodes() -- any receiver.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in GRAPH_SCALE_METHODS
            and not node.args
        ):
            return True
        # range(...) with a num_nodes-derived bound.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
            and any(self._mentions_num_nodes(arg) for arg in node.args)
        ):
            return True
        # A bare iterable named like an arc stream.
        if isinstance(node, ast.Name) and node.id in ARCS_NAMES:
            return True
        return False

    @staticmethod
    def _mentions_num_nodes(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "num_nodes":
                return True
            if isinstance(sub, ast.Name) and sub.id == "num_nodes":
                return True
        return False

    @staticmethod
    def _loop_targets(target: ast.expr) -> set[str]:
        """The names the for-loop binds (``src, dst`` unpacks both)."""
        return {
            sub.id for sub in ast.walk(target) if isinstance(sub, ast.Name)
        }

    @staticmethod
    def _keyed_by(node: ast.expr, loop_vars: set[str]) -> bool:
        """Whether a key expression is (derived from) a loop variable."""
        return any(
            isinstance(sub, ast.Name) and sub.id in loop_vars
            for sub in ast.walk(node)
        )

    # -- the check -------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self.applies_to(ctx.module, self.modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            if not self._is_graph_scale_iter(node.iter):
                continue
            loop_vars = self._loop_targets(node.target)
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    yield from self._check_accumulator(ctx, sub, loop_vars)

    def _check_accumulator(
        self, ctx: FileContext, node: ast.AST, loop_vars: set[str]
    ) -> Iterable[Finding]:
        # acc.setdefault(node_id, ...) -- the canonical adjacency build.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setdefault"
            and isinstance(node.func.value, ast.Name)
            and node.args
            and self._keyed_by(node.args[0], loop_vars)
        ):
            yield self.finding(
                ctx,
                node,
                f"per-node dict accumulator "
                f"{node.func.value.id}.setdefault({ast.unparse(node.args[0])}, "
                f"...) in a loop over every node/arc; accumulate flat arc "
                f"columns and build with graph_from_columns (or read the "
                f"graph's zero-copy adjacency_rows())",
            )
            return
        # acc[node_id].append(...) / acc[node_id] = [...] container writes.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "add", "extend")
            and isinstance(node.func.value, ast.Subscript)
            and isinstance(node.func.value.value, ast.Name)
            and self._keyed_by(node.func.value.slice, loop_vars)
        ):
            yield self.finding(
                ctx,
                node,
                f"per-node container write "
                f"{ast.unparse(node.func.value)}.{node.func.attr}(...) in a "
                f"loop over every node/arc; accumulate flat arc columns and "
                f"build with graph_from_columns",
            )
            return
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].value, ast.Name)
            and self._keyed_by(node.targets[0].slice, loop_vars)
            and self._is_container_expr(node.value)
        ):
            yield self.finding(
                ctx,
                node,
                f"per-node container {ast.unparse(node.targets[0])} = "
                f"{type(node.value).__name__.lower()} in a loop over every "
                f"node/arc; use flat arrays sized to num_nodes instead of a "
                f"container per node",
            )

    @staticmethod
    def _is_container_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Set, ast.Dict, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "set", "dict")
        return False
