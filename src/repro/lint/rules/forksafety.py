"""RPL010: what crosses the process-pool boundary must survive a fork.

The parallel experiment engine (PR 4) pickles every submitted callable
and argument into worker processes.  Three classes of bug get through
the type checker and the unit tests (which run the serial path) only to
corrupt multi-process sweeps:

* **capturing closures** -- a lambda or nested function submitted to
  the pool that closes over an engine, executor, socket, open handle or
  live trace collector: either it fails to pickle, or worse, pickles a
  *copy* whose buffer counters silently diverge from the parent's;
* **unpicklable arguments** -- the same objects passed positionally;
* **unreset module state** -- a module-level mutable (dict/list/set)
  read by any function reachable from a submitted entry point.  Workers
  are long-lived and recycled across sweep units, so stale cached state
  makes unit results depend on scheduling order — the exact
  non-determinism the paper's methodology (fixed seeds, pinned page
  layouts) exists to exclude.  The sanctioned pattern is a reset hook:
  the ``ProcessPoolExecutor(initializer=...)`` function (plus any
  names configured in ``reset_hooks``) must clear or reassign the
  global.

The reachability walk is a same-module call-graph BFS from every
``.submit(...)`` target; attribute calls and imports are not followed
(cross-module state is the capability system's problem, not this
rule's).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.framework import (
    FileContext,
    Finding,
    Rule,
    terminal_name,
)
from repro.lint.rules.resources import (
    FunctionNode,
    local_bindings,
)

MUTABLE_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
    }
)


class ForkSafetyRule(Rule):
    """RPL010: pool-submitted work must be picklable and state-clean."""

    code = "RPL010"
    name = "fork-safety"
    summary = (
        "pool.submit targets must not close over engines/pools/sockets/"
        "handles, and module-level mutable state read by workers needs "
        "a reset hook in the pool initializer"
    )

    def __init__(self) -> None:
        self.scope: tuple[str, ...] = ("repro.experiments.parallel",)
        self.banned_constructors: tuple[str, ...] = (
            "concurrent.futures.ProcessPoolExecutor",
            "concurrent.futures.ThreadPoolExecutor",
            "repro.obs.tracing.TraceCollector",
            "socket.socket",
            "open",
            "io.open",
            "ExperimentEngine",
        )
        self.reset_hooks: tuple[str, ...] = ()

    # -- entry -----------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self.applies_to(ctx.module, self.scope):
            return
        submits = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ]
        module_funcs = {
            stmt.name: stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, FunctionNode)
        }
        for call in submits:
            yield from self._check_submit(ctx, call, module_funcs)
        yield from self._check_module_state(ctx, submits, module_funcs)

    # -- capturing closures and pickled arguments ------------------------------

    def _check_submit(
        self,
        ctx: FileContext,
        call: ast.Call,
        module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> Iterator[Finding]:
        target = call.args[0]
        free_names: set[str] = set()
        target_desc = None
        if isinstance(target, ast.Lambda):
            target_desc = "lambda"
            params = {a.arg for a in target.args.args}
            params.update(a.arg for a in target.args.posonlyargs)
            params.update(a.arg for a in target.args.kwonlyargs)
            free_names = {
                n.id
                for n in ast.walk(target.body)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            } - params
        elif isinstance(target, ast.Name):
            nested = self._nested_def(ctx, call, target.id)
            if nested is not None:
                target_desc = f"nested function {nested.name}"
                free_names = {
                    n.id
                    for n in ast.walk(nested)
                    if isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                } - local_bindings(nested) - set(module_funcs)
        if target_desc is not None:
            for name in sorted(free_names):
                origin = self._banned_origin(ctx, call, name)
                if origin is not None:
                    yield self.finding(
                        ctx,
                        target,
                        f"{target_desc} submitted to the pool closes "
                        f"over {name!r} ({origin}); pass plain data and "
                        "rebuild the object inside the worker",
                    )
        for arg in call.args[1:]:
            if isinstance(arg, ast.Name):
                origin = self._banned_origin(ctx, call, arg.id)
                if origin is not None:
                    yield self.finding(
                        ctx,
                        arg,
                        f"argument {arg.id!r} submitted to the pool is "
                        f"a live resource ({origin}); it cannot be "
                        "pickled into a worker — pass a spec and "
                        "rebuild it worker-side",
                    )

    @staticmethod
    def _nested_def(
        ctx: FileContext, call: ast.Call, name: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for scope in ctx.enclosing_functions(call):
            for stmt in ast.walk(scope):
                if (
                    isinstance(stmt, FunctionNode)
                    and stmt.name == name
                    and stmt is not scope
                ):
                    return stmt
        return None

    def _banned_origin(
        self, ctx: FileContext, at: ast.AST, name: str
    ) -> str | None:
        """The banned constructor ``name`` traces to, if any."""
        value = ctx.scope_assignments(at).get(name)
        if not isinstance(value, ast.Call):
            return None
        resolved = ctx.resolve_dotted(value.func)
        term = terminal_name(value.func)
        banned = set(self.banned_constructors)
        banned_terminals = {b.rpartition(".")[2] for b in banned}
        if resolved in banned or term in banned_terminals:
            return f"built by {resolved or term}()"
        return None

    # -- module-level mutable state --------------------------------------------

    def _check_module_state(
        self,
        ctx: FileContext,
        submits: list[ast.Call],
        module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> Iterator[Finding]:
        mutables = self._module_mutables(ctx)
        if not mutables:
            return
        roots = []
        for call in submits:
            target = call.args[0]
            if isinstance(target, ast.Name) and target.id in module_funcs:
                roots.append(target.id)
        if not roots:
            return
        reachable = self._reachable(roots, module_funcs)
        resetters = self._reset_functions(ctx, module_funcs)
        reset_globals: set[str] = set()
        for func in resetters:
            reset_globals |= self._resets_in(func)
        for name in sorted(reachable):
            func = module_funcs[name]
            bound = local_bindings(func)
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutables
                    and node.id not in bound
                    and node.id not in reset_globals
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker-reachable function {name}() reads "
                        f"module-level mutable {node.id!r} with no "
                        "reset in the pool initializer; clear it there "
                        "so recycled workers start deterministic",
                    )
                    break  # one finding per (function, run) is enough

    @staticmethod
    def _module_mutables(ctx: FileContext) -> set[str]:
        names: set[str] = set()
        for stmt in ctx.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, (ast.Dict, ast.List, ast.Set)):
                names.add(target.id)
            elif isinstance(value, ast.Call):
                resolved = ctx.resolve_dotted(value.func)
                if resolved in MUTABLE_FACTORIES:
                    names.add(target.id)
        return names

    @staticmethod
    def _reachable(
        roots: list[str],
        module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> set[str]:
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen or name not in module_funcs:
                continue
            seen.add(name)
            for node in ast.walk(module_funcs[name]):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    stack.append(node.func.id)
        return seen

    def _reset_functions(
        self,
        ctx: FileContext,
        module_funcs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        found = [
            module_funcs[name]
            for name in self.reset_hooks
            if name in module_funcs
        ]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            term = terminal_name(node.func)
            if term not in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
                continue
            for keyword in node.keywords:
                if keyword.arg == "initializer" and isinstance(
                    keyword.value, ast.Name
                ):
                    func = module_funcs.get(keyword.value.id)
                    if func is not None:
                        found.append(func)
        return found

    @staticmethod
    def _resets_in(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Globals the hook resets: ``G.clear()`` or a (global) rebind."""
        reset: set[str] = set()
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("clear", "cache_clear")
                and isinstance(node.func.value, ast.Name)
            ):
                reset.add(node.func.value.id)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                reset.add(node.id)
        return reset
