"""RPL001: algorithm code stays behind the storage-engine seam.

The PR that introduced the :class:`~repro.storage.engine.StorageEngine`
seam guaranteed that algorithm code never touches the paged substrate
directly -- buffer pool, clustered relations, page geometry, successor
stores all hide behind the engine interface.  The original CI guard was
a ``grep`` over ``repro/core`` that missed aliased imports
(``import repro.storage.buffer as b``), ``from repro.storage import
buffer``, dynamic ``importlib.import_module("repro.storage.buffer")``
strings, and every package outside ``core/``.  This rule sees all of
them in the AST.

Imports inside ``if TYPE_CHECKING:`` blocks are allowed: annotations
need the substrate *types* (the auditor inspects a ``BufferPool``), but
type-only imports create no runtime coupling.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule

BANNED_DEFAULT = (
    "repro.storage.paged",
    "repro.storage.buffer",
    "repro.storage.page",
    "repro.storage.relation",
    "repro.storage.successor_store",
)

DYNAMIC_IMPORTERS = ("importlib.import_module", "__import__")


class SeamIsolationRule(Rule):
    code = "RPL001"
    name = "seam-isolation"
    summary = (
        "no repro.storage substrate imports outside repro/storage/ -- "
        "algorithms speak to repro.storage.engine only"
    )

    def __init__(self) -> None:
        self.banned: tuple[str, ...] = BANNED_DEFAULT
        self.allowed_prefixes: tuple[str, ...] = ("repro.storage",)

    # -- helpers ---------------------------------------------------------------

    def _is_banned(self, module: str) -> bool:
        return any(
            module == banned or module.startswith(banned + ".")
            for banned in self.banned
        )

    def _message(self, module: str) -> str:
        return (
            f"import of storage substrate module {module!r} outside "
            f"repro/storage/; use the repro.storage.engine seam instead"
        )

    # -- the check -------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if self.applies_to(ctx.module, self.allowed_prefixes):
            return
        type_only = ctx.type_checking_lines()
        for node in ast.walk(ctx.tree):
            if getattr(node, "lineno", None) in type_only:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_banned(alias.name):
                        yield self.finding(ctx, node, self._message(alias.name))
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                if self._is_banned(module):
                    yield self.finding(ctx, node, self._message(module))
                else:
                    # ``from repro.storage import buffer`` names the
                    # banned module as the imported symbol instead.
                    for alias in node.names:
                        candidate = f"{module}.{alias.name}" if module else alias.name
                        if self._is_banned(candidate):
                            yield self.finding(ctx, node, self._message(candidate))
            elif isinstance(node, ast.Call):
                target = ctx.resolve_dotted(node.func)
                if target not in DYNAMIC_IMPORTERS or not node.args:
                    continue
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    if self._is_banned(first.value):
                        yield self.finding(
                            ctx,
                            node,
                            f"dynamic import of storage substrate module "
                            f"{first.value!r} outside repro/storage/; use the "
                            f"repro.storage.engine seam instead",
                        )
