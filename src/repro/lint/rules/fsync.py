"""RPL006: durability-critical writes are flushed *and* fsynced.

The kill-then-resume guarantee rests on two files: the sweep journal
(``repro/chaos/checkpoint.py``) and the JSONL run-record sink
(``repro/obs/sink.py``).  A record that was ``write()``-ten but still
sitting in a userspace or kernel buffer when the process dies is a
record that never happened -- resume would silently re-run (or worse,
skip) units.  Every function in those modules that writes to a stream
must therefore also ``flush()`` it and ``os.fsync()`` its fd.

Functions that only write through an already-durable helper (no direct
``.write(`` call) are out of scope.

A writer may also *delegate* durability: calling a sibling function in
the same module whose own body contains the ``flush()`` + ``os.fsync()``
pair satisfies the rule (the batched :class:`~repro.obs.sink.JsonlSink`
writes per record but funnels every durability point through one
``_make_durable()`` helper).  The delegation is only honoured when the
helper itself is defined in the checked module, so the discipline stays
auditable file-locally.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule, terminal_name

SCOPE_DEFAULT = ("repro.chaos.checkpoint", "repro.obs.sink")

NON_STREAM_WRITERS = ("write_text", "write_bytes")
"""Path.write_text/write_bytes replace whole files; rename-or-nothing
semantics are handled by the checkpoint layer, not per-call fsync."""


class FsyncDisciplineRule(Rule):
    code = "RPL006"
    name = "fsync-discipline"
    summary = (
        "journal/sink functions that write() a stream must also flush() "
        "and os.fsync() it"
    )

    def __init__(self) -> None:
        self.modules: tuple[str, ...] = SCOPE_DEFAULT

    @staticmethod
    def _calls_in(node: ast.AST) -> Iterable[ast.Call]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub

    def _function_writes(self, func: ast.AST) -> ast.Call | None:
        """The first direct stream ``.write()`` call in ``func``, if any."""
        for call in self._calls_in(func):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "write"
            ):
                return call
        return None

    def _durable_helpers(self, tree: ast.AST) -> set[str]:
        """Names of functions whose own body flushes *and* fsyncs."""
        helpers: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = {terminal_name(call.func) for call in self._calls_in(node)}
            if "flush" in names and "fsync" in names:
                helpers.add(node.name)
        return helpers

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self.applies_to(ctx.module, self.modules):
            return
        durable_helpers = self._durable_helpers(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            write_call = self._function_writes(node)
            if write_call is None:
                continue
            has_flush = False
            has_fsync = False
            delegates = False
            for call in self._calls_in(node):
                name = terminal_name(call.func)
                if name == "flush":
                    has_flush = True
                elif name == "fsync":
                    has_fsync = True
                elif name in durable_helpers:
                    delegates = True
            if delegates or (has_flush and has_fsync):
                continue
            missing = []
            if not has_flush:
                missing.append("flush()")
            if not has_fsync:
                missing.append("os.fsync()")
            yield self.finding(
                ctx,
                write_call,
                f"{node.name}() writes a durability-critical stream without "
                f"{' or '.join(missing)}; buffered records are lost on kill",
            )
