"""RPL009: the serve event loop must never block, and tasks must land.

The resilient query service (PR 8) holds its p99 promises only while
the event loop keeps turning: one synchronous ``fsync`` inside a
handler stalls *every* in-flight request, which is precisely the
degradation mode the chaos suite works to rule out.  Three checks:

* **blocking calls in async functions** -- a call that resolves to a
  known-blocking API (``time.sleep``, ``os.fsync``, ``subprocess.*``,
  sync ``open``, the fsync-per-record ``JsonlSink``, an engine
  ``.run()``) directly inside an ``async def``.  References passed to
  ``run_in_executor``/``partial`` are arguments, not calls, so the
  executor idiom is exempt by construction.  The check also looks one
  hop into same-file *sync* helpers: the RPL006 durable-write idiom
  hides the fsync inside a helper, and delegation must not launder it
  back onto the loop;
* **un-awaited coroutines** -- calling a same-file ``async def`` (or
  ``asyncio.sleep``) without ``await`` creates a coroutine that never
  runs; as a bare expression statement it is reported outright, and a
  coroutine bound to a variable flows through the may-leak dataflow
  (:mod:`repro.lint.dataflow`) until awaited or escaped;
* **orphaned tasks** -- ``asyncio.create_task``/``ensure_future``
  results that are discarded, or bound but never awaited, cancelled,
  gathered, stored, or given a done-callback on some path out of the
  function.  An orphaned task's exception is silently swallowed at
  garbage collection -- the serve equivalent of a dropped unit error.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.cfg import build_cfg, scan_nodes
from repro.lint.dataflow import GenKill, solve_gen_kill
from repro.lint.framework import (
    FileContext,
    Finding,
    Rule,
    terminal_name,
)
from repro.lint.rules.resources import CalleeResolver, FunctionNode

TASK_FACTORIES = (
    "asyncio.create_task",
    "asyncio.ensure_future",
)

RETRIEVE_ATTRS = frozenset(
    {"result", "exception", "add_done_callback", "cancel"}
)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, stopping at nested scopes."""
    stack: list[ast.AST] = list(
        getattr(func, "body", [])
    )
    while stack:
        node = stack.pop()
        if isinstance(node, (*FunctionNode, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncHygieneRule(Rule):
    """RPL009: no blocking calls on the loop; every coroutine lands."""

    code = "RPL009"
    name = "async-hygiene"
    summary = (
        "no blocking I/O inside async functions (directly or one helper "
        "deep); coroutines and created tasks must be awaited or handed off"
    )

    def __init__(self) -> None:
        self.scope: tuple[str, ...] = ("repro.serve", "repro.cli")
        self.blocking_calls: tuple[str, ...] = (
            "time.sleep",
            "os.fsync",
            "os.sync",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "open",
            "io.open",
            "repro.obs.sink.JsonlSink",
        )
        self.blocking_run_receivers: tuple[str, ...] = ("engine",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self.applies_to(ctx.module, self.scope):
            return
        resolver = CalleeResolver(ctx)
        blocking = frozenset(self.blocking_calls)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_def(
                    ctx, node, resolver, blocking
                )

    # -- one async def ---------------------------------------------------------

    def _check_async_def(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        resolver: CalleeResolver,
        blocking: frozenset[str],
    ) -> Iterator[Finding]:
        fact_sites: dict[str, list[ast.AST]] = {}
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_dotted(node.func)
            if resolved in blocking:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking call {resolved}() inside async def "
                    f"{func.name}; run it in an executor or move it "
                    "off the async path",
                )
                continue
            if self._is_engine_run(node):
                yield self.finding(
                    ctx,
                    node,
                    f"synchronous engine .run() inside async def "
                    f"{func.name}; run it in an executor "
                    "(loop.run_in_executor)",
                )
                continue
            if self._is_task_factory(resolved, node):
                yield from self._handle_task(ctx, func, node, fact_sites)
                continue
            callee = resolver.resolve(node)
            if callee is None:
                continue
            if isinstance(callee, ast.AsyncFunctionDef):
                yield from self._handle_coroutine(
                    ctx, func, node, callee, fact_sites
                )
            elif isinstance(callee, ast.FunctionDef):
                hidden = self._blocking_inside(ctx, callee, blocking)
                if hidden is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"async def {func.name} calls {callee.name}() "
                        f"which performs blocking I/O ({hidden}); hoist "
                        "the call off the event loop or wrap it in an "
                        "executor",
                    )
        if fact_sites:
            yield from self._flow_check(ctx, func, fact_sites)

    # -- helpers ---------------------------------------------------------------

    def _is_engine_run(self, call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "run"
            and terminal_name(func.value) in self.blocking_run_receivers
        )

    @staticmethod
    def _is_task_factory(resolved: str | None, call: ast.Call) -> bool:
        if resolved in TASK_FACTORIES:
            return True
        func = call.func
        return isinstance(func, ast.Attribute) and func.attr in (
            "create_task",
            "ensure_future",
        )

    def _blocking_inside(
        self,
        ctx: FileContext,
        helper: ast.FunctionDef,
        blocking: frozenset[str],
    ) -> str | None:
        """One-hop delegation: the first blocking call inside ``helper``."""
        for node in _own_nodes(helper):
            if isinstance(node, ast.Call):
                resolved = ctx.resolve_dotted(node.func)
                if resolved in blocking:
                    return resolved
                if self._is_engine_run(node):
                    return "engine.run"
        return None

    def _handle_task(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        call: ast.Call,
        fact_sites: dict[str, list[ast.AST]],
    ) -> Iterator[Finding]:
        parent = ctx.parent(call)
        if isinstance(parent, ast.Expr):
            yield self.finding(
                ctx,
                call,
                f"task created in async def {func.name} is discarded; "
                "its exceptions can never be retrieved — bind it and "
                "await it (or add a done-callback)",
            )
        elif isinstance(parent, ast.Assign) and all(
            isinstance(t, ast.Name) for t in parent.targets
        ):
            for target in parent.targets:
                assert isinstance(target, ast.Name)
                fact_sites.setdefault(f"task:{target.id}", []).append(call)

    def _handle_coroutine(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        call: ast.Call,
        callee: ast.AsyncFunctionDef,
        fact_sites: dict[str, list[ast.AST]],
    ) -> Iterator[Finding]:
        parent = ctx.parent(call)
        if isinstance(parent, ast.Await):
            return
        if isinstance(parent, ast.Expr):
            yield self.finding(
                ctx,
                call,
                f"coroutine {callee.name}() is never awaited in async "
                f"def {func.name}; the call creates a coroutine object "
                "and discards it without running it",
            )
        elif isinstance(parent, ast.Assign) and all(
            isinstance(t, ast.Name) for t in parent.targets
        ):
            for target in parent.targets:
                assert isinstance(target, ast.Name)
                fact_sites.setdefault(
                    f"task:{target.id}", []
                ).append(call)

    # -- dataflow for bound tasks/coroutines -----------------------------------

    def _flow_check(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        fact_sites: dict[str, list[ast.AST]],
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        tracked = frozenset(fact_sites)

        def effects(stmt: ast.AST) -> GenKill:
            gen: set[str] = set()
            kill: set[str] = set()
            for root in scan_nodes(stmt):
                for node in ast.walk(root):
                    if isinstance(node, ast.Await):
                        if isinstance(node.value, ast.Name):
                            kill.add(f"task:{node.value.id}")
                    elif isinstance(node, ast.Call):
                        func_expr = node.func
                        if (
                            isinstance(func_expr, ast.Attribute)
                            and isinstance(func_expr.value, ast.Name)
                            and func_expr.attr in RETRIEVE_ATTRS
                        ):
                            kill.add(f"task:{func_expr.value.id}")
                        for arg in node.args:
                            kill.update(_task_names_in(arg))
                        for keyword in node.keywords:
                            kill.update(_task_names_in(keyword.value))
                    elif isinstance(
                        node, (ast.Return, ast.Yield, ast.YieldFrom)
                    ):
                        if node.value is not None:
                            kill.update(_task_names_in(node.value))
            if isinstance(stmt, ast.Assign):
                # Aliasing / storing the task escapes it; rebinding the
                # name kills the old fact before the new gen below.
                kill.update(_task_names_in(stmt.value))
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        kill.add(f"task:{target.id}")
                    else:
                        kill.update(_task_names_in(target))
            for fact, sites in fact_sites.items():
                for site in sites:
                    if ctx.parent(site) is stmt:
                        gen.add(fact)
            return GenKill(frozenset(gen), frozenset(kill & tracked))

        solution = solve_gen_kill(cfg, effects)
        leaked = solution.facts_reaching(cfg.exit, cfg.raise_exit)
        for fact in sorted(str(f) for f in leaked):
            name = fact.partition(":")[2]
            for site in fact_sites.get(fact, []):
                yield self.finding(
                    ctx,
                    site,
                    f"task/coroutine {name!r} in async def {func.name} "
                    "is never awaited on some path; await it, gather "
                    "it, or attach a done-callback so failures surface",
                )


def _task_names_in(node: ast.AST) -> set[str]:
    return {
        f"task:{sub.id}"
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }
