"""RPL005: chaos and retry paths never swallow exceptions.

The chaos harness exists to prove crash-consistency, which only works
if faults surface.  A bare ``except:`` (anywhere) or an ``except
Exception:`` in the chaos/parallel-retry packages that neither
re-raises nor converts the failure into a structured unit error hides
exactly the faults the harness injects.  Handlers are fine when they:

* ``raise`` (bare or with a new exception),
* reference the structured failure type (``UnitError``) or record the
  failure through an error/failure-named call (``record_failure``,
  ``mark_failed``, ...).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule, dotted_name

BROAD_SCOPE_DEFAULT = ("repro.chaos", "repro.experiments.parallel")

STRUCTURED_NAMES = ("UnitError", "UnitFailure")

FAILURE_CALL_MARKERS = ("error", "fail")


class ExceptionHygieneRule(Rule):
    code = "RPL005"
    name = "exception-hygiene"
    summary = (
        "no bare except; except Exception on chaos/retry paths must "
        "re-raise or produce a structured unit error"
    )

    def __init__(self) -> None:
        self.broad_scope: tuple[str, ...] = BROAD_SCOPE_DEFAULT
        self.structured_names: tuple[str, ...] = STRUCTURED_NAMES

    # -- handler classification ------------------------------------------------

    @staticmethod
    def _catches_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names: list[ast.AST]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        else:
            names = [handler.type]
        return any(
            dotted_name(name) in ("Exception", "BaseException") for name in names
        )

    def _handler_is_structured(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and node.id in self.structured_names:
                return True
            if isinstance(node, ast.Call):
                target = dotted_name(node.func) or ""
                leaf = target.rsplit(".", 1)[-1].lower()
                if any(marker in leaf for marker in FAILURE_CALL_MARKERS):
                    return True
        return False

    # -- the check -------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        in_broad_scope = self.applies_to(ctx.module, self.broad_scope)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit too; "
                    "name the exception type",
                )
                continue
            if not in_broad_scope:
                continue
            if self._catches_broad(node) and not self._handler_is_structured(node):
                yield self.finding(
                    ctx,
                    node,
                    "except Exception on a chaos/retry path swallows injected "
                    "faults; re-raise or convert to a structured UnitError",
                )
