"""RPL002: deterministic code paths stay deterministic.

The parallel experiment engine, ``--resume`` byte-identity and the
engine-parity goldens all assume that a run is a pure function of its
seeds.  Three things silently break that:

* **wall-clock reads** (``time.time``, ``datetime.now``) leaking into
  computed values -- CPU-time and monotonic timers
  (``time.process_time``, ``time.perf_counter``) are fine because they
  only ever feed explicitly timing-labelled fields that the comparison
  gates exclude;
* **unseeded randomness** -- module-level ``random.*`` functions,
  ``os.urandom``, ``uuid.uuid4``; seeded ``random.Random(seed)``
  instances are the sanctioned source;
* **iterating a set** on a path that produces ordered output -- set
  iteration order depends on the hash function, so results must be
  ``sorted(...)`` (or an insertion-ordered ``dict`` used instead).
  Feeding a set straight into an order-insensitive reducer
  (``sorted``/``sum``/``min``/``max``/``len``/``any``/``all``/
  ``set``/``frozenset``) is allowed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule

SCOPE_DEFAULT = (
    "repro.core",
    "repro.baselines",
    "repro.experiments",
    "repro.obs",
    "repro.paths",
)

WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

UNSEEDED_ENTROPY = (
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
)

UNSEEDED_RANDOM_FNS = (
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "seed",
    "getrandbits",
)

ORDER_INSENSITIVE_CONSUMERS = (
    "sorted",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
)


class DeterminismRule(Rule):
    code = "RPL002"
    name = "determinism-hygiene"
    summary = (
        "no wall-clock reads, unseeded randomness, or unordered set "
        "iteration on deterministic paths"
    )

    def __init__(self) -> None:
        self.modules: tuple[str, ...] = SCOPE_DEFAULT

    # -- set-typed name inference ---------------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _set_names(self, ctx: FileContext, node: ast.AST) -> set[str]:
        """Local names bound to a set expression, visible from ``node``."""
        return {
            name
            for name, value in ctx.scope_assignments(node).items()
            if self._is_set_expr(value)
        }

    def _is_set_iterable(self, ctx: FileContext, node: ast.AST, at: ast.AST) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_names(ctx, at)
        # ``list(a_set)`` / ``tuple(a_set)`` launder the type but keep
        # the nondeterministic order.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and node.args
        ):
            return self._is_set_iterable(ctx, node.args[0], at)
        return False

    def _consumed_unordered(self, ctx: FileContext, comp: ast.AST) -> bool:
        """Whether a comprehension feeds an order-insensitive reducer."""
        parent = ctx.parent(comp)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in ORDER_INSENSITIVE_CONSUMERS
        return False

    # -- the check -------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self.applies_to(ctx.module, self.modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.For):
                if self._is_set_iterable(ctx, node.iter, node):
                    yield self.finding(
                        ctx,
                        node,
                        "iterating a set: the order is hash-dependent; wrap in "
                        "sorted(...) or use an insertion-ordered dict",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_iterable(ctx, generator.iter, node) and not (
                        isinstance(node, (ast.GeneratorExp, ast.ListComp))
                        and self._consumed_unordered(ctx, node)
                    ):
                        yield self.finding(
                            ctx,
                            generator.iter,
                            "comprehension over a set: the order is "
                            "hash-dependent; wrap in sorted(...) or feed an "
                            "order-insensitive reducer",
                        )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        target = ctx.resolve_dotted(node.func)
        if target is None:
            return
        if target in WALL_CLOCK:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {target}() on a deterministic path; use "
                f"time.process_time()/perf_counter() for explicit timing "
                f"fields, or pass timestamps in",
            )
        elif target in UNSEEDED_ENTROPY:
            yield self.finding(
                ctx,
                node,
                f"unseeded entropy source {target}(); derive values from the "
                f"run's seeds (random.Random(seed))",
            )
        elif (
            target.startswith("random.")
            and target.removeprefix("random.") in UNSEEDED_RANDOM_FNS
        ):
            yield self.finding(
                ctx,
                node,
                f"unseeded module-level {target}(); use a seeded "
                f"random.Random(seed) instance",
            )
