"""RPL004: optional engine hooks run behind capability checks.

The fast engine deliberately does not model page costs or pinning; the
engine contract says callers probe ``engine.supports(CAP_*)`` (or call
``engine.require(CAP_*)`` up front) before invoking the optional hooks.
Unguarded calls happen to work today because the fast engine stubs the
hooks as no-ops, but they couple algorithms to that accident -- a third
engine that raises instead would break them.  This rule requires every
cost/pinning hook call outside ``repro/storage/`` to be dominated by a
capability check.

A call counts as guarded when any of these hold in its enclosing
function:

* an ancestor ``if``/``while`` test contains ``.supports(CAP_*)`` /
  ``.require(CAP_*)`` -- directly, or via a flag assigned from such a
  call (``charged = engine.supports(CAP_PAGE_COSTS)`` ... ``if
  charged:``);
* an earlier ``engine.require(CAP_*)`` call (require raises, so
  everything after it is dominated);
* an earlier early-exit guard (``if not can_pin: return`` / ``continue``
  / ``raise``) whose test references a capability check.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.framework import FileContext, Finding, Rule, terminal_name

GUARDED_METHODS = {
    "touch_page": "CAP_PAGE_COSTS",
    "create_page": "CAP_PAGE_COSTS",
    "flush_output": "CAP_PAGE_COSTS",
    "probe_arcs_unclustered": "CAP_PAGE_COSTS",
    "pin_page": "CAP_PINNING",
    "unpin_page": "CAP_PINNING",
}

ENGINE_RECEIVERS = ("engine", "_engine")


class CapabilityGuardRule(Rule):
    code = "RPL004"
    name = "capability-guards"
    summary = (
        "optional engine hooks (page costs, pinning) must be dominated "
        "by an engine.supports(CAP_*)/require(CAP_*) check"
    )

    def __init__(self) -> None:
        self.methods: dict[str, str] = dict(GUARDED_METHODS)
        self.receivers: tuple[str, ...] = ENGINE_RECEIVERS
        self.allowed_prefixes: tuple[str, ...] = ("repro.storage",)

    # -- guard detection -------------------------------------------------------

    @staticmethod
    def _has_cap_arg(call: ast.Call) -> bool:
        for arg in call.args:
            name = terminal_name(arg)
            if name is not None and name.startswith("CAP_"):
                return True
        return False

    def _is_check_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and terminal_name(node.func) in ("supports", "require")
            and self._has_cap_arg(node)
        )

    def _capability_test(self, ctx: FileContext, test: ast.AST, at: ast.AST) -> bool:
        """Whether a condition expression encodes a capability check."""
        assignments: dict[str, ast.expr] | None = None
        for sub in ast.walk(test):
            if self._is_check_call(sub):
                return True
            if isinstance(sub, ast.Name):
                if assignments is None:
                    assignments = ctx.scope_assignments(at)
                value = assignments.get(sub.id)
                if value is not None and self._is_check_call(value):
                    return True
        return False

    def _is_guarded(self, ctx: FileContext, node: ast.Call) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.While)) and self._capability_test(
                ctx, ancestor.test, node
            ):
                return True
            if isinstance(ancestor, ast.IfExp) and self._capability_test(
                ctx, ancestor.test, node
            ):
                return True
        functions = ctx.enclosing_functions(node)
        scope = functions[0] if functions else ctx.tree
        for statement in ast.walk(scope):
            lineno = getattr(statement, "lineno", node.lineno)
            if lineno >= node.lineno:
                continue
            if (
                isinstance(statement, ast.Call)
                and terminal_name(statement.func) == "require"
                and self._has_cap_arg(statement)
            ):
                return True
            if (
                isinstance(statement, ast.If)
                and statement.body
                and isinstance(statement.body[-1], (ast.Return, ast.Continue, ast.Raise))
                and self._capability_test(ctx, statement.test, statement)
            ):
                return True
        return False

    # -- the check -------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if self.applies_to(ctx.module, self.allowed_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in self.methods:
                continue
            receiver = terminal_name(func.value)
            if receiver not in self.receivers:
                continue
            if self._is_guarded(ctx, node):
                continue
            capability = self.methods[func.attr]
            yield self.finding(
                ctx,
                node,
                f"engine hook {func.attr}() called without a "
                f"supports({capability})/require({capability}) guard",
            )
