"""The rule registry: every repo-specific invariant rule, by code."""

from __future__ import annotations

from collections.abc import Sequence

from repro.lint.config import LintConfig
from repro.lint.framework import Rule
from repro.lint.rules.asynchygiene import AsyncHygieneRule
from repro.lint.rules.capability import CapabilityGuardRule
from repro.lint.rules.counters import CounterDisciplineRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.forksafety import ForkSafetyRule
from repro.lint.rules.fsync import FsyncDisciplineRule
from repro.lint.rules.resources import ResourceLifecycleRule
from repro.lint.rules.scale import ScaleHygieneRule
from repro.lint.rules.seam import SeamIsolationRule

ALL_RULES: tuple[type[Rule], ...] = (
    SeamIsolationRule,
    DeterminismRule,
    CounterDisciplineRule,
    CapabilityGuardRule,
    ExceptionHygieneRule,
    FsyncDisciplineRule,
    ScaleHygieneRule,
    ResourceLifecycleRule,
    AsyncHygieneRule,
    ForkSafetyRule,
)


def make_rules(config: LintConfig | None = None) -> Sequence[Rule]:
    """Instantiate and configure the enabled rules."""
    config = config or LintConfig()
    rules: list[Rule] = []
    for rule_class in ALL_RULES:
        if not config.enabled(rule_class.code):
            continue
        rule = rule_class()
        rule.configure(config.options_for(rule_class.code))
        rules.append(rule)
    return rules
