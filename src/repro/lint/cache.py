"""Per-file result caching for the lint CLI.

Dataflow rules cost real CPU (a CFG and a fixpoint per function), and
the rule set only grows.  The cache keeps the full-rule CI leg flat:
a JSON file maps every linted path to the SHA-256 of its content plus
the findings and suppression count that content produced, so an
unchanged file is a dictionary lookup instead of a parse + solve.

Correctness hinges on the **signature**: a digest of the enabled rule
codes, their configured options, *and the analyzer's own sources*
(every ``repro/lint/**/*.py``).  Editing a rule, reordering options or
touching the CFG builder changes the signature and discards the whole
cache -- stale results cannot survive an analyzer change.  Cached
findings are stored pre-baseline: baseline subtraction happens at
report time, so rewriting the baseline never needs a cache flush.

A missing, unreadable or corrupt cache file degrades to a cold run --
the cache is a pure accelerator, never a gate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.framework import Finding, Rule


def content_hash(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def rules_signature(rules: list[Rule] | tuple[Rule, ...]) -> str:
    """Digest of the rule set, its options, and the analyzer sources."""
    digest = hashlib.sha256()
    for rule in sorted(rules, key=lambda r: r.code):
        digest.update(rule.code.encode())
        options = {
            key: value
            for key, value in sorted(vars(rule).items())
            if not key.startswith("_")
        }
        digest.update(repr(options).encode())
    package_root = Path(__file__).resolve().parent
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        try:
            digest.update(source.read_bytes())
        except OSError:  # pragma: no cover - racing an install/cleanup
            digest.update(b"?")
    return digest.hexdigest()


class LintCache:
    """A content-hash keyed map of per-file lint results."""

    VERSION = 1

    def __init__(self, path: str | Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self.entries: dict[str, dict[str, object]] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str | Path, signature: str) -> "LintCache":
        cache = cls(path, signature)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("version") != cls.VERSION
            or payload.get("signature") != signature
        ):
            return cache
        entries = payload.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def save(self) -> None:
        payload = {
            "version": self.VERSION,
            "signature": self.signature,
            "entries": self.entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- per-file results ------------------------------------------------------

    def lookup(
        self, path: str, source: bytes
    ) -> tuple[list[Finding], int] | None:
        """Hash-and-get convenience used by ``lint_paths``."""
        return self.get(path, content_hash(source))

    def store(
        self,
        path: str,
        source: bytes,
        findings: list[Finding],
        suppressed: int,
    ) -> None:
        self.put(path, content_hash(source), findings, suppressed)

    def get(
        self, path: str, digest: str
    ) -> tuple[list[Finding], int] | None:
        """Cached (findings, suppressed-count) for this exact content."""
        entry = self.entries.get(path)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            self.misses += 1
            return None
        raw = entry.get("findings")
        suppressed = entry.get("suppressed")
        if not isinstance(raw, list) or not isinstance(suppressed, int):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    code=str(item["code"]),
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    message=str(item["message"]),
                )
                for item in raw
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, suppressed

    def put(
        self,
        path: str,
        digest: str,
        findings: list[Finding],
        suppressed: int,
    ) -> None:
        self.entries[path] = {
            "hash": digest,
            "findings": [finding.to_dict() for finding in findings],
            "suppressed": suppressed,
        }
