"""Git-driven file selection for ``repro-lint --changed-only``.

The changed set is the union of tracked files that differ from ``HEAD``
(staged or not) and untracked files that are not ignored -- i.e. every
``.py`` file whose lint result could differ from the last commit's.
Deleted files are naturally excluded (they no longer exist on disk, so
``collect_files`` drops them).

Returns ``None`` when git is unavailable or the directory is not a
checkout: the caller falls back to the full file set, because linting
too much is safe and linting nothing is not.
"""

from __future__ import annotations

import subprocess


def changed_python_files(cwd: str = ".") -> list[str] | None:
    """``.py`` paths changed vs HEAD plus untracked, or None without git."""
    commands = [
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    changed: list[str] = []
    seen: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=30,
                check=False,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        for line in proc.stdout.splitlines():
            path = line.strip()
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                changed.append(path)
    return changed
