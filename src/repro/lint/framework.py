"""The rule engine: file parsing, AST utilities, suppression, running.

The framework is deliberately self-contained (stdlib ``ast`` only): a
:class:`FileContext` wraps one parsed file with the derived facts every
rule needs -- the dotted module name, a parent map, the line ranges of
``if TYPE_CHECKING:`` blocks, an import-alias map, per-scope name
assignments and the inline suppression table -- and a :class:`Rule`
yields :class:`Finding` objects from it.  :func:`lint_paths` drives the
whole thing over a file set.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.cache import LintCache

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Za-z0-9, ]+))?")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9, ]+)")

PARSE_ERROR_CODE = "RPL900"
"""Pseudo-rule reported when a file cannot be parsed at all."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity, used for baseline matching.

        Moving a grandfathered finding around a file must not resurrect
        it, so the fingerprint is (rule, file, message) -- the same
        scheme ruff and pylint baselines use.
        """
        return (self.code, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """One parsed source file plus the derived facts rules share."""

    def __init__(self, path: str, source: str, module: str | None = None) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.module = module if module is not None else module_name_of(path)
        self.tree = ast.parse(source, filename=path)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._type_checking: set[int] | None = None
        self._imports: dict[str, str] | None = None
        self._suppressions = self._parse_suppressions()

    # -- suppression -----------------------------------------------------------

    def _parse_suppressions(self) -> dict[int, set[str] | None]:
        """Map line number -> suppressed codes (None = all rules)."""
        table: dict[int, set[str] | None] = {}
        file_wide: set[str] = set()
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                file_wide.update(
                    code.strip().upper()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None:
                table[number] = None
            else:
                table[number] = {
                    code.strip().upper() for code in codes.split(",") if code.strip()
                }
        self._file_wide = file_wide
        return table

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on ``line`` (or file-wide)."""
        if code in self._file_wide:
            return True
        codes = self._suppressions.get(line, ...)
        if codes is ...:
            return False
        return codes is None or code in codes

    # -- derived AST facts -----------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for inner in ast.iter_child_nodes(outer):
                    self._parents[inner] = outer
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parents of ``node``, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def type_checking_lines(self) -> set[int]:
        """Lines inside ``if TYPE_CHECKING:`` blocks (type-only imports)."""
        if self._type_checking is None:
            lines: set[int] = set()
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.If):
                    continue
                test = dotted_name(node.test)
                if test in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                    for child in node.body:
                        end = child.end_lineno or child.lineno
                        lines.update(range(child.lineno, end + 1))
            self._type_checking = lines
        return self._type_checking

    def import_map(self) -> dict[str, str]:
        """Local name -> dotted origin for every top-level-ish import.

        ``import time`` maps ``time -> time``; ``from datetime import
        datetime as dt`` maps ``dt -> datetime.datetime``; aliased
        module imports map the alias to the real module path, which is
        how aliased substrate imports stay visible to RPL001-style
        rules.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        table[local] = alias.name if alias.asname else local
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    base = node.module or ""
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        table[local] = f"{base}.{alias.name}" if base else alias.name
            self._imports = table
        return self._imports

    def resolve_dotted(self, node: ast.AST) -> str | None:
        """Dotted path of an expression, import aliases substituted.

        ``dt.now`` resolves to ``datetime.datetime.now`` when ``dt``
        came from ``from datetime import datetime as dt``.
        """
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        origin = self.import_map().get(head)
        if origin is None or origin == head:
            return raw
        return f"{origin}.{rest}" if rest else origin

    def enclosing_functions(self, node: ast.AST) -> list[ast.AST]:
        """Enclosing function defs, innermost first."""
        return [
            anc
            for anc in self.ancestors(node)
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def scope_assignments(self, node: ast.AST) -> dict[str, ast.expr]:
        """Simple ``name = expr`` assignments visible from ``node``.

        Walks the enclosing function scopes (innermost first, first
        binding wins) so a guard flag like ``charged = engine.supports(
        CAP_PAGE_COSTS)`` can be traced from an ``if charged:`` test in
        a nested closure.
        """
        table: dict[str, ast.expr] = {}
        scopes: list[ast.AST] = [*self.enclosing_functions(node), self.tree]
        for scope in scopes:
            for statement in ast.walk(scope):
                if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                    target = statement.targets[0]
                    if isinstance(target, ast.Name) and target.id not in table:
                        table[target.id] = statement.value
                elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                    target = statement.target
                    if isinstance(target, ast.Name) and target.id not in table:
                        table[target.id] = statement.value
        return table


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``ctx.engine`` -> engine)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_name_of(path: str) -> str:
    """Best-effort dotted module for a file path.

    Anchors on the last ``repro`` path component, so both
    ``src/repro/core/base.py`` and an absolute path resolve to
    ``repro.core.base``.  Files outside the package fall back to their
    stem, which is what the fixture tests rely on.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else ""


class Rule:
    """Base class of all lint rules.

    Subclasses set ``code``/``name``/``summary``, may override
    :meth:`configure` to accept per-rule options (from
    ``[tool.repro-lint.<code>]`` in pyproject or from tests), and
    implement :meth:`check`.
    """

    code: str = "RPL000"
    name: str = "abstract"
    summary: str = ""

    def configure(self, options: dict[str, object]) -> None:
        """Apply per-rule configuration; unknown keys raise."""
        for key, value in options.items():
            attr = key.replace("-", "_")
            if not hasattr(self, attr):
                raise ValueError(f"{self.code}: unknown option {key!r}")
            setattr(self, attr, value)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses ------------------------------------------------

    def applies_to(self, module: str, prefixes: Sequence[str]) -> bool:
        """Whether ``module`` falls under any of the scope prefixes.

        The empty prefix matches everything (used by fixture tests to
        force a scoped rule onto arbitrary files).
        """
        return any(
            not prefix or module == prefix or module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0


def collect_files(paths: Sequence[str]) -> list[Path]:
    """Expand the given paths into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_source(
    source: str,
    rules: Sequence[Rule],
    path: str = "<string>",
    module: str | None = None,
    stats: LintResult | None = None,
) -> list[Finding]:
    """Lint one in-memory source string (the unit-test entry point)."""
    try:
        ctx = FileContext(path, source, module=module)
    except SyntaxError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.line, finding.code):
                if stats is not None:
                    stats.suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    baseline: set[tuple[str, str, str]] | None = None,
    cache: "LintCache | None" = None,
) -> LintResult:
    """Lint a file set; baseline fingerprints are subtracted, not shown.

    With a ``cache``, files whose content hash matches a prior run are
    served from it.  Cached entries hold *pre-baseline* findings and
    the file's suppression count, so baseline changes apply instantly.
    """
    result = LintResult()
    for file_path in collect_files(paths):
        try:
            raw = file_path.read_bytes()
            source = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=str(file_path),
                    line=1,
                    col=1,
                    message=f"file cannot be read: {exc}",
                )
            )
            continue
        result.files += 1
        findings: list[Finding] | None = None
        if cache is not None:
            hit = cache.lookup(str(file_path), raw)
            if hit is not None:
                findings, suppressed = hit
                result.suppressed += suppressed
        if findings is None:
            per_file = LintResult()
            findings = lint_source(
                source, rules, path=str(file_path), stats=per_file
            )
            result.suppressed += per_file.suppressed
            if cache is not None:
                cache.store(
                    str(file_path), raw, findings, per_file.suppressed
                )
        for finding in findings:
            if baseline and finding.fingerprint() in baseline:
                result.baselined += 1
                continue
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
