"""repro-lint: AST-based invariant analysis for this repository.

The reproduction rests on invariants that ordinary linters cannot see:
algorithm code must stay behind the :class:`~repro.storage.engine.
StorageEngine` seam, every code path must be bit-deterministic (the
parallel engine, ``--resume`` and the engine-parity goldens all depend
on it), page-cost bookkeeping must be guarded by ``CAP_*`` capability
checks, counters must flow through the sanctioned
:class:`~repro.metrics.counters.MetricSet` fold API, and the journal
and sink write paths must flush + fsync.  ``repro-lint`` walks the
parsed AST of a file set and enforces exactly those rules:

========  ==================================================================
RPL001    seam isolation -- no substrate imports outside ``repro/storage/``
RPL002    determinism hygiene -- no wall clock, unseeded RNG or
          unordered set iteration on deterministic paths
RPL003    counter discipline -- counter writes go through the MetricSet API
RPL004    capability guards -- page-cost/pinning engine hooks are dominated
          by a ``CAP_*`` check
RPL005    exception hygiene -- no bare/swallowed ``except`` on chaos paths
RPL006    fsync discipline -- journal/sink writes flush and fsync
RPL007    scale hygiene -- whole-graph sweeps must not rebuild per-node
          Python containers the CSR core retired
RPL008    resource lifecycle -- flow-sensitive: every pin/handle acquire
          is released on every path out, exception edges included
RPL009    async hygiene -- no blocking calls, un-awaited coroutines or
          dropped task results inside serve-path ``async def``
RPL010    fork safety -- pool-submitted callables carry no live
          resources; worker-read module state has a reset hook
========  ==================================================================

RPL008-010 run on an intra-procedural CFG (:mod:`repro.lint.cfg`) with
a gen/kill dataflow solver (:mod:`repro.lint.dataflow`).

Run it as ``python -m repro.lint [paths]`` or via the ``repro-lint``
console script.  Findings can be suppressed inline with
``# repro-lint: disable=RPL001`` (or ``disable`` for all rules) on the
offending line, or grandfathered wholesale in a JSON baseline file
(``--baseline``).  See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.framework import FileContext, Finding, Rule, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, make_rules

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_rules",
    "write_baseline",
]
