"""Checksummed LRU result cache with single-flight coalescing.

The serve layer memoises query results (``reachable``/``successors``)
in a bounded LRU.  Two robustness properties distinguish this from a
plain ``functools.lru_cache``:

* **Entries are checksummed.**  Every stored value carries a CRC of
  its canonical JSON form, verified on *every* hit.  A corrupted entry
  -- the chaos plane's ``poisoned-cache-entry`` fault tampers values
  in place, exactly like a stray write or a bit flip would -- fails
  verification, is evicted, and the query recomputes from the index.
  A poisoned cache can therefore cost latency, never correctness.
* **In-flight queries coalesce.**  Concurrent identical queries share
  one computation: the first caller installs an ``asyncio`` future,
  the rest await it (single-flight).  Failures propagate to every
  waiter and are not cached.

The cache never stores exceptions and never returns a value that did
not just pass its checksum.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from collections import OrderedDict
from collections.abc import Awaitable, Callable, Hashable
from typing import Any

from repro.chaos.faults import FaultKind, active_plan


def _checksum(value: Any) -> int:
    """CRC32 of the value's canonical JSON form (JSON-safe values only)."""
    return zlib.crc32(
        json.dumps(value, separators=(",", ":"), sort_keys=True).encode()
    )


def _tamper(value: Any) -> Any:
    """A plausibly-corrupted variant of ``value`` (never equal to it)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, list):
        return [*value, -1] if value else [-1]
    if isinstance(value, int):
        return value ^ 1
    return f"{value}\x00"


class ResultCache:
    """Bounded LRU of JSON-safe query results, verified on read."""

    def __init__(self, size: int = 1024) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.size = size
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._inflight: dict[Hashable, asyncio.Future[Any]] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.poison_detected = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """``(True, value)`` on a verified hit, ``(False, None)`` otherwise.

        A checksum mismatch counts as detected poison: the entry is
        dropped and the lookup reports a miss, so the caller recomputes
        from the authoritative index.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        value, stored_sum = entry
        if _checksum(value) != stored_sum:
            del self._entries[key]
            self.poison_detected += 1
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` (this is the poisoned-cache-entry fault site).

        When the fault fires, the *stored* value is tampered while the
        checksum stays that of the correct value -- modelling in-place
        memory corruption.  The next :meth:`get` must detect it.
        """
        if self.size == 0:
            return
        checksum = _checksum(value)
        plan = active_plan()
        if plan is not None and plan.fire(FaultKind.POISON_CACHE) is not None:
            value = _tamper(value)
        self._entries[key] = (value, checksum)
        self._entries.move_to_end(key)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)
            self.evictions += 1

    async def get_or_compute(
        self, key: Hashable, supplier: Callable[[], Awaitable[Any]]
    ) -> Any:
        """A verified cached value, or ``supplier()`` with single-flight.

        Identical concurrent keys share one ``supplier`` call; its
        failure propagates to every waiter and caches nothing.
        """
        hit, value = self.get(key)
        if hit:
            return value
        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            return await asyncio.shield(pending)
        future: asyncio.Future[Any] = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            value = await supplier()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            # The waiters consume the exception; nobody else will.
            future.exception()
            raise
        else:
            self.put(key, value)
            if not future.done():
                future.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)

    def clear(self) -> None:
        """Drop every cached entry (index refreshes invalidate results)."""
        self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """JSON-safe counters for telemetry and the stats endpoint."""
        return {
            "entries": len(self._entries),
            "capacity": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "poison_detected": self.poison_detected,
            "evictions": self.evictions,
        }
