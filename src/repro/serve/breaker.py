"""Circuit breaker guarding the serve layer's index (re)builds.

Classic three-state breaker (Nygard, *Release It!*), sized for one
protected operation: rebuilding the frozen
:class:`~repro.core.chains.ChainIndex` through the storage engine.

* ``closed`` -- healthy: every rebuild attempt is allowed; consecutive
  failures are counted.
* ``open`` -- tripped after ``threshold`` consecutive failures: rebuild
  attempts are refused outright (no storage traffic at all) while
  queries keep flowing to the last-good index, until ``reset_after``
  seconds pass.
* ``half-open`` -- the cool-down elapsed: exactly one probe attempt is
  let through.  Success closes the breaker; failure re-opens it and
  restarts the cool-down.

The clock is injectable so chaos tests drive open -> half-open -> closed
transitions deterministically, without sleeping.
"""

from __future__ import annotations

import enum
import time
from collections.abc import Callable


class BreakerState(enum.Enum):
    """The observable breaker states (``/readyz`` reports these)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a monotonic-clock cool-down."""

    def __init__(
        self,
        threshold: int = 3,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_after < 0:
            raise ValueError(f"reset_after must be >= 0, got {reset_after}")
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0
        """How many times the breaker has tripped closed -> open."""

    @property
    def state(self) -> BreakerState:
        """Current state, accounting for an elapsed cool-down."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures since the last success."""
        return self._failures

    def allow(self) -> bool:
        """Whether a protected attempt may proceed right now.

        In ``half-open`` the single probe is granted here (and the
        state only leaves ``half-open`` through :meth:`record_success`
        / :meth:`record_failure`, so concurrent callers racing this
        method still converge -- the serve layer additionally
        serialises rebuilds under a lock).
        """
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        """A protected attempt succeeded: close and reset the count."""
        self._state = BreakerState.CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        """A protected attempt failed: count it; trip at the threshold.

        A failed ``half-open`` probe re-opens immediately and restarts
        the cool-down.
        """
        self._failures += 1
        tripped = (
            self._state is BreakerState.HALF_OPEN
            or self._failures >= self.threshold
        )
        if tripped and self._state is not BreakerState.OPEN:
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self.trips += 1

    def snapshot(self) -> dict[str, object]:
        """JSON-safe state for health endpoints and telemetry."""
        return {
            "state": self.state.value,
            "failures": self._failures,
            "threshold": self.threshold,
            "trips": self.trips,
        }
