"""Deterministic jittered-exponential-backoff retry, shared repo-wide.

Two callers need the exact same policy: the parallel experiment
engine's unit retries (:mod:`repro.experiments.parallel`, where the
inline implementation originally lived) and the serve layer's index
(re)build loop (:mod:`repro.serve.service`).  Extracting it here keeps
one tested implementation of the delay formula::

    delay(attempt) = base * 2**(attempt - 2) * (0.5 + rng.random())

for retry attempts numbered from 2 (attempt 1 is the original try).
The jitter is drawn from a dedicated ``random.Random`` seeded at
construction, so a given policy instance produces the same delay
sequence on every run -- retries are as deterministic as everything
else in this repo.  A ``base`` of zero disables sleeping (and draws no
jitter, so arming retries never perturbs another consumer's stream).
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from typing import TypeVar

DEFAULT_BACKOFF_BASE = 0.05
"""Base delay (seconds) of the jittered exponential retry backoff."""

DEFAULT_BACKOFF_SEED = 0x5EED
"""Historical fixed seed of the experiment engine's jitter stream."""

T = TypeVar("T")


class BackoffPolicy:
    """Deterministic jittered exponential backoff delays.

    ``delay(attempt)`` is the pause *before* retry ``attempt`` (>= 2);
    each call advances the policy's private jitter stream, exactly like
    the inline implementation this replaces.  ``max_delay`` optionally
    caps the exponential growth (long-lived servers should not sleep
    unboundedly between index rebuild attempts).
    """

    def __init__(
        self,
        base: float = DEFAULT_BACKOFF_BASE,
        seed: int = DEFAULT_BACKOFF_SEED,
        max_delay: float | None = None,
    ) -> None:
        if base < 0:
            raise ValueError(f"backoff base must be >= 0, got {base}")
        if max_delay is not None and max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.base = base
        self.max_delay = max_delay
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Seconds to pause before retry ``attempt`` (the 2nd try is 2)."""
        if self.base <= 0:
            return 0.0
        delay = self.base * (2 ** (attempt - 2)) * (0.5 + self._rng.random())
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay


def retry_call(
    fn: Callable[[], T],
    *,
    retries: int,
    policy: BackoffPolicy,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = Exception,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` with up to ``retries`` retried attempts.

    Sleeps ``policy.delay(attempt)`` before each retry; ``on_retry``
    (if given) observes every failed-then-retried attempt.  The final
    failure propagates unchanged, so callers keep the real exception.
    ``sleep`` is injectable for tests (and for event loops that must
    not block: the serve layer passes a collector and awaits the delays
    itself).
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 1
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt > retries:
                raise
            attempt += 1
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
