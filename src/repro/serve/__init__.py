"""Resilient reachability query serving.

The serve layer turns the frozen chain-decomposition index
(:mod:`repro.core.chains`) into a long-running query service with an
explicit robustness contract -- deadlines, bounded admission with load
shedding, breaker-guarded index rebuilds with stale-while-revalidate
degradation, and a checksummed single-flight result cache.  See
``docs/ROBUSTNESS.md`` ("Serving and degradation modes") for the
behaviour table, and :mod:`repro.serve.service` for the core.

Submodules:

* :mod:`repro.serve.service` -- :class:`ReachabilityService`, config,
  telemetry, admission, degradation states;
* :mod:`repro.serve.http` -- stdlib asyncio HTTP/1.1 server (TCP or
  UNIX-domain socket) and the matching test/bench client;
* :mod:`repro.serve.retry` -- the shared deterministic jittered
  exponential backoff (also used by :mod:`repro.experiments.parallel`);
* :mod:`repro.serve.breaker` -- the three-state circuit breaker;
* :mod:`repro.serve.cache` -- checksummed LRU with single-flight;
* :mod:`repro.serve.validate` -- request/probe validation shared with
  the CLIs.
"""

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.http import ServeClient, ServeServer
from repro.serve.retry import BackoffPolicy, retry_call
from repro.serve.service import (
    DeadlineExceededError,
    IndexUnavailableError,
    InvalidRequestError,
    OverloadedError,
    ReachabilityService,
    ServeConfig,
    ServeTelemetry,
)

__all__ = [
    "BackoffPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineExceededError",
    "IndexUnavailableError",
    "InvalidRequestError",
    "OverloadedError",
    "ReachabilityService",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "ServeTelemetry",
    "retry_call",
]
