"""The resilient reachability query service.

:class:`ReachabilityService` owns one frozen
:class:`~repro.core.chains.ChainIndex` built (through any registered
storage engine) from a graph at startup, and answers
``reachable(u, v)`` / ``successors(u)`` / batch queries from it.  The
robustness layer is the point:

* **Deadlines.**  Every request runs under a deadline (default
  :attr:`ServeConfig.deadline_ms`, per-request override) with
  cooperative cancellation: batch handlers re-check the deadline
  between items, and an expired deadline yields a structured timeout,
  never a half-answer.
* **Bounded admission + load shedding.**  At most
  :attr:`ServeConfig.max_concurrency` requests execute concurrently;
  waiters queue up to :attr:`ServeConfig.max_queue` deep.  Beyond that
  -- or once the estimated wait (queue depth x observed mean latency)
  exceeds :attr:`ServeConfig.max_wait_ms` -- requests are shed
  *immediately* with :class:`OverloadedError` carrying a
  ``Retry-After`` hint, so overload degrades into fast, honest 503s
  instead of collapse.
* **Retried, breaker-guarded rebuilds.**  Index (re)builds run in a
  worker thread (queries keep flowing), are retried with the shared
  deterministic :class:`~repro.serve.retry.BackoffPolicy`, and sit
  behind a :class:`~repro.serve.breaker.CircuitBreaker`.  While the
  breaker is open, queries are served from the **last-good** index with
  ``degraded: true`` (stale-while-revalidate); the breaker's cool-down
  gates the next probe.
* **Verified caching.**  Results memoise in a checksummed LRU with
  single-flight coalescing (:class:`~repro.serve.cache.ResultCache`);
  poisoned entries are detected and recomputed, never served.

Telemetry (latency, queue depth, shed/retry/breaker counters) is kept
per-service and exports both as a ``/stats`` snapshot and as a
:class:`~repro.obs.record.RunRecord` for the existing obs pipeline.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from collections.abc import AsyncIterator, Callable
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Any

from repro.chaos.faults import FaultKind, active_plan
from repro.core.chains import ChainIndex, build_chain_index
from repro.core.query import SystemConfig
from repro.errors import InjectedRebuildError, ReproError
from repro.graphs.digraph import Digraph
from repro.obs.record import RunRecord, system_config_dict
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.retry import BackoffPolicy
from repro.serve.validate import parse_node_id


class OverloadedError(ReproError):
    """The admission queue is full (or too slow): request shed.

    ``retry_after`` is the server's estimate (seconds) of when capacity
    returns; the HTTP layer maps this to ``503`` + ``Retry-After``.
    """

    def __init__(self, detail: str, retry_after: float) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class IndexUnavailableError(ReproError):
    """No index has ever been built: the service cannot answer yet."""


class InvalidRequestError(ReproError):
    """A request is syntactically or semantically malformed (HTTP 400)."""


class DeadlineExceededError(ReproError):
    """The request's deadline expired before an answer was produced."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the serving robustness layer (all have safe defaults)."""

    deadline_ms: float = 1000.0
    """Default per-request deadline; requests may lower (or raise) it."""

    max_concurrency: int = 8
    """Requests executing concurrently; the rest wait in the queue."""

    max_queue: int = 64
    """Waiting requests beyond which new arrivals are shed outright."""

    max_wait_ms: float = 250.0
    """Shed when queue depth x observed mean latency exceeds this."""

    cache_size: int = 4096
    """LRU result-cache capacity (0 disables caching)."""

    breaker_threshold: int = 3
    """Consecutive failed build attempts that trip the breaker."""

    breaker_reset_s: float = 2.0
    """Cool-down before a half-open rebuild probe is allowed."""

    build_retries: int = 2
    """Retried attempts per rebuild request (on top of the first try)."""

    backoff_base_s: float = 0.05
    """Base of the shared jittered exponential rebuild backoff."""

    backoff_max_s: float = 2.0
    """Cap on any single rebuild backoff sleep."""

    refine: bool = True
    """Run the chain-concatenation refinement pass during builds."""

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")


class ServeTelemetry:
    """Per-service counters and a bounded latency reservoir."""

    COUNTERS = (
        "requests",
        "answered",
        "degraded_answers",
        "shed",
        "deadline_timeouts",
        "cancelled",
        "invalid_requests",
        "unavailable",
        "errors",
        "rebuilds",
        "rebuild_failures",
        "rebuild_retries",
        "breaker_refusals",
    )

    def __init__(self, latency_window: int = 65536) -> None:
        self._counts: dict[str, int] = dict.fromkeys(self.COUNTERS, 0)
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self.queue_depth_peak = 0

    def bump(self, name: str, n: int = 1) -> None:
        """Increment one named counter (must be pre-declared)."""
        self._counts[name] += n

    def count(self, name: str) -> int:
        """Current value of one named counter."""
        return self._counts[name]

    def observe_latency(self, seconds: float) -> None:
        """Record one served request's latency."""
        self._latencies.append(seconds)

    def observe_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the admission queue."""
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def mean_latency(self) -> float:
        """Mean observed latency in seconds (0.0 before any sample)."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def latency_percentile(self, pct: float) -> float:
        """The ``pct``-th latency percentile (nearest-rank, seconds)."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1, round(pct / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe counters plus latency percentiles (milliseconds)."""
        return {
            **self._counts,
            "latency_samples": len(self._latencies),
            "latency_mean_ms": round(self.mean_latency() * 1e3, 4),
            "latency_p50_ms": round(self.latency_percentile(50) * 1e3, 4),
            "latency_p99_ms": round(self.latency_percentile(99) * 1e3, 4),
            "queue_depth_peak": self.queue_depth_peak,
        }


class ReachabilityService:
    """Queries over a breaker-guarded, cache-fronted frozen index."""

    def __init__(
        self,
        graph: Digraph,
        sources: list[int] | None = None,
        system: SystemConfig | None = None,
        config: ServeConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.graph = graph
        self.sources = list(sources) if sources is not None else None
        self.system = system if system is not None else SystemConfig()
        self.config = config if config is not None else ServeConfig()
        self.clock = clock
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset_s,
            clock=clock,
        )
        self.cache = ResultCache(self.config.cache_size)
        self.telemetry = ServeTelemetry()
        self.backoff = BackoffPolicy(
            base=self.config.backoff_base_s, max_delay=self.config.backoff_max_s
        )
        self.last_build_error: str | None = None
        self._index: ChainIndex | None = None
        self._build_lock = asyncio.Lock()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._waiting = 0

    # -- index lifecycle ------------------------------------------------------

    @property
    def index(self) -> ChainIndex | None:
        """The current (possibly stale-but-last-good) frozen index."""
        return self._index

    def _build_index_sync(self) -> ChainIndex:
        """One build attempt (runs in a worker thread).

        This is the ``index-rebuild-crash`` chaos site: an armed plan
        can crash any attempt, which is what drives the retry loop and
        the breaker in the chaos suite.
        """
        plan = active_plan()
        if plan is not None:
            event = plan.fire(FaultKind.REBUILD_CRASH)
            if event is not None:
                raise InjectedRebuildError(
                    f"injected index-rebuild crash "
                    f"(chaos opportunity {event.opportunity})"
                )
        return build_chain_index(
            self.graph, self.sources, self.system, refine=self.config.refine
        )

    async def build(self) -> bool:
        """One breaker-guarded, retried (re)build; ``True`` on success.

        Runs in a worker thread so in-flight queries keep being served
        from the last-good index while the build is in progress
        (stale-while-revalidate).  Never raises: failures feed the
        breaker and leave the previous index in place.
        """
        async with self._build_lock:
            if not self.breaker.allow():
                self.telemetry.bump("breaker_refusals")
                return False
            loop = asyncio.get_running_loop()
            attempt = 1
            while True:
                try:
                    index = await loop.run_in_executor(None, self._build_index_sync)
                except Exception as exc:
                    self.telemetry.bump("rebuild_failures")
                    self.breaker.record_failure()
                    self.last_build_error = f"{type(exc).__name__}: {exc}"
                    if attempt > self.config.build_retries or not self.breaker.allow():
                        return False
                    attempt += 1
                    self.telemetry.bump("rebuild_retries")
                    await asyncio.sleep(self.backoff.delay(attempt))
                else:
                    self._index = index
                    self.cache.clear()
                    self.breaker.record_success()
                    self.telemetry.bump("rebuilds")
                    self.last_build_error = None
                    return True

    # -- health ---------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Serving from the last-good index while rebuilds are failing."""
        return self._index is not None and self.breaker.state is not BreakerState.CLOSED

    @property
    def state(self) -> str:
        """``ready`` / ``degraded`` / ``unready`` (what ``/readyz`` reports)."""
        if self._index is None:
            return "unready"
        return "degraded" if self.degraded else "ready"

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an execution slot."""
        return self._waiting

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` body: liveness plus component state."""
        return {
            "status": "ok",
            "state": self.state,
            "breaker": self.breaker.snapshot(),
            "index": None
            if self._index is None
            else {
                "k": self._index.k,
                "nodes": len(self._index.vectors),
                "num_nodes": self._index.num_nodes,
                "condensed": self._index.condensed,
            },
            "last_build_error": self.last_build_error,
            "queue_depth": self.queue_depth,
        }

    # -- admission ------------------------------------------------------------

    @asynccontextmanager
    async def admitted(self) -> AsyncIterator[None]:
        """Bounded admission: queue, or shed with a retry hint.

        Shedding is decided *before* waiting -- a doomed request gets
        its 503 in microseconds, which is the whole point of
        backpressure -- using two budgets: absolute queue depth, and
        estimated wait derived from the observed mean latency.
        """
        depth = self._waiting
        self.telemetry.observe_queue_depth(depth)
        would_wait = self._semaphore.locked()
        estimated_wait = (depth + 1) * self.telemetry.mean_latency()
        if would_wait and depth >= self.config.max_queue:
            self.telemetry.bump("shed")
            raise OverloadedError(
                f"admission queue full ({depth} waiting)",
                retry_after=max(0.05, estimated_wait),
            )
        if would_wait and estimated_wait > self.config.max_wait_ms / 1e3:
            self.telemetry.bump("shed")
            raise OverloadedError(
                f"estimated wait {estimated_wait * 1e3:.0f}ms exceeds "
                f"budget {self.config.max_wait_ms:g}ms",
                retry_after=estimated_wait,
            )
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        try:
            yield
        finally:
            self._semaphore.release()

    # -- the query handlers ---------------------------------------------------

    async def _handler_faults(self) -> None:
        """The serve-site chaos faults that hit every request handler."""
        plan = active_plan()
        if plan is None:
            return
        event = plan.fire(FaultKind.SLOW_HANDLER)
        if event is not None:
            await asyncio.sleep(event.params.get("ms", 1.0) / 1e3)
        event = plan.fire(FaultKind.CANCEL_REQUEST)
        if event is not None:
            raise asyncio.CancelledError(
                f"injected request cancellation "
                f"(chaos opportunity {event.opportunity})"
            )

    def _require_index(self) -> ChainIndex:
        index = self._index
        if index is None:
            self.telemetry.bump("unavailable")
            raise IndexUnavailableError(
                "no reachability index is available yet"
                + (f" (last build error: {self.last_build_error})"
                   if self.last_build_error else "")
            )
        return index

    async def reachable(self, u: object, v: object) -> dict[str, Any]:
        """One ``reachable(u, v)`` answer with the ``degraded`` flag."""
        index = self._require_index()
        src = parse_node_id(u, index.num_nodes, name="u")
        dst = parse_node_id(v, index.num_nodes, name="v")
        await self._handler_faults()

        async def compute() -> bool:
            return bool(index.reachable(src, dst))

        value = await self.cache.get_or_compute(("r", src, dst), compute)
        return {"reachable": value, "degraded": self.degraded}

    async def successors(self, u: object) -> dict[str, Any]:
        """All nodes reachable from ``u`` plus the ``degraded`` flag."""
        index = self._require_index()
        src = parse_node_id(u, index.num_nodes, name="u")
        await self._handler_faults()

        async def compute() -> list[int]:
            return list(index.successors(src))

        value = await self.cache.get_or_compute(("s", src), compute)
        return {"successors": value, "degraded": self.degraded}

    async def batch(
        self, queries: list[dict[str, Any]], deadline_at: float | None = None
    ) -> dict[str, Any]:
        """Answer a list of queries under one (cooperative) deadline.

        The deadline is re-checked between items, so an over-budget
        batch fails fast with a structured timeout instead of holding
        its execution slot to the bitter end.
        """
        if not isinstance(queries, list):
            raise InvalidRequestError("batch body must carry a 'queries' list")
        results: list[dict[str, Any]] = []
        for position, query in enumerate(queries):
            if deadline_at is not None and self.clock() > deadline_at:
                raise DeadlineExceededError(
                    f"deadline expired after {position} of {len(queries)} "
                    f"batch items"
                )
            if position % 64 == 0:
                await asyncio.sleep(0)  # cooperative: let cancellation land
            if not isinstance(query, dict):
                raise InvalidRequestError(
                    f"batch item {position} must be an object, got {query!r}"
                )
            op = query.get("op", "reachable")
            if op == "reachable":
                answer = await self.reachable(query.get("u"), query.get("v"))
                results.append({"reachable": answer["reachable"]})
            elif op == "successors":
                answer = await self.successors(query.get("u"))
                results.append({"successors": answer["successors"]})
            else:
                raise InvalidRequestError(
                    f"batch item {position}: unknown op {op!r} "
                    f"(valid ops: reachable, successors)"
                )
        return {"results": results, "degraded": self.degraded}

    # -- telemetry export -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` body: telemetry + cache + breaker + queue."""
        return {
            **self.telemetry.snapshot(),
            "queue_depth": self.queue_depth,
            "cache": self.cache.snapshot(),
            "breaker": self.breaker.snapshot(),
            "state": self.state,
        }

    def to_run_record(self, workload: dict[str, Any] | None = None) -> RunRecord:
        """Fold the serve telemetry into the obs RunRecord pipeline.

        The record rides the existing JSONL sinks and compare tooling:
        ``algorithm`` is ``"serve"``, the metrics dict carries the serve
        counters and latency percentiles, and the build cost of the
        current index (when one exists) contributes ``total_io`` so
        engine choice shows up in the trajectory.
        """
        metrics: dict[str, Any] = dict(self.stats())
        index = self._index
        metrics["total_io"] = index.metrics.total_io if index is not None else 0
        if index is not None:
            metrics["index_k"] = index.k
            metrics["index_nodes"] = len(index.vectors)
        return RunRecord(
            algorithm="serve",
            workload=dict(workload or {}),
            query={"kind": "serve", "selectivity": None
                   if self.sources is None else len(self.sources)},
            system=system_config_dict(self.system),
            metrics=metrics,
        )
