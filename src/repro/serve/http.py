"""Minimal asyncio HTTP/1.1 front end for the reachability service.

One hand-rolled server (stdlib only -- no web framework in the image)
exposing :class:`~repro.serve.service.ReachabilityService` over TCP or
a UNIX-domain socket, plus the matching :class:`ServeClient` used by
the tests, the benchmark, and ``repro serve --self-check``.

Routes::

    GET  /reachable?u=U&v=V[&deadline_ms=D]   -> {"reachable": bool, "degraded": bool}
    GET  /successors?u=U[&deadline_ms=D]      -> {"successors": [...], "degraded": bool}
    POST /batch                                -> {"results": [...], "degraded": bool}
    GET  /healthz                              -> 200 always (liveness + component state)
    GET  /readyz                               -> 200 "ready" | 503 "degraded" | 503 "unready"
    GET  /stats                                -> telemetry snapshot
    POST /refresh                              -> trigger one breaker-guarded rebuild

Error contract -- every failure is a *structured* JSON answer, never a
traceback and never a wrong value:

* 400 -- malformed request (bad node id, bad JSON, unknown op)
* 404/405 -- unknown path / wrong method
* 503 + ``Retry-After`` -- load shed by bounded admission
* 503 -- no index available yet (initial build still failing)
* 504 -- per-request deadline expired (queue wait counts against it)

An injected ``cancelled-request`` fault aborts the one in-flight
request and drops its connection -- the server itself keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import InvalidNodeError
from repro.serve.service import (
    DeadlineExceededError,
    IndexUnavailableError,
    InvalidRequestError,
    OverloadedError,
    ReachabilityService,
)

MAX_REQUEST_BYTES = 1 << 20
"""Reject request bodies larger than this (1 MiB): bounded memory."""

_QUERY_ROUTES = {("GET", "/reachable"), ("GET", "/successors"), ("POST", "/batch")}


def _first(params: dict[str, list[str]], name: str) -> str | None:
    values = params.get(name)
    return values[0] if values else None


class ServeServer:
    """The asyncio HTTP server; bind via TCP ``host:port`` or ``uds`` path."""

    def __init__(
        self,
        service: ReachabilityService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        uds: str | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.uds = uds
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        if self.uds is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.uds
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def endpoint(self) -> str:
        """Human-readable bound address (for logs and the CLI banner)."""
        if self.uds is not None:
            return f"unix:{self.uds}"
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection / request plumbing ----------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    status, payload, extra = await self._dispatch(method, target, body)
                except asyncio.CancelledError:
                    # An injected cancelled-request fault (or a genuine
                    # shutdown) killed this request mid-flight: count it,
                    # drop the connection, never emit a partial answer.
                    self.service.telemetry.bump("cancelled")
                    break
                self._write_response(writer, status, payload, extra, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels idle connection tasks; exit quietly.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_REQUEST_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 503: "Service Unavailable",
                   504: "Gateway Timeout"}
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    # -- routing --------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        split = urlsplit(target)
        path = split.path
        params = parse_qs(split.query)

        if path == "/healthz":
            return 200, self.service.health(), {}
        if path == "/readyz":
            state = self.service.state
            return (200 if state == "ready" else 503), {"state": state}, {}
        if path == "/stats":
            return 200, self.service.stats(), {}
        if path == "/refresh" and method == "POST":
            rebuilt = await self.service.build()
            return 200, {"rebuilt": rebuilt, "state": self.service.state}, {}

        known_paths = {"/reachable", "/successors", "/batch"}
        if path not in known_paths:
            return 404, {"error": f"unknown path {path!r}"}, {}
        if (method, path) not in _QUERY_ROUTES:
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return await self._dispatch_query(method, path, params, body)

    async def _dispatch_query(
        self, method: str, path: str, params: dict[str, list[str]], body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        service = self.service
        service.telemetry.bump("requests")
        started = time.perf_counter()
        deadline_ms = service.config.deadline_ms
        raw_deadline = _first(params, "deadline_ms")
        try:
            if raw_deadline is not None:
                deadline_ms = float(raw_deadline)
                if deadline_ms <= 0:
                    raise InvalidRequestError(
                        f"deadline_ms must be > 0, got {raw_deadline!r}"
                    )
            payload = await asyncio.wait_for(
                self._run_query(path, params, body, deadline_ms),
                timeout=deadline_ms / 1e3,
            )
        except (InvalidNodeError, InvalidRequestError, json.JSONDecodeError) as exc:
            service.telemetry.bump("invalid_requests")
            return 400, {"error": str(exc)}, {}
        except OverloadedError as exc:
            return (
                503,
                {"error": str(exc), "shed": True},
                {"Retry-After": f"{max(0.001, exc.retry_after):.3f}"},
            )
        except IndexUnavailableError as exc:
            return 503, {"error": str(exc)}, {}
        except (DeadlineExceededError, asyncio.TimeoutError) as exc:
            service.telemetry.bump("deadline_timeouts")
            detail = str(exc) or f"deadline of {deadline_ms:g}ms expired"
            return 504, {"error": detail, "deadline_ms": deadline_ms}, {}
        service.telemetry.bump("answered")
        if payload.get("degraded"):
            service.telemetry.bump("degraded_answers")
        service.telemetry.observe_latency(time.perf_counter() - started)
        return 200, payload, {}

    async def _run_query(
        self, path: str, params: dict[str, list[str]], body: bytes, deadline_ms: float
    ) -> dict[str, Any]:
        service = self.service
        async with service.admitted():
            if path == "/reachable":
                return await service.reachable(_first(params, "u"), _first(params, "v"))
            if path == "/successors":
                return await service.successors(_first(params, "u"))
            document = json.loads(body.decode() or "{}")
            if not isinstance(document, dict):
                raise InvalidRequestError("batch body must be a JSON object")
            deadline_at = service.clock() + deadline_ms / 1e3
            return await service.batch(document.get("queries", []), deadline_at)


class ServeClient:
    """Tiny keep-alive HTTP client for the serve endpoints (tests/bench/CLI)."""

    def __init__(
        self, *, host: str = "127.0.0.1", port: int = 0, uds: str | None = None
    ) -> None:
        self.host = host
        self.port = port
        self.uds = uds
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None or self._writer.is_closing():
            if self.uds is not None:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.uds
                )
            else:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
        return self._reader, self._writer

    async def request(
        self, method: str, target: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        """One round-trip; returns ``(status, headers, json_payload)``."""
        payload = (
            json.dumps(body, separators=(",", ":")).encode()
            if body is not None
            else b""
        )
        for attempt in (1, 2):
            reader, writer = await self._connect()
            head = [
                f"{method} {target} HTTP/1.1",
                "Host: repro-serve",
                f"Content-Length: {len(payload)}",
                "Connection: keep-alive",
            ]
            try:
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
                await writer.drain()
                return await self._read_response(reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                # The server drops connections on injected cancellation;
                # reconnect once, then let the failure surface.
                await self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b"{}"
        return status, headers, json.loads(raw.decode() or "{}")

    async def close(self) -> None:
        """Close the kept-alive connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = None
        self._writer = None

    # -- endpoint conveniences -------------------------------------------------

    async def reachable(
        self, u: int, v: int, deadline_ms: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        target = f"/reachable?u={u}&v={v}"
        if deadline_ms is not None:
            target += f"&deadline_ms={deadline_ms:g}"
        status, _, payload = await self.request("GET", target)
        return status, payload

    async def successors(self, u: int) -> tuple[int, dict[str, Any]]:
        status, _, payload = await self.request("GET", f"/successors?u={u}")
        return status, payload

    async def batch(
        self, queries: list[dict[str, Any]], deadline_ms: float | None = None
    ) -> tuple[int, dict[str, Any]]:
        target = "/batch"
        if deadline_ms is not None:
            target += f"?deadline_ms={deadline_ms:g}"
        status, _, payload = await self.request(
            "POST", target, body={"queries": queries}
        )
        return status, payload

    async def get(self, path: str) -> tuple[int, dict[str, Any]]:
        status, _, payload = await self.request("GET", path)
        return status, payload

    async def refresh(self) -> tuple[int, dict[str, Any]]:
        status, _, payload = await self.request("POST", "/refresh")
        return status, payload
