"""Request validation shared by the serve endpoints and the CLIs.

One implementation of "is this a node id?" so the HTTP layer, the
``repro serve`` probes and the ``repro chains`` probes reject malformed
input with the same message shape: a structured error naming the
offending value and the accepted range -- never a traceback.
"""

from __future__ import annotations

from repro.errors import InvalidNodeError


def parse_node_id(raw: object, num_nodes: int, name: str = "node") -> int:
    """Parse and range-check one node id from untrusted input.

    Accepts ints or int-shaped strings; anything else (floats,
    booleans, ``"abc"``, ``"1.5"``) raises :class:`InvalidNodeError`
    naming the parameter, the bad value, and the valid range
    ``0..num_nodes-1``.
    """
    if isinstance(raw, bool) or not isinstance(raw, (int, str)):
        raise InvalidNodeError(
            f"{name} must be an integer node id, got {raw!r}"
        )
    try:
        value = int(raw)
    except ValueError:
        raise InvalidNodeError(
            f"{name} must be an integer node id, got {raw!r}"
        ) from None
    if not 0 <= value < num_nodes:
        raise InvalidNodeError(
            f"{name}={value} is outside the graph's range 0..{num_nodes - 1}"
        )
    return value


def parse_probe(spec: str, num_nodes: int) -> tuple[int, int]:
    """Parse one ``U:V`` probe pair (the CLIs' explicit spot queries)."""
    source, sep, target = spec.partition(":")
    if not sep:
        raise InvalidNodeError(
            f"probe {spec!r} is malformed: expected 'U:V' node-id pair"
        )
    return (
        parse_node_id(source.strip(), num_nodes, name=f"probe {spec!r}: u"),
        parse_node_id(target.strip(), num_nodes, name=f"probe {spec!r}: v"),
    )
