"""Seeded, deterministic fault injection for the storage substrate.

The paper's conclusions rest on the simulated disk behaving exactly as
specified; this module exists to injure that substrate *on purpose* and
check that the system detects the injury instead of silently
mis-counting.  A :class:`FaultPlan` is armed process-wide (CLI
``--chaos <spec>`` or the ``REPRO_CHAOS`` environment variable) and the
instrumented sites -- the buffer pool's physical-read path, the
successor store's block-write path, and the experiment engine's unit
boundary -- ask it whether to fire.  With no plan armed the sites cost
one ``None`` check on a buffer *miss* only; the hit path is untouched.

Fault kinds
-----------

=====================  =============================  ==========================
kind                   site                           effect
=====================  =============================  ==========================
corrupt-read           buffer-pool physical read      raises
                                                      ``CorruptPageReadError``
                                                      (a detected checksum
                                                      failure)
evict-storm            buffer-pool physical read      evicts every unpinned
                                                      resident page (dirty ones
                                                      charge writes)
slow-io                buffer-pool physical read      sleeps ``ms`` milliseconds
torn-write             successor-store block write    raises ``TornWriteError``
crash-unit             experiment-unit start          raises
                                                      ``InjectedCrashError``
slow-handler           serve request handler          handler awaits ``ms``
                                                      milliseconds (deadline
                                                      pressure)
cancelled-request      serve request handler          cancels the in-flight
                                                      request mid-handler
poisoned-cache-entry   serve result-cache insert      tampers the cached value
                                                      (checksum left stale, so
                                                      reads must detect it)
index-rebuild-crash    serve index (re)build          raises
                                                      ``InjectedRebuildError``
=====================  =============================  ==========================

The first five are *storage/experiment* sites wired through the engine
seam; the last four are *serve* sites in :mod:`repro.serve`, above the
seam -- they work on every engine (see :data:`STORAGE_FAULT_KINDS` /
:data:`SERVE_FAULT_KINDS`).

Spec grammar (see ``docs/ROBUSTNESS.md``)::

    spec    ::= clause (";" clause)*
    clause  ::= "seed=" INT | fault ("," param)*
    fault   ::= "corrupt-read" | "evict-storm" | "slow-io"
              | "torn-write"   | "crash-unit"  | "slow-handler"
              | "cancelled-request" | "poisoned-cache-entry"
              | "index-rebuild-crash"
    param   ::= "p=" FLOAT      probability per opportunity (seeded RNG)
              | "after=" INT    fire on the Nth opportunity (1-based)
              | "times=" INT    max firings (default 1 with after=,
                                unlimited with p=)
              | "ms=" FLOAT     slow-io / slow-handler latency per
                                firing (default 1.0)
              | "k=" INT        evict-storm victims (default: all unpinned)

Examples::

    REPRO_CHAOS="corrupt-read,after=100"
    REPRO_CHAOS="seed=7;slow-io,p=0.01,ms=2;evict-storm,p=0.001"
    python -m repro --algorithm btc --family G4 --chaos "torn-write,after=5"

Determinism: each rule draws from its own ``random.Random`` seeded from
``(plan seed, fault kind)``, and ``after=`` counts opportunities, so a
plan fires at the same points of the same (deterministic) execution on
every run.  In multi-process sweeps every worker arms its own plan from
``REPRO_CHAOS`` and counts its own opportunities.
"""

from __future__ import annotations

import enum
import os
import random
import zlib
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

ENV_CHAOS = "REPRO_CHAOS"
"""Environment variable holding a chaos spec to arm at startup."""


class FaultKind(enum.Enum):
    """The injectable fault families, one per instrumented site effect."""

    CORRUPT_READ = "corrupt-read"
    EVICT_STORM = "evict-storm"
    SLOW_IO = "slow-io"
    TORN_WRITE = "torn-write"
    CRASH_UNIT = "crash-unit"
    SLOW_HANDLER = "slow-handler"
    CANCEL_REQUEST = "cancelled-request"
    POISON_CACHE = "poisoned-cache-entry"
    REBUILD_CRASH = "index-rebuild-crash"


SERVE_FAULT_KINDS = frozenset(
    {
        FaultKind.SLOW_HANDLER,
        FaultKind.CANCEL_REQUEST,
        FaultKind.POISON_CACHE,
        FaultKind.REBUILD_CRASH,
    }
)
"""Fault sites in :mod:`repro.serve`, above the storage seam: live on
every engine, including ``fast``."""

STORAGE_FAULT_KINDS = frozenset(FaultKind) - SERVE_FAULT_KINDS
"""Fault sites wired through the paged substrate and the experiment
unit boundary; the fast engine refuses plans that arm these."""


_KINDS = {kind.value: kind for kind in FaultKind}

_PARAM_TYPES = {"p": float, "after": int, "times": int, "ms": float, "k": int}


@dataclass(frozen=True)
class FaultEvent:
    """One fault firing: what fired, at which opportunity, with what params."""

    kind: FaultKind
    opportunity: int
    params: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form, stored in run records and error reports."""
        return {
            "kind": self.kind.value,
            "opportunity": self.opportunity,
            **self.params,
        }


class FaultRule:
    """One armed fault: when (p= / after=) and how often (times=) to fire."""

    def __init__(
        self,
        kind: FaultKind,
        p: float | None = None,
        after: int | None = None,
        times: int | None = None,
        ms: float = 1.0,
        k: int | None = None,
        seed: int = 0,
    ) -> None:
        if p is None and after is None:
            raise ConfigurationError(
                f"fault {kind.value!r} needs a trigger: p=<prob> or after=<n>"
            )
        if p is not None and not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"fault {kind.value!r}: p must be in [0, 1], got {p}"
            )
        if after is not None and after < 1:
            raise ConfigurationError(
                f"fault {kind.value!r}: after must be >= 1, got {after}"
            )
        if ms < 0:
            raise ConfigurationError(f"fault {kind.value!r}: ms must be >= 0, got {ms}")
        if k is not None and k < 1:
            raise ConfigurationError(f"fault {kind.value!r}: k must be >= 1, got {k}")
        self.kind = kind
        self.p = p
        self.after = after
        self.times = times if times is not None else (1 if after is not None else None)
        self.ms = ms
        self.k = k
        # Independent stream per (plan seed, kind): arming an extra
        # fault never perturbs when an existing one fires.  crc32, not
        # hash(): str hashes vary per process (PYTHONHASHSEED) and the
        # firing points must be identical in every worker.
        self._rng = random.Random(zlib.crc32(f"{seed}:{kind.value}".encode()))
        self.opportunities = 0
        self.fired = 0

    def draw(self) -> FaultEvent | None:
        """Register one opportunity; return an event iff the rule fires."""
        self.opportunities += 1
        if self.times is not None and self.fired >= self.times:
            return None
        if self.after is not None:
            if self.opportunities < self.after:
                return None
        elif self._rng.random() >= (self.p or 0.0):
            return None
        self.fired += 1
        params: dict[str, float] = {}
        if self.kind in (FaultKind.SLOW_IO, FaultKind.SLOW_HANDLER):
            params["ms"] = self.ms
        if self.kind is FaultKind.EVICT_STORM and self.k is not None:
            params["k"] = self.k
        return FaultEvent(self.kind, self.opportunities, params)


class FaultPlan:
    """A set of armed fault rules plus the log of what actually fired."""

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0,
                 spec: str = "") -> None:
        self.seed = seed
        self.spec = spec
        self._rules: dict[FaultKind, FaultRule] = {}
        for rule in rules or []:
            if rule.kind in self._rules:
                raise ConfigurationError(
                    f"fault {rule.kind.value!r} armed twice in one plan"
                )
            self._rules[rule.kind] = rule
        self.events: list[FaultEvent] = []

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the chaos spec grammar (see module docstring)."""
        seed = 0
        clauses: list[tuple[FaultKind, dict[str, float | int]]] = []
        for raw_clause in spec.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ConfigurationError(
                        f"chaos spec: bad seed clause {clause!r}"
                    ) from None
                continue
            name, _, params_text = clause.partition(",")
            kind = _KINDS.get(name.strip().lower().replace("_", "-"))
            if kind is None:
                valid = ", ".join(sorted(_KINDS))
                raise ConfigurationError(
                    f"chaos spec: unknown fault {name.strip()!r}; valid faults: {valid}"
                )
            params: dict[str, float | int] = {}
            for item in filter(None, (p.strip() for p in params_text.split(","))):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in _PARAM_TYPES:
                    valid = ", ".join(sorted(_PARAM_TYPES))
                    raise ConfigurationError(
                        f"chaos spec: bad parameter {item!r} for {kind.value!r}; "
                        f"valid parameters: {valid}"
                    )
                try:
                    params[key] = _PARAM_TYPES[key](value.strip())
                except ValueError:
                    raise ConfigurationError(
                        f"chaos spec: {key}= needs a number, got {value.strip()!r}"
                    ) from None
            clauses.append((kind, params))
        if not clauses:
            raise ConfigurationError(f"chaos spec {spec!r} arms no faults")
        rules = [FaultRule(kind, seed=seed, **params) for kind, params in clauses]
        return cls(rules, seed=seed, spec=spec)

    # -- firing ---------------------------------------------------------------

    def fire(self, kind: FaultKind) -> FaultEvent | None:
        """One opportunity for ``kind``; the event is also logged on the plan."""
        rule = self._rules.get(kind)
        if rule is None:
            return None
        event = rule.draw()
        if event is not None:
            self.events.append(event)
        return event

    def armed(self, kind: FaultKind) -> bool:
        """Whether the plan has a rule for ``kind``."""
        return kind in self._rules

    def arms_any(self, kinds: Iterable[FaultKind]) -> bool:
        """Whether the plan arms at least one of ``kinds``.

        Engines use this with :data:`STORAGE_FAULT_KINDS` to refuse
        only the plans whose sites they actually cannot honour: a plan
        arming purely serve-site faults runs fine on the fast engine.
        """
        return any(kind in self._rules for kind in kinds)

    def drain_events(self) -> list[FaultEvent]:
        """Return and clear the fired-event log (per-run attribution)."""
        events, self.events = self.events, []
        return events

    def summary(self) -> str:
        """One line: what was armed and how often each kind fired."""
        parts = [
            f"{rule.kind.value}: {rule.fired}/{rule.opportunities}"
            for rule in self._rules.values()
        ]
        return "injected faults (fired/opportunities): " + ", ".join(parts)


# -- the process-wide armed plan ----------------------------------------------

_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None`` (the default: chaos disabled)."""
    return _PLAN


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Arm ``plan`` process-wide (or disarm with ``None``); returns previous."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


@contextmanager
def use_fault_plan(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Scope a fault plan as the process-wide armed one."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def arm_from_env() -> FaultPlan | None:
    """Arm a plan from ``REPRO_CHAOS`` (worker processes call this).

    Returns the armed plan, or ``None`` when the variable is unset or
    empty.  A malformed spec raises :class:`ConfigurationError` -- a
    typo must not silently run the sweep un-injured.
    """
    spec = os.environ.get(ENV_CHAOS, "").strip()
    if not spec:
        return None
    try:
        plan = FaultPlan.parse(spec)
    except ConfigurationError as exc:
        # Name the variable *and* the offending value: the spec usually
        # comes from a shell export far away from this stack trace.
        raise ConfigurationError(f"{ENV_CHAOS}={spec!r}: {exc}") from None
    set_fault_plan(plan)
    return plan
