"""Invariant auditing for the simulated storage substrate.

The experiments trust the substrate's internal accounting: the buffer
pool's residency/pinning state, the successor store's block structure
(at most ``blocks_per_page`` blocks of at most ``block_capacity``
entries, the paper's 30 x 15 geometry), the clustered layout of the
input relation, and the monotonicity of every I/O counter.  This module
turns that trust into checks.

Three modes, selected process-wide (``--audit`` on the CLIs or the
``REPRO_AUDIT`` environment variable):

* ``off``    -- no auditor is attached at all;
* ``cheap``  -- the default: counters are checked at every phase
  transition and the full substrate once at the end of each run
  (a few O(n + arcs) passes per run, dwarfed by the run itself);
* ``strict`` -- additionally re-verifies the buffer pool's residency
  and pin accounting after *every* eviction.

The auditor is a pure observer: it reads internal state directly and
never issues a page request, so page-I/O counts are bit-identical with
auditing on or off.  A failed check raises a structured
:class:`~repro.errors.InvariantViolation` naming the invariant and the
offending values.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.core.context import ExecutionContext
    from repro.storage.buffer import BufferPool
    from repro.storage.iostats import IoStats
    from repro.storage.relation import ArcRelation
    from repro.storage.successor_store import SuccessorListStore

ENV_AUDIT = "REPRO_AUDIT"
"""Environment variable selecting the audit mode (off/cheap/strict)."""

AUDIT_MODES = ("off", "cheap", "strict")

_mode: str | None = None  # explicit override; None = fall back to env/default


def audit_mode() -> str:
    """The effective audit mode: explicit setting > REPRO_AUDIT > cheap."""
    if _mode is not None:
        return _mode
    value = os.environ.get(ENV_AUDIT, "").strip().lower()
    return value if value in AUDIT_MODES else "cheap"


def explicit_audit_mode() -> str | None:
    """The audit mode the user *asked for*, or None if defaulted.

    ``audit_mode()`` falls back to "cheap" when nothing was requested;
    engines without audit support (see :mod:`repro.storage.fast`) must
    distinguish that implicit default (degrade to counter-only checks)
    from an explicit ``--audit``/``REPRO_AUDIT`` request (refuse).
    """
    if _mode is not None:
        return _mode
    value = os.environ.get(ENV_AUDIT, "").strip().lower()
    return value if value in AUDIT_MODES else None


def set_audit_mode(mode: str | None) -> str | None:
    """Set (or clear, with ``None``) the process-wide audit mode."""
    global _mode
    if mode is not None and mode not in AUDIT_MODES:
        valid = ", ".join(AUDIT_MODES)
        raise InvariantViolation(
            "audit.mode", f"unknown audit mode {mode!r}; valid modes: {valid}"
        )
    previous = _mode
    _mode = mode
    return previous


def make_auditor() -> "InvariantAuditor | None":
    """An auditor for one run under the current mode (None when off)."""
    mode = audit_mode()
    if mode == "off":
        return None
    return InvariantAuditor(strict=(mode == "strict"))


class InvariantAuditor:
    """Cheap accounting checks over one algorithm execution.

    One auditor is created per run (per :class:`ExecutionContext`) so
    its counter-monotonicity watermarks never mix runs.  All methods
    either return quietly or raise :class:`InvariantViolation`.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.checks = 0
        self._last_totals: tuple[int, int, int, int] | None = None

    # -- buffer pool ---------------------------------------------------------

    def check_pool(self, pool: "BufferPool") -> None:
        """Residency vs. capacity and pin accounting vs. the pinned set."""
        self.checks += 1
        if len(pool._frames) > pool.capacity:
            raise InvariantViolation(
                "pool.residency",
                "more resident pages than frames",
                resident=len(pool._frames), capacity=pool.capacity,
            )
        pinned_frames = set()
        for page, frame in pool._frames.items():
            if frame.page != page:
                raise InvariantViolation(
                    "pool.frame-identity", "frame filed under the wrong page id",
                    slot=str(page), frame=str(frame.page),
                )
            if frame.pin_count < 0:
                raise InvariantViolation(
                    "pool.pin-count", "negative pin count",
                    page=str(page), pin_count=frame.pin_count,
                )
            if frame.pin_count > 0:
                pinned_frames.add(page)
        if pinned_frames != pool._pinned:
            raise InvariantViolation(
                "pool.pinned-set",
                "pinned set disagrees with the frames' pin counts",
                pinned_set=len(pool._pinned), pinned_frames=len(pinned_frames),
                stale=len(pool._pinned - pinned_frames),
                missing=len(pinned_frames - pool._pinned),
            )

    def after_evict(self, pool: "BufferPool") -> None:
        """Strict-mode hook: the pool calls this after every eviction."""
        if self.strict:
            self.check_pool(pool)

    # -- successor store -----------------------------------------------------

    def check_store(self, store: "SuccessorListStore") -> None:
        """Block structure, per-page accounting and page-directory agreement."""
        self.checks += 1
        used_on_page: dict[int, int] = {}
        nodes_on_page: dict[int, set[int]] = {}
        for node, layout in store._layouts.items():
            total = 0
            for page, used in layout.blocks:
                if not 1 <= used <= store.block_capacity:
                    raise InvariantViolation(
                        "store.block-capacity",
                        f"block holds {used} entries, capacity is "
                        f"{store.block_capacity}",
                        node=node, page=page, used=used,
                    )
                if not 0 <= page < store._next_page:
                    raise InvariantViolation(
                        "store.page-range",
                        "block on a page the store never allocated",
                        node=node, page=page, allocated=store._next_page,
                    )
                used_on_page[page] = used_on_page.get(page, 0) + 1
                nodes_on_page.setdefault(page, set()).add(node)
                total += used
            if total != layout.length:
                raise InvariantViolation(
                    "store.length",
                    "list length disagrees with the sum of its block fills",
                    node=node, length=layout.length, block_sum=total,
                )
        for page, used in used_on_page.items():
            free = store._free_blocks.get(page)
            if free is None or free < 0 or used + free != store.blocks_per_page:
                raise InvariantViolation(
                    "store.page-accounting",
                    f"page has {used} used blocks and {free} free slots; "
                    f"a page holds exactly {store.blocks_per_page} blocks",
                    page=page, used=used, free=free,
                )
        for page, nodes in nodes_on_page.items():
            directory = store._lists_on_page.get(page, set())
            if not nodes <= directory:
                raise InvariantViolation(
                    "store.page-directory",
                    "a list occupies a page its directory entry does not record",
                    page=page, missing=sorted(nodes - directory)[:5],
                )

    # -- clustered input relation --------------------------------------------

    def check_relation(self, relation: "ArcRelation") -> None:
        """Clustered layout: offsets monotone, tuple runs sorted on dst."""
        self.checks += 1
        offsets = relation._offsets
        for node in range(len(offsets) - 1):
            if offsets[node] > offsets[node + 1]:
                raise InvariantViolation(
                    "relation.clustering",
                    "tuple-file offsets are not monotone in the source attribute",
                    node=node, offset=offsets[node], next_offset=offsets[node + 1],
                )
        if offsets and offsets[-1] != relation.num_tuples:
            raise InvariantViolation(
                "relation.clustering",
                "final offset disagrees with the tuple count",
                final_offset=offsets[-1], num_tuples=relation.num_tuples,
            )
        for node in relation._graph.nodes():
            successors = relation._graph.successors(node)
            if any(a >= b for a, b in zip(successors, successors[1:])):
                raise InvariantViolation(
                    "relation.index-order",
                    "a clustered tuple run is not sorted on the indexed "
                    "destination attribute",
                    node=node,
                )

    # -- I/O counters --------------------------------------------------------

    def check_counters(self, io: "IoStats") -> None:
        """Monotonicity plus the request = hit + read identity."""
        self.checks += 1
        totals = (io.total_requests, io.total_hits, io.total_reads, io.total_writes)
        if self._last_totals is not None:
            for name, before, now in zip(
                ("requests", "hits", "reads", "writes"), self._last_totals, totals
            ):
                if now < before:
                    raise InvariantViolation(
                        "counters.monotonic",
                        f"total {name} decreased",
                        before=before, now=now,
                    )
        self._last_totals = totals
        if io.total_requests != io.total_hits + io.total_reads:
            raise InvariantViolation(
                "counters.request-split",
                "requests != hits + physical reads",
                requests=io.total_requests, hits=io.total_hits,
                reads=io.total_reads,
            )

    # -- whole-run audit -----------------------------------------------------

    def audit_run(self, ctx: "ExecutionContext") -> None:
        """The end-of-run sweep: counters, then the engine's substrate.

        The substrate checks are dispatched through the storage
        engine's capability hook (:meth:`StorageEngine.audit`): the
        paged engine hands over its pool, store and relations; the fast
        engine has no substrate and contributes nothing beyond the
        counter identities.
        """
        self.check_counters(ctx.metrics.io)
        ctx.engine.audit(self)
