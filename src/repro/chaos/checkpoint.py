"""Crash-safe checkpoint journal for experiment sweeps.

A full ``run_all`` sweep is minutes of work, and a crash (OOM, timeout
storm, ctrl-C) used to lose every completed cell.  The
:class:`SweepJournal` fixes that: the experiment engine appends one
JSON line per *completed cell* -- keyed by the cell's deterministic
identity (algorithm, family, query shape, system config, scale
profile), which is also its seed tuple -- holding the averaged metrics
and every per-run :class:`~repro.obs.record.RunRecord` of the cell.

Crash safety: each line is written whole, flushed, and fsynced before
the engine moves on, so the journal never holds a half-cell; at worst
the final line is truncated mid-write, which :meth:`SweepJournal.load`
tolerates (with a warning) by discarding it.

Resuming with the same journal replays each journaled cell -- the
records go back out to the sinks in their canonical order and the
metrics are returned without recomputation -- so a killed sweep
relaunched with ``--resume <journal>`` re-runs only the missing cells
and produces output *byte-identical* to an uninterrupted run (every
cell is a pure function of its key; see
:mod:`repro.experiments.parallel`).

Failed cells are deliberately **not** journaled: a resume retries them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.obs.record import RunRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import AveragedMetrics

JOURNAL_SCHEMA_VERSION = 1
"""Bump when the journal line layout changes incompatibly."""


class SweepJournal:
    """Append-only JSONL journal of completed experiment cells.

    Opening a journal loads whatever a previous (possibly killed)
    sweep recorded; completed cells are then served from memory via
    :meth:`get` and new completions appended durably via :meth:`record`.

    By default every appended cell is flushed *and fsynced* before
    :meth:`record` returns.  ``flush_every=N`` opts into batched
    durability for very fine-grained sweeps: the flush+fsync pair runs
    once per ``N`` cells (and always on :meth:`close`), widening the
    crash window to at most ``N - 1`` acknowledged cells -- whole-line
    atomicity is unchanged, so a torn final record is still the only
    possible damage and :meth:`_load` still recovers every earlier one.
    """

    def __init__(self, path: str | Path, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = flush_every
        self._cells: dict[str, tuple["AveragedMetrics", list[RunRecord]]] = {}
        self._handle: IO[str] | None = None
        self._pending = 0
        self.loaded = 0
        self.appended = 0
        if self.path.exists():
            self._load()

    # -- queries --------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> "tuple[AveragedMetrics, list[RunRecord]] | None":
        """The journaled completion for ``key``, if any."""
        return self._cells.get(key)

    # -- recording ------------------------------------------------------------

    def record(self, key: str, metrics: "AveragedMetrics",
               records: list[RunRecord]) -> None:
        """Durably journal one completed cell (idempotent per key)."""
        if key in self._cells:
            return
        self._cells[key] = (metrics, records)
        line = json.dumps(
            {
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "key": key,
                "metrics": dataclasses.asdict(metrics),
                "records": [record.to_dict() for record in records],
            },
            separators=(",", ":"),
            sort_keys=True,
        )
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        # Whole line, then flush + fsync (immediately by default, per
        # batch under flush_every): a crash can truncate the final line
        # but never interleave or lose a *durable* cell.
        self._handle.write(line + "\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            self._make_durable()
        self.appended += 1

    def _make_durable(self) -> None:
        """Flush and fsync the journal handle: the one durability point.

        Every buffered-write path ends here -- per cell by default, per
        batch under ``flush_every``, and unconditionally on
        :meth:`close` -- the same discipline RPL006 checks on the JSONL
        sink.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._pending = 0

    def close(self) -> None:
        """Make any batched tail durable and release the handle."""
        if self._handle is not None:
            self._make_durable()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- loading ---------------------------------------------------------------

    def _load(self) -> None:
        from repro.experiments.runner import AveragedMetrics

        known = {f.name for f in dataclasses.fields(AveragedMetrics)}
        with self.path.open() as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                data = json.loads(stripped)
                metrics = AveragedMetrics(
                    **{k: v for k, v in data["metrics"].items() if k in known}
                )
                records = [RunRecord.from_dict(r) for r in data["records"]]
                key = data["key"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if number == len(lines):
                    # The expected crash signature: a final line cut off
                    # mid-write.  Drop it; the cell simply re-runs.
                    print(
                        f"warning: {self.path}:{number}: discarding truncated "
                        f"final journal line ({type(exc).__name__})",
                        file=sys.stderr,
                    )
                    continue
                raise ValueError(
                    f"{self.path}:{number}: corrupt checkpoint line "
                    f"(only the final line may be truncated): {exc}"
                ) from exc
            self._cells[key] = (metrics, records)
        self.loaded = len(self._cells)

    def describe(self) -> str:
        """One status line for sweep drivers to print."""
        return (f"checkpoint {self.path}: {self.loaded} cell(s) resumed, "
                f"{self.appended} appended")


def cell_key(algorithm: str, family: str, selectivity: int | None,
             system: dict[str, Any], profile: dict[str, Any]) -> str:
    """Canonical JSON identity of one experiment cell.

    This is the cell's deterministic seed tuple: everything a run
    depends on (the graph seeds and source-sample seeds are derived
    from the profile's repetition counts), so equal keys mean
    bit-identical cell output in any process on any machine.
    """
    return json.dumps(
        {
            "algorithm": algorithm,
            "family": family,
            "selectivity": selectivity,
            "system": system,
            "profile": profile,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
