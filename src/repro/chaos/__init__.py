"""Chaos harness: fault injection, invariant auditing, sweep checkpoints.

Three planes, each usable on its own:

* :mod:`repro.chaos.faults` -- a seeded, deterministic fault plane that
  can be armed at the page, buffer-pool, successor-store and
  experiment-unit boundaries (``--chaos`` / ``REPRO_CHAOS``);
* :mod:`repro.chaos.audit` -- always-on cheap invariant checks over the
  storage substrate, with a ``strict`` mode that re-verifies the buffer
  pool after every eviction (``--audit`` / ``REPRO_AUDIT``);
* :mod:`repro.chaos.checkpoint` -- a crash-safe JSONL journal of
  completed experiment cells, so a killed sweep resumed with
  ``--resume`` re-runs only the missing cells.

This package deliberately re-exports nothing: the buffer pool imports
``repro.chaos.faults`` on its hot path, and an ``__init__`` that pulled
in the checkpoint machinery (which imports the experiment stack) would
create an import cycle.  Import the submodule you need.
"""
