"""Semirings for path aggregation.

A semiring ``(D, plus, times, zero, one)`` turns the transitive closure
into a path-aggregation problem: the value of a path is the ``times``
of its arc labels, and the aggregate for a pair (x, y) is the ``plus``
over all x-to-y paths.  On a DAG the reverse-topological expansion of
the study's algorithms computes exactly this aggregate, because every
path through a child is extended exactly once.

``plus`` must be commutative and associative with identity ``zero``;
``times`` associative with identity ``one`` and distributing over
``plus``; ``zero`` annihilates.  ``idempotent_plus`` marks semirings
with ``plus(a, a) == a`` -- only those can terminate on cyclic inputs,
and *none* of them admit the boolean marking optimisation, because an
alternative path can still change the aggregate value.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class Semiring:
    """A path-aggregation algebra.

    Attributes
    ----------
    name:
        Identifier used in reports.
    plus / times:
        The aggregation (across paths) and extension (along a path)
        operators.
    zero / one:
        Identities of ``plus`` and ``times``; ``zero`` is also the
        "no path" value and is never stored in a value list.
    idempotent_plus:
        Whether ``plus(a, a) == a``; required for cyclic inputs.
    """

    name: str
    plus: Callable[[object, object], object]
    times: Callable[[object, object], object]
    zero: object
    one: object
    idempotent_plus: bool

    def sum(self, values) -> object:
        """``plus`` folded over an iterable (``zero`` when empty)."""
        total = self.zero
        for value in values:
            total = self.plus(total, value)
        return total


BOOLEAN = Semiring(
    name="boolean",
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    zero=False,
    one=True,
    idempotent_plus=True,
)
"""Plain reachability: the study's original problem."""

MIN_PLUS = Semiring(
    name="min_plus",
    plus=min,
    times=lambda a, b: a + b,
    zero=float("inf"),
    one=0,
    idempotent_plus=True,
)
"""Shortest distances (non-negative arc weights on cyclic inputs)."""

MAX_PLUS = Semiring(
    name="max_plus",
    plus=max,
    times=lambda a, b: a + b,
    zero=float("-inf"),
    one=0,
    idempotent_plus=True,
)
"""Longest / critical paths (DAGs only -- unbounded on cycles)."""

MAX_MIN = Semiring(
    name="max_min",
    plus=max,
    times=min,
    zero=float("-inf"),
    one=float("inf"),
    idempotent_plus=True,
)
"""Bottleneck (widest-path) capacities."""

MAX_PROB = Semiring(
    name="max_prob",
    plus=max,
    times=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    idempotent_plus=True,
)
"""Most-reliable path, with arc labels in [0, 1]."""

COUNT = Semiring(
    name="count",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    idempotent_plus=False,
)
"""Number of distinct paths (DAGs only -- infinite on cycles)."""
