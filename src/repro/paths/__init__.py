"""Generalized transitive closure: path aggregation over semirings.

The paper's implementation framework comes from Dar's thesis,
*"Augmenting Databases with Generalized Transitive Closure"* [7] --
reachability is only the boolean instance of a family of path problems
that the same successor-list machinery evaluates: shortest distances,
critical paths, bottleneck capacities, path reliabilities, path counts.

This subpackage provides that generalisation on the same simulated
substrate:

* :mod:`repro.paths.semiring` -- the algebraic structures and the
  standard instances;
* :mod:`repro.paths.weighted` -- a :class:`Digraph` with arc labels;
* :mod:`repro.paths.closure` -- the two-phase evaluation of the
  generalized closure, plus convenience wrappers
  (:func:`shortest_distances`, :func:`critical_path_lengths`,
  :func:`bottleneck_capacities`, :func:`path_counts`,
  :func:`path_reliabilities`).

A point the boolean study makes implicitly: the *marking* optimisation
is sound only for plain reachability.  For any value-carrying semiring
an alternative path may still improve (or add to) the aggregate, so
the generalized closure must process every arc -- see
``benchmarks/bench_generalized.py`` for what that costs.
"""

from repro.paths.closure import (
    GeneralizedClosure,
    bottleneck_capacities,
    critical_path_lengths,
    generalized_closure,
    path_counts,
    path_reliabilities,
    shortest_distances,
)
from repro.paths.semiring import (
    BOOLEAN,
    COUNT,
    MAX_MIN,
    MAX_PLUS,
    MAX_PROB,
    MIN_PLUS,
    Semiring,
)
from repro.paths.weighted import WeightedDigraph

__all__ = [
    "BOOLEAN",
    "COUNT",
    "GeneralizedClosure",
    "MAX_MIN",
    "MAX_PLUS",
    "MAX_PROB",
    "MIN_PLUS",
    "Semiring",
    "WeightedDigraph",
    "bottleneck_capacities",
    "critical_path_lengths",
    "generalized_closure",
    "path_counts",
    "path_reliabilities",
    "shortest_distances",
]
