"""A directed graph with labelled arcs."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InvalidNodeError
from repro.graphs.digraph import Digraph


class WeightedDigraph:
    """A :class:`Digraph` whose arcs carry a label (weight).

    The label domain is whatever the chosen semiring's ``times``
    understands -- numbers for distances and capacities, probabilities
    in [0, 1] for reliabilities.  Unlabelled construction helpers give
    every arc the semiring-agnostic label 1.
    """

    __slots__ = ("graph", "_labels")

    def __init__(self, graph: Digraph, labels: dict[tuple[int, int], object]) -> None:
        for src, dst in labels:
            if not graph.has_arc(src, dst):
                raise InvalidNodeError(f"label given for missing arc ({src}, {dst})")
        missing = [arc for arc in graph.arcs() if arc not in labels]
        if missing:
            raise InvalidNodeError(
                f"{len(missing)} arcs have no label (first: {missing[0]})"
            )
        self.graph = graph
        self._labels = labels

    @classmethod
    def from_labelled_arcs(
        cls, num_nodes: int, arcs: Iterable[tuple[int, int, object]]
    ) -> "WeightedDigraph":
        """Build from (source, destination, label) triples.

        A duplicate arc keeps the label seen last.
        """
        labels = {(src, dst): label for src, dst, label in arcs}
        graph = Digraph.from_arcs(num_nodes, labels.keys())
        return cls(graph, labels)

    @classmethod
    def uniform(cls, graph: Digraph, label: object = 1) -> "WeightedDigraph":
        """Give every arc of ``graph`` the same label."""
        return cls(graph, {arc: label for arc in graph.arcs()})

    def label(self, src: int, dst: int) -> object:
        """The label of the arc (src, dst)."""
        return self._labels[(src, dst)]

    def labelled_arcs(self):
        """Iterate over (source, destination, label) triples."""
        for (src, dst), label in self._labels.items():
            yield src, dst, label

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_arcs(self) -> int:
        return self.graph.num_arcs

    def successors(self, node: int) -> list[int]:
        return self.graph.successors(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedDigraph(n={self.num_nodes}, arcs={self.num_arcs})"
