"""Generalized transitive closure evaluation.

The evaluation follows the study's two-phase framework exactly: the
restructuring phase identifies the (magic) scope, topologically sorts
it and creates value lists holding the immediate labelled successors;
the computation phase expands in reverse topological order --

    V_x[y] = plus over children c of x:  label(x, c) * ({c: one} + V_c)

which, on a DAG, aggregates over *every* x-to-y path.

Two cost-relevant differences from the boolean closure:

* **No marking.**  Skipping the arc (x, c) because ``c`` is already in
  ``V_x`` would lose the paths through (x, c), whose values differ
  from the ones already aggregated.  Every arc unions.
* **Wider entries.**  A value list stores (successor, value) pairs --
  8 bytes instead of 4 -- so a 2048-byte page holds 225 entries
  (30 blocks of 7, keeping the block structure + one slot of padding),
  roughly doubling the page footprint of every list.

Cyclic inputs raise :class:`~repro.errors.CyclicGraphError`: a cycle
gives infinitely many paths, and even for idempotent semirings a
fixpoint iteration (not this framework) would be needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.query import Query, SystemConfig
from repro.errors import ConfigurationError
from repro.graphs.digraph import Digraph
from repro.graphs.toposort import topological_sort
from repro.metrics.counters import MetricSet
from repro.paths.semiring import (
    COUNT,
    MAX_MIN,
    MAX_PLUS,
    MAX_PROB,
    MIN_PLUS,
    Semiring,
)
from repro.paths.weighted import WeightedDigraph
from repro.storage.engine import CAP_PAGE_COSTS, PageId, PageKind, make_engine
from repro.storage.iostats import Phase

VALUE_BLOCK_CAPACITY = 7
"""(successor, value) entries per block: labelled entries are twice the
size of the boolean study's 4-byte entries, so a 30-block page holds
210 instead of 450."""


@dataclass
class GeneralizedClosure:
    """The result of a generalized closure evaluation.

    ``values[x][y]`` is the aggregate over all x-to-y paths; pairs with
    the semiring's ``zero`` (no path) are absent.
    """

    semiring: Semiring
    query: Query
    metrics: MetricSet
    values: dict[int, dict[int, object]] = field(default_factory=dict)

    def value(self, src: int, dst: int) -> object:
        """The aggregate for (src, dst); ``zero`` when no path exists."""
        return self.values.get(src, {}).get(dst, self.semiring.zero)

    @property
    def num_tuples(self) -> int:
        """Number of (source, successor, value) result tuples."""
        return sum(len(row) for row in self.values.values())


def generalized_closure(
    weighted: WeightedDigraph,
    semiring: Semiring,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Aggregate path values over a weighted DAG.

    Parameters
    ----------
    weighted:
        The labelled input graph (must be acyclic).
    semiring:
        The aggregation algebra (see :mod:`repro.paths.semiring`).
    sources:
        Source nodes of a partial query; ``None`` aggregates for every
        node.
    system:
        Simulated system configuration; the block geometry is fixed to
        the labelled-entry layout regardless of the configured one.
    """
    system = system or SystemConfig()
    graph = weighted.graph
    metrics = MetricSet()
    engine = make_engine(system, graph, metrics=metrics)
    store = engine.make_list_store(
        PageKind.SUCCESSOR,
        policy=system.list_policy,
        blocks_per_page=30,
        block_capacity=VALUE_BLOCK_CAPACITY,
    )
    start = time.process_time()

    # -- restructuring ------------------------------------------------------
    metrics.io.phase = Phase.RESTRUCTURE
    if sources is None:
        query = Query.full()
        engine.scan_relation()
        scope = set(graph.nodes())
    else:
        query = Query.ptc(sources)
        scope = set()
        stack = list(query.sources or ())
        tuple_io = 0
        while stack:
            node = stack.pop()
            if node in scope:
                continue
            scope.add(node)
            children = engine.read_successors(node)
            tuple_io += len(children)
            stack.extend(child for child in children if child not in scope)
        metrics.fold(tuple_io=tuple_io)

    order = topological_sort(graph, scope)
    values: dict[int, dict[int, object]] = {}
    for node in reversed(order):
        store.create_list(node, len(graph.successors(node)))

    # -- computation --------------------------------------------------------
    metrics.io.phase = Phase.COMPUTE
    plus, times, one = semiring.plus, semiring.times, semiring.one
    # The per-arc counters accumulate in locals and fold into ``metrics``
    # once after the loop -- the final totals (and every storage call,
    # in the same order) are identical.
    arcs_considered = list_unions = 0
    tuple_io = tuples_generated = duplicates = 0
    for node in reversed(order):
        row: dict[int, object] = {}
        for child in graph.successors(node):
            arcs_considered += 1
            list_unions += 1
            label = weighted.label(node, child)
            child_row = values[child]
            store.read_list(child)
            tuple_io += len(child_row)
            tuples_generated += len(child_row) + 1

            extended = times(label, one)  # the one-arc path's value
            if child in row:
                duplicates += 1
                row[child] = plus(row[child], extended)
            else:
                row[child] = extended
            for successor, value in child_row.items():
                through = times(label, value)
                if successor in row:
                    duplicates += 1
                    row[successor] = plus(row[successor], through)
                else:
                    row[successor] = through
        values[node] = row
        grown = len(row) - len(graph.successors(node))
        if grown > 0:
            store.append(node, grown)
    metrics.fold(
        arcs_considered=arcs_considered,
        list_unions=list_unions,
        list_reads=list_unions,
        tuple_io=tuple_io,
        tuples_generated=tuples_generated,
        duplicates=duplicates,
    )

    # -- write-out ----------------------------------------------------------
    metrics.io.phase = Phase.WRITEOUT
    if query.is_full:
        output_nodes = list(order)
    else:
        output_nodes = [s for s in query.sources or () if s in scope]
    if engine.supports(CAP_PAGE_COSTS):
        output_pages: set[PageId] = set()
        for node in output_nodes:
            output_pages.update(store.pages_of(node))
        engine.flush_output(output_pages)
    metrics.set_totals(
        distinct_tuples=sum(len(row) for row in values.values()),
        output_tuples=sum(len(values[node]) for node in output_nodes),
        cpu_seconds=time.process_time() - start,
    )

    return GeneralizedClosure(
        semiring=semiring,
        query=query,
        metrics=metrics,
        values={node: values[node] for node in output_nodes},
    )


# -- convenience wrappers ------------------------------------------------------


def shortest_distances(
    weighted: WeightedDigraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Minimum path weight between every (reachable) pair."""
    return generalized_closure(weighted, MIN_PLUS, sources, system)


def critical_path_lengths(
    weighted: WeightedDigraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Maximum (critical) path weight -- scheduling's key quantity."""
    return generalized_closure(weighted, MAX_PLUS, sources, system)


def bottleneck_capacities(
    weighted: WeightedDigraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Widest-path (maximum bottleneck) capacity between pairs."""
    return generalized_closure(weighted, MAX_MIN, sources, system)


def path_reliabilities(
    weighted: WeightedDigraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Most-reliable-path probability, with arc labels in [0, 1]."""
    for src, dst, label in weighted.labelled_arcs():
        if not 0.0 <= float(label) <= 1.0:
            raise ConfigurationError(
                f"reliability labels must lie in [0, 1]; arc ({src}, {dst}) "
                f"has {label!r}"
            )
    return generalized_closure(weighted, MAX_PROB, sources, system)


def path_counts(
    graph: Digraph | WeightedDigraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
) -> GeneralizedClosure:
    """Number of distinct paths between every (reachable) pair."""
    if isinstance(graph, Digraph):
        graph = WeightedDigraph.uniform(graph, label=1)
    return generalized_closure(graph, COUNT, sources, system)
