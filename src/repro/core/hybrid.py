"""The Hybrid algorithm (Section 3.2 of the paper; Agrawal & Jagadish [2]).

Successor lists are expanded a *block* at a time: a diagonal block of
lists is pinned in memory, and when an off-diagonal list is brought in
it is joined with every diagonal list that needs it, so several unions
share the cost of a single fetch.  ILIMIT is the fraction of the buffer
pool reserved for the diagonal block; ILIMIT = 0 disables blocking and
makes the algorithm identical to BTC (the ``HYB-0`` curve of Figure 6).

Blocking has three costs the paper identifies (and this implementation
reproduces):

1. the pinned diagonal pages shrink the effective buffer pool;
2. expanding diagonal lists can overflow memory, forcing *dynamic
   reblocking* (diagonal pages are discarded mid-block);
3. each diagonal list's off-diagonal children are processed before its
   diagonal children, deviating from the strict topological order and
   therefore missing marking opportunities, which expands redundant
   arcs.
"""

from __future__ import annotations

from repro.core.base import TwoPhaseAlgorithm
from repro.core.btc import BtcAlgorithm
from repro.core.context import ExecutionContext
from repro.errors import BufferPoolExhaustedError
from repro.obs.tracing import EV_BLOCK_REBLOCK
from repro.storage.engine import CAP_PINNING, PageId


class HybridAlgorithm(TwoPhaseAlgorithm):
    """Blocked expansion of successor lists with a pinned diagonal block."""

    name = "hyb"

    def compute(self, ctx: ExecutionContext) -> None:
        block_budget = int(ctx.system.ilimit * ctx.system.buffer_pages)
        if block_budget <= 0:
            # No room for a diagonal block: degenerate to BTC.
            BtcAlgorithm().compute(ctx)
            return

        order = list(reversed(ctx.topo_order))  # expansion order
        index = 0
        while index < len(order):
            block, index = self._form_block(ctx, order, index, block_budget)
            self._expand_block(ctx, block)

    # -- block formation ------------------------------------------------------

    def _form_block(
        self,
        ctx: ExecutionContext,
        order: list[int],
        start: int,
        block_budget: int,
    ) -> tuple[list[int], int]:
        """Take the next run of lists whose pages fit the block budget."""
        block: list[int] = []
        pages: set[PageId] = set()
        index = start
        while index < len(order):
            node = order[index]
            node_pages = set(ctx.store.pages_of(node))
            if block and len(pages | node_pages) > block_budget:
                break
            pages |= node_pages
            block.append(node)
            index += 1
        return block, index

    # -- block expansion -------------------------------------------------------

    def _expand_block(self, ctx: ExecutionContext, block: list[int]) -> None:
        diagonal = set(block)
        # Insertion-ordered: the unpin sweeps below iterate it, and a
        # set of PageIds would iterate in hash order.
        pinned: dict[PageId, None] = {}
        unpinned_lists: set[int] = set()
        metrics = ctx.metrics
        position = ctx.position
        can_pin = ctx.engine.supports(CAP_PINNING)

        def pin_list(node: int) -> None:
            if node in unpinned_lists:
                return
            for page in ctx.store.pages_of(node):
                if page not in pinned:
                    if can_pin:
                        try:
                            ctx.engine.pin_page(page)
                        except BufferPoolExhaustedError:
                            reblock()
                            ctx.engine.pin_page(page)
                    pinned[page] = None

        def reblock() -> None:
            """Dynamic reblocking: discard the largest pinned list."""
            # Folded immediately (not accumulated) so the count survives
            # the raise below when the block cannot shrink any further.
            metrics.fold(reblocking_events=1)
            victim = max(
                (node for node in block if node not in unpinned_lists),
                key=ctx.store.page_count,
                default=None,
            )
            if victim is None:
                raise BufferPoolExhaustedError(
                    "hybrid block cannot shrink further; reduce ILIMIT"
                )
            unpinned_lists.add(victim)
            if ctx.collector is not None:
                ctx.collector.emit(EV_BLOCK_REBLOCK, detail=f"victim={victim}")
            still_needed: set[PageId] = set()
            for node in block:
                if node not in unpinned_lists:
                    still_needed.update(ctx.store.pages_of(node))
            for page in list(pinned):
                if page not in still_needed:
                    if can_pin:
                        ctx.engine.unpin_page(page)
                    del pinned[page]

        arcs_considered = arcs_marked = locality = 0
        try:
            for node in block:
                pin_list(node)

            # Pass 1: off-diagonal children, grouped so one fetch of an
            # off-diagonal list serves every diagonal list that needs it.
            needers: dict[int, list[int]] = {}
            for node in block:
                for child in ctx.adjacency[node]:
                    if child not in diagonal:
                        needers.setdefault(child, []).append(node)
            # Off-diagonal lists are visited nearest-first (highest
            # topological position first), mirroring the right-to-left scan
            # of the successor matrix in Figure 2.
            for child in sorted(needers, key=position.__getitem__, reverse=True):
                for node in sorted(
                    needers[child], key=position.__getitem__, reverse=True
                ):
                    arcs_considered += 1
                    if (ctx.acquired[node] >> child) & 1:
                        arcs_marked += 1
                        continue
                    locality += ctx.arc_locality(node, child)
                    self._guarded_union(ctx, node, child, reblock, pin_list)

            # Pass 2: diagonal children, in the strict reverse topological
            # order (a diagonal child's own expansion is already complete).
            for node in sorted(block, key=position.__getitem__, reverse=True):
                children = sorted(
                    (child for child in ctx.adjacency[node] if child in diagonal),
                    key=position.__getitem__,
                )
                for child in children:
                    arcs_considered += 1
                    if (ctx.acquired[node] >> child) & 1:
                        arcs_marked += 1
                        continue
                    locality += ctx.arc_locality(node, child)
                    self._guarded_union(ctx, node, child, reblock, pin_list)
        finally:
            # The fold runs even when reblocking exhausts the pool, so
            # an aborted run still reports the arcs it processed.
            metrics.fold(
                arcs_considered=arcs_considered,
                arcs_marked=arcs_marked,
                unmarked_locality_total=locality,
            )
            # The unpin sweep must run on the exception path too: a
            # BufferPoolExhaustedError that escapes reblock() would
            # otherwise leave the whole diagonal block pinned, silently
            # shrinking the pool for everything that runs after it.
            if can_pin:
                for page in pinned:
                    ctx.engine.unpin_page(page)

    def _guarded_union(self, ctx, node, child, reblock, pin_list) -> None:
        """A union that shrinks the block when memory pressure builds.

        At least one unpinned frame must be available before the union
        starts, so the off-diagonal list (and any freshly allocated
        pages of the expanding list) can be faulted in without the
        union failing halfway through.
        """
        engine = ctx.engine
        while engine.pinned_count >= engine.frame_capacity - 1 and engine.pinned_count:
            reblock()
        ctx.union_list(node, child)
        pin_list(node)
