"""The uniform two-phase implementation framework (Section 4).

Every algorithm's execution is divided into:

1. a *restructuring phase*, common to all algorithms, in which the
   input relation is scanned (full queries) or searched forward from
   the source nodes (selection queries), the magic subgraph is
   identified, the nodes are topologically sorted, the rectangle-model
   statistics are collected (at no extra I/O cost, Theorem 2), and the
   tuples are converted to successor-list format; and
2. a *computation phase*, different for each algorithm, in which the
   successor lists are expanded; followed by writing the expanded lists
   of the relevant nodes out to disk.

The Search algorithm overrides the split (Section 4.1: its extended
preprocessing does all the work and the computation phase is empty),
and BJ inserts the single-parent reduction between scope identification
and sorting.

All storage access flows through the context's
:class:`~repro.storage.engine.StorageEngine` -- the paged simulated
substrate or the in-memory fast backend -- so the framework never
touches a buffer pool or relation directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.context import ExecutionContext
from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.errors import CyclicGraphError, InvalidNodeError
from repro.graphs.digraph import Digraph
from repro.obs.spans import SpanRecorder, span
from repro.obs.tracing import TraceCollector
from repro.storage.engine import CAP_PAGE_COSTS, PageId
from repro.storage.iostats import Phase
from repro.storage.trace import PageTrace


def topological_sort_map(adjacency: dict[int, Sequence[int]]) -> list[int]:
    """Topologically sort the nodes of an adjacency mapping.

    Like :func:`repro.graphs.toposort.topological_sort` but over the
    context's (possibly rewritten) adjacency instead of the input
    graph, so BJ's single-parent reduction is honoured.  Rows may be
    plain lists or zero-copy CSR rows; only sequence reads are used.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(adjacency, WHITE)
    postorder: list[int] = []
    postorder_append = postorder.append
    for root in sorted(adjacency):
        if color[root] != WHITE:
            continue
        # Each frame: [node, next_child_index] (mutable, so descending
        # does not reallocate the frame).
        stack = [[root, 0]]
        color[root] = GRAY
        while stack:
            frame = stack[-1]
            node = frame[0]
            child_index = frame[1]
            children = adjacency[node]
            n_children = len(children)
            advanced = False
            while child_index < n_children:
                child = children[child_index]
                child_index += 1
                state = color[child]
                if state == GRAY:
                    raise CyclicGraphError(
                        f"cycle detected through arc ({node}, {child})"
                    )
                if state == WHITE:
                    frame[1] = child_index
                    stack.append([child, 0])
                    color[child] = GRAY
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            color[node] = BLACK
            postorder_append(node)
    postorder.reverse()
    return postorder


class TwoPhaseAlgorithm(ABC):
    """Base class of all transitive closure algorithms in the study."""

    name: str = "abstract"
    needs_inverse: bool = False
    """Whether the algorithm requires the dual (inverse) relation."""
    mutates_adjacency: bool = False
    """Whether the algorithm rewrites ``ctx.adjacency`` rows in place.

    When ``False`` (every algorithm except BJ) the restructuring phase
    hands out zero-copy CSR rows instead of per-node list copies, so a
    full-query scan of an ``m``-arc graph allocates O(n) row views
    rather than O(n + m) list cells.
    """

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
        recorder: SpanRecorder | None = None,
        trace: PageTrace | None = None,
        collector: TraceCollector | None = None,
    ) -> ClosureResult:
        """Execute the algorithm and return the answer plus cost profile.

        ``recorder`` (optional) collects nested wall-clock spans for the
        run and its phases; ``trace`` (optional) records every buffer
        event with full page identity; ``collector`` (optional) records
        structured trace events for Chrome-trace export and reports
        (requires an engine with ``CAP_TRACE``).  All are pure
        observers: they never change any cost counter, and when omitted
        the run is exactly the un-instrumented execution.
        """
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        if query.sources is not None:
            for source in query.sources:
                if not 0 <= source < graph.num_nodes:
                    raise InvalidNodeError(
                        f"source node {source} outside the graph's range "
                        f"0..{graph.num_nodes - 1}"
                    )

        ctx = ExecutionContext(
            graph,
            query,
            system,
            needs_inverse=self.needs_inverse,
            recorder=recorder,
            trace=trace,
            collector=collector,
        )
        with span("run", recorder):
            start = time.process_time()

            with span("restructure", recorder):
                ctx.enter_phase(Phase.RESTRUCTURE)
                self.restructure(ctx)
            ctx.metrics.set_totals(
                restructure_cpu_seconds=time.process_time() - start
            )

            with span("compute", recorder):
                ctx.enter_phase(Phase.COMPUTE)
                self.compute(ctx)

            with span("writeout", recorder):
                ctx.enter_phase(Phase.WRITEOUT)
                output_nodes = self.write_out(ctx)

            ctx.metrics.set_totals(cpu_seconds=time.process_time() - start)

        if ctx.auditor is not None:
            # The end-of-run invariant sweep: pool residency/pinning,
            # successor-block structure, clustered layout, counters.
            # Raises a structured InvariantViolation on any breach.
            ctx.auditor.audit_run(ctx)
        return self._build_result(ctx, output_nodes)

    # -- restructuring phase (shared) ------------------------------------------

    def restructure(self, ctx: ExecutionContext) -> None:
        """Scan/search the relation, sort, and build initial lists."""
        self.identify_scope(ctx)
        self.sort_and_profile(ctx)
        self.build_lists(ctx)

    def identify_scope(self, ctx: ExecutionContext) -> None:
        """Determine the magic graph and load its adjacency.

        For a full query the relation is scanned sequentially; for a
        selection query the magic subgraph is found by searching
        forward from the source nodes through the clustered index.
        """
        graph, query = ctx.graph, ctx.query
        if query.is_full:
            ctx.engine.scan_relation()
            ctx.in_scope = set(graph.nodes())
            # Mutating algorithms (BJ) get fresh per-node lists; the
            # rest read the graph's CSR rows zero-copy.
            ctx.adjacency = (
                graph.adjacency_lists()
                if self.mutates_adjacency
                else graph.adjacency_rows()
            )
            ctx.metrics.fold(tuple_io=graph.num_arcs)
            return

        seen: set[int] = set()
        stack = list(query.sources or ())
        adjacency: dict[int, Sequence[int]] = {}
        tuple_io = 0
        copy_rows = self.mutates_adjacency
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            children = ctx.engine.read_successors(node)
            tuple_io += len(children)
            # Children of a reachable node are reachable, so the whole
            # successor list stays in the magic graph.
            adjacency[node] = list(children) if copy_rows else children
            for child in children:
                if child not in seen:
                    stack.append(child)
        ctx.metrics.fold(tuple_io=tuple_io)
        ctx.in_scope = seen
        ctx.adjacency = adjacency

    def sort_and_profile(self, ctx: ExecutionContext) -> None:
        """Topologically sort the scope and collect the rectangle model."""
        adjacency = ctx.adjacency
        order = topological_sort_map(adjacency)
        ctx.topo_order = order
        ctx.position = {node: index for index, node in enumerate(order)}

        levels: dict[int, int] = {}
        for node in reversed(order):
            best = 0
            for child in adjacency[node]:
                child_level = levels[child]
                if child_level > best:
                    best = child_level
            levels[node] = best + 1
        ctx.levels = levels

        num_nodes = len(order)
        num_arcs = sum(map(len, adjacency.values()))
        # The adjacency is final from here on (BJ's reduction and the
        # search preprocessing both rewrite it *before* sorting), so the
        # result assembly can reuse the arc count instead of re-summing.
        ctx.num_magic_arcs = num_arcs
        total_level = sum(levels.values())
        ctx.height = total_level / num_nodes if num_nodes else 0.0
        ctx.width = num_arcs / ctx.height if ctx.height else 0.0
        ctx.max_level = max(levels.values(), default=0)

    def build_lists(self, ctx: ExecutionContext) -> None:
        """Create the successor lists, initialised with the children.

        Lists are created in reverse topological order -- the order the
        computation phase expands them -- so consecutive lists share
        pages (inter-list clustering).
        """
        adjacency = ctx.adjacency
        create_list = ctx.store.create_list
        lists = ctx.lists
        acquired = ctx.acquired
        for node in reversed(ctx.topo_order):
            children = adjacency[node]
            create_list(node, len(children))
            bits = 0
            for child in children:
                bits |= 1 << child
            lists[node] = bits
            acquired[node] = 0

    # -- computation phase (per algorithm) ---------------------------------------

    @abstractmethod
    def compute(self, ctx: ExecutionContext) -> None:
        """Expand the successor lists (algorithm-specific)."""

    # -- output ---------------------------------------------------------------

    def write_out(self, ctx: ExecutionContext) -> list[int]:
        """Write the expanded lists of the relevant nodes to disk.

        For a full query every expanded list is written; for a
        selection query only the source nodes' lists are (Section 4).
        Returns the nodes whose lists form the answer.
        """
        if ctx.query.is_full:
            output_nodes = list(ctx.topo_order)
        else:
            output_nodes = [s for s in ctx.query.sources or () if s in ctx.in_scope]
        if ctx.engine.supports(CAP_PAGE_COSTS):
            output_pages: set[PageId] = set()
            pages_of = ctx.store.pages_of
            for node in output_nodes:
                output_pages.update(pages_of(node))
            ctx.engine.flush_output(output_pages)

        lists_get = ctx.lists.get
        ctx.metrics.set_totals(
            distinct_tuples=sum(map(int.bit_count, ctx.lists.values())),
            output_tuples=sum(
                lists_get(node, 0).bit_count() for node in output_nodes
            ),
        )
        return output_nodes

    def _build_result(self, ctx: ExecutionContext, output_nodes: list[int]) -> ClosureResult:
        num_arcs = ctx.num_magic_arcs
        return ClosureResult(
            algorithm=self.name,
            query=ctx.query,
            system=ctx.system,
            metrics=ctx.metrics,
            successor_bits={node: ctx.lists.get(node, 0) for node in output_nodes},
            magic_height=ctx.height,
            magic_width=ctx.width,
            magic_max_level=ctx.max_level,
            magic_nodes=len(ctx.topo_order),
            magic_arcs=num_arcs,
        )
