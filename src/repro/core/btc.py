"""The BTC algorithm (Section 3.1 of the paper; Ioannidis et al. [12]).

Nodes are expanded in reverse topological order: when node ``i`` is
processed, the successor list of every successor of ``i`` is already
complete, so ``S_i`` is the union of ``{j} + S_j`` over the children
``j`` of ``i`` -- the *immediate successor optimisation*.

Children are processed in topological order, enabling the *marking
optimisation* [8, 10]: if child ``j`` is already in ``S_i`` when its
turn comes, an alternative path from ``i`` to ``j`` exists, the arc
``(i, j)`` is redundant, and the union of ``S_j`` can be skipped
entirely.  On a topologically sorted DAG the marked arcs are exactly
the arcs outside the transitive reduction [4].
"""

from __future__ import annotations

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext


class BtcAlgorithm(TwoPhaseAlgorithm):
    """Basic transitive closure over flat successor lists with marking."""

    name = "btc"

    def compute(self, ctx: ExecutionContext) -> None:
        position = ctx.position
        levels = ctx.levels
        adjacency = ctx.adjacency
        lists = ctx.lists
        acquired = ctx.acquired
        store = ctx.engine.store
        read_list = store.read_list
        length = store.length
        append = store.append
        # This loop performs one list union per unmarked arc -- the
        # whole algorithm.  The union of :meth:`ExecutionContext.
        # union_list` is inlined here and the counters accumulate in
        # locals, folded into ``metrics`` once at the end: the final
        # totals (and every storage call, in the same order) are
        # identical, nothing reads the counters mid-compute.
        arcs_considered = arcs_marked = locality = 0
        list_unions = tuple_io = generated = duplicates = 0
        for node in reversed(ctx.topo_order):
            children = sorted(adjacency[node], key=position.__getitem__)
            node_level = levels[node]
            node_list = lists[node]
            node_acquired = acquired[node]
            for child in children:
                arcs_considered += 1
                if (node_acquired >> child) & 1:
                    # An earlier child's list already contained this
                    # child: the arc is redundant -- mark and skip.
                    arcs_marked += 1
                    continue
                locality += node_level - levels[child]
                list_unions += 1
                read_list(child)
                source_bits = lists[child] | (1 << child)
                read_tuples = length(child)
                tuple_io += read_tuples
                generated += read_tuples
                added = (source_bits & ~node_list).bit_count()
                duplicates += read_tuples - added
                node_list |= source_bits
                node_acquired |= source_bits
                if added:
                    append(node, added)
            lists[node] = node_list
            acquired[node] = node_acquired
        ctx.metrics.fold(
            arcs_considered=arcs_considered,
            arcs_marked=arcs_marked,
            unmarked_locality_total=locality,
            list_unions=list_unions,
            list_reads=list_unions,
            tuple_io=tuple_io,
            tuples_generated=generated,
            duplicates=duplicates,
        )
