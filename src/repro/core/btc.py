"""The BTC algorithm (Section 3.1 of the paper; Ioannidis et al. [12]).

Nodes are expanded in reverse topological order: when node ``i`` is
processed, the successor list of every successor of ``i`` is already
complete, so ``S_i`` is the union of ``{j} + S_j`` over the children
``j`` of ``i`` -- the *immediate successor optimisation*.

Children are processed in topological order, enabling the *marking
optimisation* [8, 10]: if child ``j`` is already in ``S_i`` when its
turn comes, an alternative path from ``i`` to ``j`` exists, the arc
``(i, j)`` is redundant, and the union of ``S_j`` can be skipped
entirely.  On a topologically sorted DAG the marked arcs are exactly
the arcs outside the transitive reduction [4].
"""

from __future__ import annotations

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext


class BtcAlgorithm(TwoPhaseAlgorithm):
    """Basic transitive closure over flat successor lists with marking."""

    name = "btc"

    def compute(self, ctx: ExecutionContext) -> None:
        position = ctx.position
        for node in reversed(ctx.topo_order):
            children = sorted(ctx.adjacency[node], key=position.__getitem__)
            acquired = ctx.acquired
            metrics = ctx.metrics
            for child in children:
                metrics.arcs_considered += 1
                if (acquired[node] >> child) & 1:
                    # An earlier child's list already contained this
                    # child: the arc is redundant -- mark and skip.
                    metrics.arcs_marked += 1
                    continue
                metrics.unmarked_locality_total += ctx.arc_locality(node, child)
                ctx.union_list(node, child)
