"""The BFS algorithm, "BJ" (Section 3.3 of the paper; Jiang [18]).

Jiang's *single-parent optimisation*: given a multi-source query with
source set ``S``, a node ``j`` with a single parent ``i`` that is not
itself a source never needs its own successor list -- every path into
``j`` runs through ``i``.  The node is reduced to a sink: its children
are adopted by ``i`` and its outgoing arcs are deleted.  The expansion
then runs exactly like BTC on the reduced graph.

For a full closure every node is (conceptually) a source, so nothing
can be reduced and BJ is identical to BTC (Section 6.2).
"""

from __future__ import annotations

from repro.core.btc import BtcAlgorithm
from repro.core.context import ExecutionContext


class BjAlgorithm(BtcAlgorithm):
    """BTC plus the single-parent reduction of the magic graph."""

    name = "bj"
    # The single-parent reduction appends adopted children to (and
    # empties) adjacency rows, so BJ needs mutable list copies instead
    # of the zero-copy CSR rows the other algorithms read.
    mutates_adjacency = True

    def restructure(self, ctx: ExecutionContext) -> None:
        self.identify_scope(ctx)
        if not ctx.query.is_full:
            self._reduce_single_parents(ctx)
        self.sort_and_profile(ctx)
        self.build_lists(ctx)

    def _reduce_single_parents(self, ctx: ExecutionContext) -> None:
        """Reduce non-source single-parent nodes to sinks.

        Nodes are visited in a topological order of the magic graph so
        that cascading reductions (a chain of single-parent nodes) are
        all found in one sweep: adopting ``j``'s children into ``i``
        can lower a child's in-degree (when the child was already a
        child of ``i``), and can in turn make it reducible.
        """
        from repro.core.base import topological_sort_map

        adjacency = ctx.adjacency
        sources = set(ctx.query.sources or ())
        order = topological_sort_map(adjacency)

        parents: dict[int, set[int]] = {node: set() for node in adjacency}
        for node, children in adjacency.items():
            for child in children:
                parents[child].add(node)

        for node in order:
            if node in sources:
                continue
            if len(parents[node]) != 1:
                continue
            (parent,) = parents[node]
            # Adopt the node's children into its single parent; the
            # node keeps its place as a child of the parent but becomes
            # a sink.
            parent_children = set(adjacency[parent])
            for child in adjacency[node]:
                parents[child].discard(node)
                if child in parent_children:
                    continue
                parent_children.add(child)
                adjacency[parent].append(child)
                parents[child].add(parent)
            adjacency[node] = []
