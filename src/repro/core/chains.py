"""The chain-decomposition closure algorithm and reachability index.

A modern counterpoint to the study's 1994 suite, after Kritikakis &
Tollis (*Parameterized Linear Time Transitive Closure*, arXiv
2404.17954; *Fast and Practical DAG Decomposition with Reachability
Applications*, arXiv 2212.03945).  The magic graph is decomposed into
``k`` vertex-disjoint chains (:mod:`repro.graphs.chains`); every node
then stores a *k-vector* -- for each chain, the minimal position it can
reach in that chain, sparse entries only.  Because a node that reaches
position ``p`` of a chain also reaches every later position (chain
links are graph arcs), the vector is a complete reachability summary
in O(k) integers:

* ``reachable(u, v)`` is one vector lookup and one comparison;
* the full closure of ``u`` is the union of ``k`` chain suffixes,
  emitted without reading any other node's expanded list.

The vectors are built in one reverse-topological sweep -- node's
vector = elementwise minimum over its children's vectors, plus its own
(chain, position) entry -- with every vector read/write charged through
the :class:`~repro.storage.engine.StorageEngine` seam on dedicated
``CHAIN`` pages, so the paged engine prices the index build exactly
like every other family's computation.  Vector entries are (chain,
position) pairs, twice the width of a successor entry, so the store
uses the same 30x7 page geometry as the generalized closure's value
lists.

Two consumers share the machinery:

* :class:`ChainsAlgorithm` -- the registered ``chains`` family: builds
  the vectors, then expands them into ordinary successor lists so the
  result is tuple-identical to the other algorithms (and the standard
  write-out costs apply).
* :func:`build_chain_index` -- freezes the vectors into a
  :class:`ChainIndex` answering ``reachable``/``successors`` queries
  from plain dicts, touching no engine at query time (the serve
  layer's index format).  Cyclic inputs route through
  :mod:`repro.graphs.condensation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext
from repro.core.query import Query, SystemConfig
from repro.errors import CyclicGraphError, InvalidNodeError
from repro.graphs.chains import ChainDecomposition, decompose_chains
from repro.graphs.condensation import condensation
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.engine import CAP_PAGE_COSTS, ListStore, PageId, PageKind

VECTOR_BLOCK_CAPACITY = 7
"""(chain, position) entries per block: vector entries are twice the
size of the study's 4-byte successor entries, so a 30-block page holds
210 instead of 450 (the generalized closure's labelled-entry layout)."""


def _build_vectors(
    ctx: ExecutionContext, deco: ChainDecomposition
) -> tuple[ListStore, dict[int, dict[int, int]]]:
    """One reverse-topological sweep producing every node's k-vector.

    ``vectors[node][chain]`` is the minimal position ``node`` reaches in
    ``chain`` -- including ``node`` itself, so the node's own (chain,
    position) entry is always present and always the minimum for its
    own chain (a child reaching an earlier position of it would close a
    cycle).  Vector storage is charged on dedicated ``CHAIN`` pages.
    """
    vector_store = ctx.engine.make_list_store(
        PageKind.CHAIN,
        policy=ctx.system.list_policy,
        blocks_per_page=30,
        block_capacity=VECTOR_BLOCK_CAPACITY,
    )
    adjacency = ctx.adjacency
    levels = ctx.levels
    chain_of = deco.chain_of
    position_of = deco.position_of
    read_list = vector_store.read_list
    create_list = vector_store.create_list
    vectors: dict[int, dict[int, int]] = {}
    # Counters accumulate in locals and fold once after the sweep (the
    # totals, and every storage call in the same order, are identical).
    arcs_considered = locality = list_unions = 0
    tuple_io = generated = duplicates = 0
    for node in reversed(ctx.topo_order):
        vector: dict[int, int] = {}
        node_level = levels[node]
        for child in adjacency[node]:
            arcs_considered += 1
            locality += node_level - levels[child]
            list_unions += 1
            read_list(child)
            child_vector = vectors[child]
            entries = len(child_vector)
            tuple_io += entries
            generated += entries
            for chain_id, pos in child_vector.items():
                held = vector.get(chain_id)
                if held is None or pos < held:
                    vector[chain_id] = pos
                else:
                    duplicates += 1
        vector[chain_of[node]] = position_of[node]
        generated += 1
        vectors[node] = vector
        create_list(node, len(vector))
    ctx.metrics.fold(
        arcs_considered=arcs_considered,
        unmarked_locality_total=locality,
        list_unions=list_unions,
        list_reads=list_unions,
        tuple_io=tuple_io,
        tuples_generated=generated,
        duplicates=duplicates,
    )
    return vector_store, vectors


class ChainsAlgorithm(TwoPhaseAlgorithm):
    """Closure via chain decomposition and k-vector suffix expansion."""

    name = "chains"

    def __init__(self, refine: bool = True) -> None:
        self.refine = refine

    def compute(self, ctx: ExecutionContext) -> None:
        deco = decompose_chains(ctx.adjacency, ctx.topo_order, refine=self.refine)
        vector_store, vectors = _build_vectors(ctx, deco)
        self._emit_closure(ctx, deco, vectors, vector_store)

    def _emit_closure(
        self,
        ctx: ExecutionContext,
        deco: ChainDecomposition,
        vectors: dict[int, dict[int, int]],
        vector_store: ListStore,
    ) -> None:
        """Expand each vector into the node's flat successor list.

        Each closure is the union of at most ``k`` chain *suffixes*:
        reaching position ``p`` of a chain means reaching everything
        from ``p`` on.  Emission reads one vector per node -- never
        another node's expanded list -- which is the family's
        near-linear-output story; the new tuples are appended to the
        main successor store so the standard write-out prices them.
        """
        lists = ctx.lists
        acquired = ctx.acquired
        append = ctx.engine.store.append
        read_vector = vector_store.read_list
        chain_of = deco.chain_of
        # suffix[c][p] = bitset of chain c's members at positions >= p.
        suffix: list[list[int]] = []
        for chain in deco.chains:
            masks = [0] * (len(chain) + 1)
            for index in range(len(chain) - 1, -1, -1):
                masks[index] = masks[index + 1] | (1 << chain[index])
            suffix.append(masks)
        list_reads = tuple_io = generated = 0
        for node in reversed(ctx.topo_order):
            read_vector(node)
            vector = vectors[node]
            list_reads += 1
            tuple_io += len(vector)
            own = chain_of[node]
            bits = 0
            for chain_id, pos in vector.items():
                if chain_id == own:
                    # The own-chain entry includes the node itself;
                    # its successors start one position later.
                    pos += 1
                bits |= suffix[chain_id][pos]
            before = lists[node]
            added = (bits & ~before).bit_count()
            generated += added
            lists[node] = before | bits
            acquired[node] = acquired[node] | bits
            if added:
                append(node, added)
        ctx.metrics.fold(
            list_reads=list_reads,
            tuple_io=tuple_io,
            tuples_generated=generated,
        )


# -- the frozen queryable index ------------------------------------------------


@dataclass(frozen=True)
class ChainIndex:
    """A frozen chain-decomposition reachability index.

    Queries run entirely over the captured dicts: no storage engine is
    touched, so answering them is O(k) time and zero page I/O -- the
    index format the serve layer sits on.  ``metrics`` holds the build
    cost (the vectors' construction and flush under the engine the
    index was built with).

    For a cyclic input (``condensed`` true) the chains cover the
    condensation's component DAG and ``component_of``/``members``/
    ``self_loops`` translate original-node queries; reachability within
    a non-trivial component (or through a self-loop) is answered
    directly.
    """

    num_nodes: int
    chains: tuple[tuple[int, ...], ...]
    chain_of: dict[int, int]
    position_of: dict[int, int]
    vectors: dict[int, dict[int, int]]
    metrics: MetricSet
    condensed: bool = False
    component_of: tuple[int, ...] = ()
    members: tuple[tuple[int, ...], ...] = ()
    self_loops: frozenset[int] = field(default_factory=frozenset)

    @property
    def k(self) -> int:
        """Number of chains -- the index's width parameter."""
        return len(self.chains)

    def reachable(self, src: int, dst: int) -> bool:
        """Whether a nonempty path ``src -> dst`` exists, in O(1).

        ``src`` must be covered by the index (always, for a full build;
        inside the searched scope, for a ``sources=`` build); an
        uncovered ``dst`` is simply unreachable, because the indexed
        scope is closed under successors.
        """
        self._check_range(src)
        self._check_range(dst)
        if self.condensed:
            a: int = self.component_of[src]
            b: int = self.component_of[dst]
        else:
            a, b = src, dst
        vector = self.vectors.get(a)
        if vector is None:
            raise InvalidNodeError(
                f"source node {src} is not covered by this index"
            )
        if a == b:
            if not self.condensed:
                return False
            return len(self.members[a]) > 1 or src in self.self_loops
        target_chain = self.chain_of.get(b)
        if target_chain is None:
            return False
        held = vector.get(target_chain)
        if held is None:
            return False
        if target_chain == self.chain_of[a]:
            # The own-chain entry includes ``a`` itself.
            held += 1
        return held <= self.position_of[b]

    def successors(self, src: int) -> list[int]:
        """All nodes reachable from ``src`` (sorted), via suffix expansion."""
        self._check_range(src)
        if not self.condensed:
            return self._expand(src, src)
        comp = self.component_of[src]
        reached: set[int] = set()
        for other in self._expand(comp, src):
            reached.update(self.members[other])
        if len(self.members[comp]) > 1:
            reached.update(self.members[comp])
        elif src in self.self_loops:
            reached.add(src)
        return sorted(reached)

    def _check_range(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise InvalidNodeError(
                f"node {node} outside the graph's range 0..{self.num_nodes - 1}"
            )

    def _expand(self, indexed: int, src: int) -> list[int]:
        vector = self.vectors.get(indexed)
        if vector is None:
            raise InvalidNodeError(
                f"source node {src} is not covered by this index"
            )
        own = self.chain_of[indexed]
        out: list[int] = []
        for chain_id, pos in vector.items():
            if chain_id == own:
                pos += 1
            out.extend(self.chains[chain_id][pos:])
        return sorted(out)


class _ChainIndexBuilder(ChainsAlgorithm):
    """Index-only variant: build and flush the vectors, skip emission.

    Reuses the whole two-phase machinery (scope search, sorting, cost
    accounting) but keeps the decomposition and vectors on the instance
    for :func:`build_chain_index` to freeze; the write-out flushes the
    *vector* pages, because the vectors are this run's answer.
    """

    def __init__(self, refine: bool = True) -> None:
        super().__init__(refine)
        self.deco: ChainDecomposition | None = None
        self.vectors: dict[int, dict[int, int]] = {}
        self._vector_store: ListStore | None = None

    def build_lists(self, ctx: ExecutionContext) -> None:
        """Create the store lists but skip the child bitsets.

        The index build never expands successor lists -- ``compute``
        reads only the adjacency and the k-vectors, and ``write_out``
        flushes the vector pages -- so materialising the per-node child
        bitsets (O(n^2 / 8) bytes on a large local graph: each bitset's
        width is its highest child id) would be pure waste.  The store
        calls are identical to the base method, so the paged engine's
        page/cost counters are unchanged.
        """
        adjacency = ctx.adjacency
        create_list = ctx.store.create_list
        lists = ctx.lists
        acquired = ctx.acquired
        for node in reversed(ctx.topo_order):
            create_list(node, len(adjacency[node]))
            lists[node] = 0
            acquired[node] = 0

    def compute(self, ctx: ExecutionContext) -> None:
        self.deco = decompose_chains(ctx.adjacency, ctx.topo_order, refine=self.refine)
        self._vector_store, self.vectors = _build_vectors(ctx, self.deco)

    def write_out(self, ctx: ExecutionContext) -> list[int]:
        if ctx.engine.supports(CAP_PAGE_COSTS):
            store = self._vector_store
            assert store is not None  # compute() always ran first
            pages: set[PageId] = set()
            for node in ctx.topo_order:
                pages.update(store.pages_of(node))
            ctx.engine.flush_output(pages)
        total = sum(len(vector) for vector in self.vectors.values())
        ctx.metrics.set_totals(distinct_tuples=total, output_tuples=total)
        return []


def build_chain_index(
    graph: Digraph,
    sources: list[int] | None = None,
    system: SystemConfig | None = None,
    *,
    refine: bool = True,
) -> ChainIndex:
    """Build a frozen :class:`ChainIndex` over ``graph``.

    ``sources`` restricts the index to the nodes reachable from the
    given sources (the magic scope -- closed under successors, so every
    query whose source lies inside it is answerable).  Cyclic graphs
    are condensed first; ``system`` picks the engine and buffer
    configuration charged for the build.
    """
    try:
        return _build_dag_index(graph, sources, system, refine=refine)
    except CyclicGraphError:
        pass
    cond = condensation(graph)
    comp_sources: list[int] | None = None
    if sources is not None:
        seen: dict[int, None] = {}
        for node in sources:
            seen[cond.component_of[node]] = None
        comp_sources = list(seen)
    inner = _build_dag_index(cond.dag, comp_sources, system, refine=refine)
    return ChainIndex(
        num_nodes=graph.num_nodes,
        chains=inner.chains,
        chain_of=inner.chain_of,
        position_of=inner.position_of,
        vectors=inner.vectors,
        metrics=inner.metrics,
        condensed=True,
        component_of=tuple(cond.component_of),
        members=tuple(tuple(sorted(members)) for members in cond.members),
        self_loops=cond.self_loops,
    )


def _build_dag_index(
    graph: Digraph,
    sources: list[int] | None,
    system: SystemConfig | None,
    *,
    refine: bool,
) -> ChainIndex:
    builder = _ChainIndexBuilder(refine=refine)
    query = Query.full() if sources is None else Query.ptc(list(sources))
    result = builder.run(graph, query, system)
    deco = builder.deco
    assert deco is not None  # compute() always ran
    return ChainIndex(
        num_nodes=graph.num_nodes,
        chains=deco.chains,
        chain_of=deco.chain_of,
        position_of=deco.position_of,
        vectors=builder.vectors,
        metrics=result.metrics,
    )
