"""The Search algorithm, "SRCH" (Section 3.4 of the paper; cf. [14, 15]).

When the query names only a few source nodes, the overhead of
topologically sorting the magic graph and expanding every magic node
may not pay off.  SRCH simply searches the graph from each source node,
expanding *only* the source's successor list: a multi-source query with
k sources is treated as k single-source queries.

SRCH does **not** use the immediate successor optimisation: the list of
a source is unioned with the *immediate* successor list of every node
reached, so its union count grows with ``s`` times the size of the
reached subgraph -- which is why its cost deteriorates rapidly as the
number of source nodes grows (Figure 10, Section 6.3.6).

Following Section 4.1, the implementation extends the preprocessing
phase to build the source lists directly from the relation pages; the
computation phase is empty.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext
from repro.errors import ConfigurationError


class SearchAlgorithm(TwoPhaseAlgorithm):
    """One graph search per source node, over the raw relation."""

    name = "srch"

    def restructure(self, ctx: ExecutionContext) -> None:
        if ctx.query.is_full:
            raise ConfigurationError(
                "the Search algorithm computes selections; "
                "use Query.ptc(...) or pass every node as a source"
            )
        metrics = ctx.metrics
        adjacency: dict[int, Sequence[int]] = {}
        scope: set[int] = set()
        list_unions = tuple_io = arcs_considered = duplicates = 0

        for source in ctx.query.sources or ():
            ctx.store.create_list(source, 0)
            ctx.lists[source] = 0
            ctx.acquired[source] = 0
            reached_bits = 0
            stack = [source]
            visited = {source}
            while stack:
                node = stack.pop()
                children = ctx.engine.read_successors(node)
                if node not in adjacency:
                    # Rows are read-only here, so the engine's row (a
                    # zero-copy CSR view on the fast engine) is stored
                    # as-is instead of being copied per visit.
                    adjacency[node] = children
                scope.add(node)
                if children:
                    # Union of S_source with the *immediate* successor
                    # list of the reached node.
                    list_unions += 1
                    tuple_io += len(children)
                    arcs_considered += len(children)
                    bits = 0
                    for child in children:
                        bits |= 1 << child
                    added = (bits & ~reached_bits).bit_count()
                    duplicates += len(children) - added
                    reached_bits |= bits
                    if added:
                        ctx.store.append(source, added)
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append(child)
            ctx.lists[source] = reached_bits

        metrics.fold(
            list_unions=list_unions,
            list_reads=list_unions,
            tuple_io=tuple_io,
            tuples_generated=tuple_io,
            arcs_considered=arcs_considered,
            duplicates=duplicates,
        )
        # Fill in the context's scope/profile state so reports and the
        # locality metric are comparable with the other algorithms.
        ctx.adjacency = adjacency
        ctx.in_scope = scope
        self.sort_and_profile(ctx)
        metrics.set_totals(
            unmarked_locality_total=sum(
                ctx.levels[src] - ctx.levels[dst]
                for src, children in adjacency.items()
                for dst in children
            )
        )
        # Every arc of the searched subgraph is "considered" once per
        # source that traverses it; the locality average, however, is
        # over the distinct arcs, so align the denominator.
        self._distinct_arcs = sum(len(children) for children in adjacency.values())

    def compute(self, ctx: ExecutionContext) -> None:
        """All the work happened in the extended preprocessing phase."""

    def write_out(self, ctx: ExecutionContext) -> list[int]:
        output_nodes = super().write_out(ctx)
        # ``arcs_considered`` counts per-source traversals; rescale the
        # locality sum so ``avg_unmarked_locality`` reflects the
        # distinct-arc average (no arcs are ever marked by SRCH).
        metrics = ctx.metrics
        if self._distinct_arcs and metrics.arcs_considered:
            metrics.set_totals(
                unmarked_locality_total=round(
                    metrics.unmarked_locality_total
                    * (metrics.arcs_considered / self._distinct_arcs)
                )
            )
        return output_nodes
