"""The Compute_Tree algorithm, "JKB"/"JKB2" (Section 3.6; Jakobsson [15]).

Compute_Tree is a spanning-tree algorithm tailored to partial closure.
It differs from SPN in two ways:

* trees are built over the *arc-reversed* magic graph -- predecessor
  trees rather than successor trees; and
* a predecessor tree for node ``x`` holds only the *special* nodes: the
  source nodes that reach ``x``, plus branch nodes where two groups of
  previously unrelated sources first meet.  A special-node tree has at
  most ``2|S| - 1`` nodes, so the working set is tiny and becomes
  memory-resident as soon as the buffer pool allows (Figure 13).

Nodes of the magic graph are processed in topological order.  The tree
of ``x`` merges one contribution per magic parent ``p``: the (filtered
copy of the) tree of ``p``, placed under ``p`` itself when ``p`` is a
source.  Nodes already present anywhere in ``x``'s tree are pruned;
non-source interior nodes left with fewer than two children are spliced
out, keeping the tree minimal.  If more than one root remains after all
parents are merged, paths from unrelated source groups meet for the
first time at ``x`` itself, so ``x`` becomes a new branch (special)
node -- the "nearest common ancestor" of the reversed graph.

Because the trees are *partial* (only special nodes are stored), the
marking optimisation almost never applies -- a parent is rarely itself
a special node of the child's tree -- so JKB performs many more unions
than BTC, most of which contribute nothing (Section 6.3.3, Figure 10,
Figure 11).  This poor marking utilisation is exactly what makes JKB
lose to BTC on *wide* graphs while winning on narrow ones (Table 4).

The two implementations differ only in how the restructuring phase
obtains the immediate predecessor lists:

* ``JKB2`` assumes the dual representation -- an inverse relation
  clustered and indexed on the destination attribute -- and pays about
  twice BTC's preprocessing cost;
* ``JKB`` has only the source-clustered relation, modelled as an
  unclustered access path charging one scattered relation-page access
  per predecessor arc fetched, which blows up with the out-degree
  (Figure 7(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext
from repro.storage.page import PageId, PageKind
from repro.storage.successor_store import SuccessorListStore


@dataclass
class _SpecialTree:
    """A special-node predecessor tree for one magic-graph node."""

    root: "_TreeNode | None" = None
    ids: set[int] = field(default_factory=set)
    source_bits: int = 0

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def stored_entries(self) -> int:
        """On-disk entries: each node once, plus one marker per parent."""
        internal = sum(1 for _ in self._internal_nodes())
        return len(self.ids) + internal

    def _internal_nodes(self):
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.children:
                yield node
                stack.extend(node.children)


class _TreeNode:
    """One special node inside a predecessor tree."""

    __slots__ = ("id", "children")

    def __init__(self, node_id: int, children: list["_TreeNode"] | None = None) -> None:
        self.id = node_id
        self.children = children if children is not None else []


class ComputeTreeAlgorithm(TwoPhaseAlgorithm):
    """Jakobsson's Compute_Tree over special-node predecessor trees.

    ``dual_representation=True`` selects the JKB2 variant (inverse
    relation available); ``False`` selects plain JKB.
    """

    def __init__(self, dual_representation: bool = True) -> None:
        self.dual_representation = dual_representation
        self.name = "jkb2" if dual_representation else "jkb"
        self.needs_inverse = dual_representation

    # -- restructuring ------------------------------------------------------

    def restructure(self, ctx: ExecutionContext) -> None:
        self.identify_scope(ctx)
        self.sort_and_profile(ctx)
        self._build_predecessor_lists(ctx)

    def _build_predecessor_lists(self, ctx: ExecutionContext) -> None:
        """Materialise the immediate predecessor list of every magic node.

        The lists are fetched from the inverse relation (JKB2) or via
        scattered probes of the forward relation (JKB), converted to
        list format and written to a working file in topological order
        -- the computation phase reads each node's predecessor list
        back when it processes the node, so those pages compete with
        the tree pages for the buffer pool.
        """
        in_scope = ctx.in_scope
        predecessors: dict[int, list[int]] = {}
        pred_store = SuccessorListStore(ctx.pool, kind=PageKind.PREDECESSOR)
        for node in ctx.topo_order:
            all_preds = ctx.graph.predecessors(node)
            if self.dual_representation:
                if ctx.inverse_relation is not None and all_preds:
                    ctx.inverse_relation.read_predecessors(node, ctx.pool)
                    ctx.metrics.tuple_io += len(all_preds)
            else:
                # No inverse index: one scattered page access per
                # predecessor arc retrieved.
                ctx.relation.probe_arcs_unclustered(
                    len(all_preds), ctx.pool, seed_position=node
                )
                ctx.metrics.tuple_io += len(all_preds)
            magic_preds = [p for p in all_preds if p in in_scope]
            predecessors[node] = magic_preds
            pred_store.create_list(node, len(magic_preds))
        self._predecessors = predecessors
        self._pred_store = pred_store

    # -- computation ---------------------------------------------------------

    def compute(self, ctx: ExecutionContext) -> None:
        metrics = ctx.metrics
        position = ctx.position
        sources = set(ctx.query.sources or ctx.topo_order)
        trees: dict[int, _SpecialTree] = {}
        self._trees = trees

        for node in ctx.topo_order:
            tree = _SpecialTree()
            merged_roots: list[_TreeNode] = []
            if self._predecessors[node]:
                # Bring the node's materialised predecessor list in.
                self._pred_store.read_list(node)
            # Parents are merged latest-topological-position first: a
            # later parent's tree can contain an earlier parent (the
            # analogue of BTC's child ordering), giving the marking
            # test below its best chance -- which is still poor,
            # because only *special* parents ever appear in a tree.
            parents = sorted(
                self._predecessors[node], key=position.__getitem__, reverse=True
            )
            for parent in parents:
                metrics.arcs_considered += 1
                parent_tree = trees[parent]
                if parent in tree.ids:
                    # The parent itself is a special node already in
                    # this tree: the only case where the marking
                    # optimisation applies to partial lists.  Because
                    # trees store *only* special nodes, this is rare --
                    # the poor marking utilisation of Section 6.3.3.
                    metrics.arcs_marked += 1
                    continue
                metrics.unmarked_locality_total += ctx.arc_locality(parent, node)
                contribution = self._contribution(parent, parent_tree, sources)
                if contribution is None:
                    # The parent is a non-source with an empty tree:
                    # nothing can flow through this arc.
                    continue
                # Perform the union even when it cannot contribute any
                # new node (the paper's arc (j, d) example): the
                # parent's tree must still be brought into memory.
                metrics.list_unions += 1
                metrics.list_reads += 1
                if parent_tree.size:
                    ctx.store.read_list(parent)
                copied = self._merge(contribution, tree, sources, metrics)
                if copied is not None:
                    merged_roots.append(copied)

            if len(merged_roots) > 1:
                # Unrelated source groups meet for the first time here:
                # the node itself becomes a branch (special) node.
                tree.root = _TreeNode(node, merged_roots)
                tree.ids.add(node)
                if node in sources:
                    tree.source_bits |= 1 << node
                metrics.tuples_generated += 1
            elif merged_roots:
                tree.root = merged_roots[0]
            trees[node] = tree
            ctx.store.create_list(node, tree.stored_entries)
            ctx.lists[node] = 0  # flat lists are not used by JKB

    def _contribution(
        self, parent: int, parent_tree: _SpecialTree, sources: set[int]
    ) -> _TreeNode | None:
        """The tree a parent arc contributes: T(p), under p if p is a source."""
        if parent in sources:
            children = [parent_tree.root] if parent_tree.root is not None else []
            return _TreeNode(parent, children)
        return parent_tree.root

    def _merge(
        self,
        contribution: _TreeNode,
        tree: _SpecialTree,
        sources: set[int],
        metrics,
    ) -> "_TreeNode | None":
        """Copy the contribution into ``tree``, pruning and splicing.

        Returns the copied root (or its spliced replacement), or None
        when everything was already present.  The copy is bottom-up:
        only nodes that are still *special with respect to the new
        tree* survive -- sources not yet present, and interior nodes
        that still join two or more surviving groups.  Iterative
        post-order traversal: special trees can be ``2|S|`` deep.
        """
        # Each frame: (node, child_iterator, surviving_children).
        results: list[_TreeNode | None] = []
        stack: list[tuple[_TreeNode, int, list[_TreeNode]]] = [(contribution, 0, [])]
        while stack:
            node, child_index, surviving = stack[-1]
            if child_index == 0:
                metrics.tuple_io += 1
                if node.id in tree.ids:
                    # Present already, with every source that reaches it
                    # (see module docstring): a duplicate encounter --
                    # prune this whole subtree without deriving anything.
                    metrics.duplicates += 1
                    stack.pop()
                    results.append(None)
                    self._deliver(stack, results)
                    continue
            if child_index < len(node.children):
                stack[-1] = (node, child_index + 1, surviving)
                stack.append((node.children[child_index], 0, []))
                continue
            stack.pop()
            is_source = node.id in sources
            if not is_source and len(surviving) < 2:
                # A non-source interior node that no longer branches is
                # not special any more: splice it out.
                results.append(surviving[0] if surviving else None)
            else:
                # A new special node: one successful deduction.
                copy = _TreeNode(node.id, surviving)
                tree.ids.add(node.id)
                if is_source:
                    tree.source_bits |= 1 << node.id
                metrics.tuples_generated += 1
                results.append(copy)
            self._deliver(stack, results)
        return results[0]

    @staticmethod
    def _deliver(
        stack: list[tuple["_TreeNode", int, list["_TreeNode"]]],
        results: list["_TreeNode | None"],
    ) -> None:
        """Hand a finished child copy to its parent frame, if any."""
        if stack and results:
            child_copy = results.pop()
            if child_copy is not None:
                stack[-1][2].append(child_copy)

    # -- output -----------------------------------------------------------------

    def write_out(self, ctx: ExecutionContext) -> list[int]:
        """Assemble the answer by inverting the trees, then write it.

        Every tree is read once (cheap: the trees are tiny and usually
        memory-resident) and the successor list of each source node is
        written to the output file.
        """
        metrics = ctx.metrics
        answer: dict[int, int] = {}
        for node in ctx.topo_order:
            tree = self._trees[node]
            if tree.size:
                ctx.store.read_list(node)
            # A node can appear in its own tree as a branch (special)
            # node; it does not reach itself in an acyclic graph.
            bits = tree.source_bits & ~(1 << node)
            while bits:
                low = bits & -bits
                source = low.bit_length() - 1
                answer[source] = answer.get(source, 0) | (1 << node)
                bits ^= low

        output_store = SuccessorListStore(ctx.pool, kind=PageKind.OUTPUT)
        output_nodes = [s for s in ctx.query.sources or ctx.topo_order if s in ctx.in_scope]
        output_pages: set[PageId] = set()
        for source in output_nodes:
            bits = answer.get(source, 0)
            ctx.lists[source] = bits
            output_store.create_list(source, bits.bit_count())
            output_pages.update(output_store.pages_of(source))
        ctx.pool.flush_selected(output_pages)

        metrics.distinct_tuples = sum(tree.size for tree in self._trees.values())
        metrics.output_tuples = sum(
            ctx.lists.get(node, 0).bit_count() for node in output_nodes
        )
        return output_nodes
