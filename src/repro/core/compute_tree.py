"""The Compute_Tree algorithm, "JKB"/"JKB2" (Section 3.6; Jakobsson [15]).

Compute_Tree is a spanning-tree algorithm tailored to partial closure.
It differs from SPN in two ways:

* trees are built over the *arc-reversed* magic graph -- predecessor
  trees rather than successor trees; and
* a predecessor tree for node ``x`` holds only the *special* nodes: the
  source nodes that reach ``x``, plus branch nodes where two groups of
  previously unrelated sources first meet.  A special-node tree has at
  most ``2|S| - 1`` nodes, so the working set is tiny and becomes
  memory-resident as soon as the buffer pool allows (Figure 13).

Nodes of the magic graph are processed in topological order.  The tree
of ``x`` merges one contribution per magic parent ``p``: the (filtered
copy of the) tree of ``p``, placed under ``p`` itself when ``p`` is a
source.  Nodes already present anywhere in ``x``'s tree are pruned;
non-source interior nodes left with fewer than two children are spliced
out, keeping the tree minimal.  If more than one root remains after all
parents are merged, paths from unrelated source groups meet for the
first time at ``x`` itself, so ``x`` becomes a new branch (special)
node -- the "nearest common ancestor" of the reversed graph.

Because the trees are *partial* (only special nodes are stored), the
marking optimisation almost never applies -- a parent is rarely itself
a special node of the child's tree -- so JKB performs many more unions
than BTC, most of which contribute nothing (Section 6.3.3, Figure 10,
Figure 11).  This poor marking utilisation is exactly what makes JKB
lose to BTC on *wide* graphs while winning on narrow ones (Table 4).

The two implementations differ only in how the restructuring phase
obtains the immediate predecessor lists:

* ``JKB2`` assumes the dual representation -- an inverse relation
  clustered and indexed on the destination attribute -- and pays about
  twice BTC's preprocessing cost;
* ``JKB`` has only the source-clustered relation, modelled as an
  unclustered access path charging one scattered relation-page access
  per predecessor arc fetched, which blows up with the out-degree
  (Figure 7(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext
from repro.storage.engine import CAP_PAGE_COSTS, PageId, PageKind


# A tree node is a plain two-slot list ``[node_id, children]`` rather
# than a class: the merge loop below allocates and walks hundreds of
# thousands of these per run, and list construction/indexing is
# markedly cheaper than instance creation and attribute access.  The
# representation never leaves this module.
_TreeNode = list  # [int, list[_TreeNode]]


@dataclass
class _SpecialTree:
    """A special-node predecessor tree for one magic-graph node."""

    root: "_TreeNode | None" = None
    ids: set[int] = field(default_factory=set)
    source_bits: int = 0
    internal_count: int = 0
    """Number of nodes with at least one child.

    Maintained incrementally as nodes are created: a copied subtree is
    never restructured afterwards (later merges only add sibling
    subtrees), so a node's internal/leaf status is fixed at creation.
    """

    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def stored_entries(self) -> int:
        """On-disk entries: each node once, plus one marker per parent."""
        return len(self.ids) + self.internal_count


class ComputeTreeAlgorithm(TwoPhaseAlgorithm):
    """Jakobsson's Compute_Tree over special-node predecessor trees.

    ``dual_representation=True`` selects the JKB2 variant (inverse
    relation available); ``False`` selects plain JKB.
    """

    def __init__(self, dual_representation: bool = True) -> None:
        self.dual_representation = dual_representation
        self.name = "jkb2" if dual_representation else "jkb"
        self.needs_inverse = dual_representation

    # -- restructuring ------------------------------------------------------

    def restructure(self, ctx: ExecutionContext) -> None:
        self.identify_scope(ctx)
        self.sort_and_profile(ctx)
        self._build_predecessor_lists(ctx)

    def _build_predecessor_lists(self, ctx: ExecutionContext) -> None:
        """Materialise the immediate predecessor list of every magic node.

        The lists are fetched from the inverse relation (JKB2) or via
        scattered probes of the forward relation (JKB), converted to
        list format and written to a working file in topological order
        -- the computation phase reads each node's predecessor list
        back when it processes the node, so those pages compete with
        the tree pages for the buffer pool.
        """
        in_scope = ctx.in_scope
        predecessors: dict[int, list[int]] = {}
        pred_store = ctx.engine.make_list_store(PageKind.PREDECESSOR)
        charged = ctx.engine.supports(CAP_PAGE_COSTS)
        tuple_io = 0
        for node in ctx.topo_order:
            all_preds = ctx.graph.predecessors(node)
            if self.dual_representation:
                if all_preds:
                    ctx.engine.read_predecessors(node)
                    tuple_io += len(all_preds)
            else:
                # No inverse index: one scattered page access per
                # predecessor arc retrieved.
                if charged:
                    ctx.engine.probe_arcs_unclustered(
                        len(all_preds), seed_position=node
                    )
                tuple_io += len(all_preds)
            magic_preds = [p for p in all_preds if p in in_scope]
            predecessors[node] = magic_preds
            pred_store.create_list(node, len(magic_preds))
        ctx.metrics.fold(tuple_io=tuple_io)
        self._predecessors = predecessors
        self._pred_store = pred_store

    # -- computation ---------------------------------------------------------

    def compute(self, ctx: ExecutionContext) -> None:
        metrics = ctx.metrics
        position = ctx.position
        levels = ctx.levels
        lists = ctx.lists
        store = ctx.store
        store_read = store.read_list
        store_create = store.create_list
        pred_read = self._pred_store.read_list
        predecessors = self._predecessors
        merge = self._merge
        sources = set(ctx.query.sources or ctx.topo_order)
        trees: dict[int, _SpecialTree] = {}
        self._trees = trees
        # The per-arc counters accumulate in locals and fold into
        # ``metrics`` once at the end -- the final totals (and every
        # storage call, in the same order) are identical.
        arcs_considered = arcs_marked = locality = unions = branch_nodes = 0

        for node in ctx.topo_order:
            tree = _SpecialTree()
            tree_ids = tree.ids
            merged_roots: list[_TreeNode] = []
            preds = predecessors[node]
            if preds:
                # Bring the node's materialised predecessor list in.
                pred_read(node)
                node_level = levels[node]
                # Parents are merged latest-topological-position first:
                # a later parent's tree can contain an earlier parent
                # (the analogue of BTC's child ordering), giving the
                # marking test below its best chance -- which is still
                # poor, because only *special* parents ever appear in a
                # tree.
                parents = sorted(preds, key=position.__getitem__, reverse=True)
                for parent in parents:
                    arcs_considered += 1
                    parent_tree = trees[parent]
                    if parent in tree_ids:
                        # The parent itself is a special node already in
                        # this tree: the only case where the marking
                        # optimisation applies to partial lists.  Because
                        # trees store *only* special nodes, this is rare
                        # -- the poor marking utilisation of Section
                        # 6.3.3.
                        arcs_marked += 1
                        continue
                    locality += levels[parent] - node_level
                    # The tree a parent arc contributes: T(p), under p
                    # itself when p is a source.
                    parent_root = parent_tree.root
                    if parent in sources:
                        children = [parent_root] if parent_root is not None else []
                        contribution = [parent, children]
                    elif parent_root is not None:
                        contribution = parent_root
                    else:
                        # The parent is a non-source with an empty tree:
                        # nothing can flow through this arc.
                        continue
                    # Perform the union even when it cannot contribute
                    # any new node (the paper's arc (j, d) example): the
                    # parent's tree must still be brought into memory.
                    unions += 1
                    if parent_tree.ids:
                        store_read(parent)
                    copied = merge(contribution, tree, sources, metrics)
                    if copied is not None:
                        merged_roots.append(copied)

            if len(merged_roots) > 1:
                # Unrelated source groups meet for the first time here:
                # the node itself becomes a branch (special) node.
                tree.root = [node, merged_roots]
                tree.internal_count += 1
                tree_ids.add(node)
                if node in sources:
                    tree.source_bits |= 1 << node
                branch_nodes += 1
            elif merged_roots:
                tree.root = merged_roots[0]
            trees[node] = tree
            store_create(node, tree.stored_entries)
            lists[node] = 0  # flat lists are not used by JKB

        metrics.fold(
            arcs_considered=arcs_considered,
            arcs_marked=arcs_marked,
            unmarked_locality_total=locality,
            list_unions=unions,
            list_reads=unions,
            tuples_generated=branch_nodes,
        )

    def _merge(
        self,
        contribution: _TreeNode,
        tree: _SpecialTree,
        sources: set[int],
        metrics,
    ) -> "_TreeNode | None":
        """Copy the contribution into ``tree``, pruning and splicing.

        Returns the copied root (or its spliced replacement), or None
        when everything was already present.  The copy is bottom-up:
        only nodes that are still *special with respect to the new
        tree* survive -- sources not yet present, and interior nodes
        that still join two or more surviving groups.  Iterative
        post-order traversal: special trees can be ``2|S|`` deep.

        This is the single hottest loop of JKB/JKB2 (every parent arc
        walks a whole contribution tree), so the counters are kept in
        locals and folded into ``metrics`` once at the end -- the final
        totals are identical, phase-boundary readers never observe a
        partial merge.
        """
        tree_ids = tree.ids
        tuple_io = duplicates = generated = internal = 0
        source_bits = 0
        result: _TreeNode | None = None
        # The duplicate test runs *before* a node is pushed (or, for
        # leaves, visited inline), so a frame only ever holds a node
        # whose subtree is being copied -- pruned subtrees never
        # allocate a frame at all.
        tuple_io += 1
        if contribution[0] in tree_ids:
            # Present already, with every source that reaches it (see
            # module docstring): a duplicate encounter -- prune the
            # whole contribution without deriving anything.
            metrics.fold(tuple_io=tuple_io, duplicates=duplicates + 1)
            return None
        # Each frame: [node, next_child_index, surviving_children].
        # Leaves never get a frame of their own -- they are visited
        # inline while expanding their parent (the majority of tree
        # nodes are leaf sources, so this halves the traversal cost).
        stack = [[contribution, 0, []]]
        while stack:
            frame = stack[-1]
            node = frame[0]
            child_index = frame[1]
            children = node[1]
            n_children = len(children)
            while child_index < n_children:
                child = children[child_index]
                child_index += 1
                tuple_io += 1
                child_id = child[0]
                if child_id in tree_ids:
                    # Duplicate encounter: prune the whole subtree
                    # without descending.
                    duplicates += 1
                    continue
                grandchildren = child[1]
                if grandchildren:
                    frame[1] = child_index
                    stack.append([child, 0, []])
                    break
                # Inline leaf visit: no frame of its own.  A non-source
                # leaf is never special: spliced out.
                if child_id in sources:
                    tree_ids.add(child_id)
                    source_bits |= 1 << child_id
                    generated += 1
                    frame[2].append([child_id, []])
            else:
                # Every child is examined: the node's copy is decided.
                stack.pop()
                surviving = frame[2]
                node_id = node[0]
                is_source = node_id in sources
                if not is_source and len(surviving) < 2:
                    # A non-source interior node that no longer branches
                    # is not special any more: splice it out.
                    copy = surviving[0] if surviving else None
                else:
                    # A new special node: one successful deduction.
                    copy = [node_id, surviving]
                    if surviving:
                        internal += 1
                    tree_ids.add(node_id)
                    if is_source:
                        source_bits |= 1 << node_id
                    generated += 1
                if copy is not None:
                    if stack:
                        stack[-1][2].append(copy)
                    else:
                        result = copy
        metrics.fold(
            tuple_io=tuple_io, duplicates=duplicates, tuples_generated=generated
        )
        tree.source_bits |= source_bits
        tree.internal_count += internal
        return result

    # -- output -----------------------------------------------------------------

    def write_out(self, ctx: ExecutionContext) -> list[int]:
        """Assemble the answer by inverting the trees, then write it.

        Every tree is read once (cheap: the trees are tiny and usually
        memory-resident) and the successor list of each source node is
        written to the output file.
        """
        metrics = ctx.metrics
        trees = self._trees
        read_list = ctx.store.read_list
        answer: dict[int, int] = {}
        get = answer.get
        for node in ctx.topo_order:
            tree = trees[node]
            if tree.ids:
                read_list(node)
            # A node can appear in its own tree as a branch (special)
            # node; it does not reach itself in an acyclic graph.
            node_bit = 1 << node
            bits = tree.source_bits & ~node_bit
            while bits:
                low = bits & -bits
                source = low.bit_length() - 1
                answer[source] = get(source, 0) | node_bit
                bits ^= low

        output_store = ctx.engine.make_list_store(PageKind.OUTPUT)
        output_nodes = [s for s in ctx.query.sources or ctx.topo_order if s in ctx.in_scope]
        charged = ctx.engine.supports(CAP_PAGE_COSTS)
        output_pages: set[PageId] = set()
        output_tuples = 0
        lists = ctx.lists
        for source in output_nodes:
            bits = get(source, 0)
            lists[source] = bits
            count = bits.bit_count()
            output_tuples += count
            output_store.create_list(source, count)
            if charged:
                output_pages.update(output_store.pages_of(source))
        if charged:
            ctx.engine.flush_output(output_pages)

        metrics.set_totals(
            distinct_tuples=sum(len(tree.ids) for tree in trees.values()),
            output_tuples=output_tuples,
        )
        return output_nodes
