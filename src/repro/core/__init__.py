"""The paper's contribution: six transitive closure algorithms in a
uniform two-phase implementation framework (Sections 3 and 4).

All algorithms are variations of one base algorithm operating on
successor lists:

* :class:`~repro.core.btc.BtcAlgorithm` -- the basic algorithm with the
  marking optimisation (``"btc"``).
* :class:`~repro.core.hybrid.HybridAlgorithm` -- successor-list
  blocking with a pinned diagonal block (``"hyb"``).
* :class:`~repro.core.bfs.BjAlgorithm` -- Jiang's single-parent
  optimisation (``"bj"``).
* :class:`~repro.core.search.SearchAlgorithm` -- one search per source
  node (``"srch"``).
* :class:`~repro.core.spanning_tree.SpanningTreeAlgorithm` -- successor
  spanning trees (``"spn"``).
* :class:`~repro.core.compute_tree.ComputeTreeAlgorithm` -- Jakobsson's
  special-node predecessor trees, in the single-relation (``"jkb"``)
  and dual-representation (``"jkb2"``) variants.
* :class:`~repro.core.chains.ChainsAlgorithm` -- the modern
  chain-decomposition k-vector family (``"chains"``), which also backs
  the frozen :class:`~repro.core.chains.ChainIndex` query object.

Use :func:`~repro.core.registry.make_algorithm` to obtain an algorithm
by name, and :meth:`~repro.core.base.TwoPhaseAlgorithm.run` to execute
a query::

    from repro import make_algorithm, Query, SystemConfig, generate_dag

    graph = generate_dag(500, avg_out_degree=5, locality=100, seed=1)
    result = make_algorithm("btc").run(graph, Query.full(), SystemConfig(buffer_pages=20))
    print(result.metrics.total_io, result.num_tuples)
"""

from repro.core.base import TwoPhaseAlgorithm
from repro.core.bfs import BjAlgorithm
from repro.core.btc import BtcAlgorithm
from repro.core.chains import ChainIndex, ChainsAlgorithm, build_chain_index
from repro.core.compute_tree import ComputeTreeAlgorithm
from repro.core.hybrid import HybridAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.core.result import ClosureResult
from repro.core.search import SearchAlgorithm
from repro.core.spanning_tree import SpanningTreeAlgorithm

__all__ = [
    "ALGORITHM_NAMES",
    "BjAlgorithm",
    "BtcAlgorithm",
    "ChainIndex",
    "ChainsAlgorithm",
    "ClosureResult",
    "ComputeTreeAlgorithm",
    "HybridAlgorithm",
    "Query",
    "SearchAlgorithm",
    "SpanningTreeAlgorithm",
    "SystemConfig",
    "TwoPhaseAlgorithm",
    "build_chain_index",
    "make_algorithm",
]
