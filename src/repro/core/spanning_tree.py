"""The Spanning Tree algorithm, "SPN" (Section 3.5; Jakobsson [14],
Dar & Jagadish [6]).

Successor information is kept as successor *spanning trees* rather than
flat lists.  The structural information pays off during unions: when a
node ``u`` of the source tree is already present in the target, none of
``u``'s descendants need to be fetched -- they are guaranteed to be
present too (every node enters a tree together with its complete
successor subtree), so the whole subtree is pruned.

Storage-wise a successor tree is serialised with each parent (internal
node) stored once, followed by its children (Section 4.1), so a tree
occupies *more* entries than the equivalent flat list -- the overhead
shrinks as the out-degree grows, which is why SPN closes the gap with
BTC at high degrees in Figure 7(a).  Pruning reduces *tuple* I/O, but a
page is saved only when an entire block-aligned region of the source
tree is skipped; the paper found that almost always every page of the
source tree had to be accessed anyway, and this implementation models
exactly that: only the blocks containing visited entries are charged,
plus the tree's first block, which must always be read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TwoPhaseAlgorithm
from repro.core.context import ExecutionContext
from repro.storage.engine import BLOCK_CAPACITY, CAP_PAGE_COSTS


@dataclass
class _Tree:
    """One successor spanning tree and its serialised layout.

    ``index`` maps a graph node to the entry index of its copy in the
    tree's serialisation (parent markers occupy entries of their own,
    so indexes reflect the on-disk layout).  Entry indexes are final:
    a node's subtree is copied in one contiguous append and never
    receives later insertions -- only the implicit root gains new
    children across unions.
    """

    roots: list[int] = field(default_factory=list)
    children: dict[int, list[int]] = field(default_factory=dict)
    index: dict[int, int] = field(default_factory=dict)
    entry_count: int = 0


class SpanningTreeAlgorithm(TwoPhaseAlgorithm):
    """BTC's processing order and marking, over successor trees."""

    name = "spn"

    def build_lists(self, ctx: ExecutionContext) -> None:
        """Create *empty* lists: trees are built from scratch.

        Unlike the flat-list algorithms, the expanded tree of a node is
        not seeded with its immediate successors -- each child arrives
        together with its complete subtree during the union that
        processes it.  This is what makes subtree pruning sound: a node
        is in the membership set only if its entire successor set is.
        """
        self._trees: dict[int, _Tree] = {}
        for node in reversed(ctx.topo_order):
            ctx.store.create_list(node, 0)
            ctx.lists[node] = 0
            ctx.acquired[node] = 0
            self._trees[node] = _Tree()

    def compute(self, ctx: ExecutionContext) -> None:
        position = ctx.position
        metrics = ctx.metrics
        # Engines without a page-cost model ignore the per-union list of
        # visited blocks, so tracking it would be pure overhead.
        self._charged = ctx.engine.supports(CAP_PAGE_COSTS)
        arcs_considered = arcs_marked = locality = 0
        for node in reversed(ctx.topo_order):
            children = sorted(ctx.adjacency[node], key=position.__getitem__)
            for child in children:
                arcs_considered += 1
                if (ctx.lists[node] >> child) & 1:
                    # The child entered this tree inside an earlier
                    # child's subtree: the arc is redundant.
                    arcs_marked += 1
                    continue
                locality += ctx.arc_locality(node, child)
                self._union_tree(ctx, node, child)
        metrics.fold(
            arcs_considered=arcs_considered,
            arcs_marked=arcs_marked,
            unmarked_locality_total=locality,
        )

    # -- tree union --------------------------------------------------------------

    def _union_tree(self, ctx: ExecutionContext, target: int, child: int) -> None:
        """Graft ``child`` and the unpruned part of its tree onto ``target``."""
        charged = self._charged
        target_tree = self._trees[target]
        child_tree = self._trees[child]
        visited_blocks: set[int] = set()
        if charged and child_tree.entry_count:
            # The first page of the child's tree is always accessed.
            visited_blocks.add(0)

        appended_before = target_tree.entry_count
        # The child itself becomes a new root child of the target tree.
        self._copy_node(ctx, target, target_tree, parent=None, node=child)

        # DFS over the child's tree, pruning subtrees rooted at nodes
        # already present in the target.
        stack: list[tuple[int, int]] = [
            (root, child) for root in reversed(child_tree.roots)
        ]
        visited_tuples = 0
        duplicates = 0
        lists = ctx.lists
        child_index = child_tree.index
        child_children = child_tree.children
        visit_block = visited_blocks.add
        # _copy_node, inlined against local aliases of the target
        # tree's structures (this loop copies every unpruned node).
        target_bits = lists[target]
        t_children = target_tree.children
        t_index = target_tree.index
        entry_count = target_tree.entry_count
        while stack:
            node, parent = stack.pop()
            if charged:
                # The engine charges per block of the serialised source
                # tree that holds a visited entry.
                visit_block(child_index[node] // BLOCK_CAPACITY)
            visited_tuples += 1
            if (target_bits >> node) & 1:
                # Present already -- together with its whole subtree;
                # prune without descending.
                duplicates += 1
                continue
            siblings = t_children.setdefault(parent, [])
            if not siblings:
                # The parent just became internal: it is stored once as
                # a parent marker ahead of its child run.
                entry_count += 1
            siblings.append(node)
            t_index[node] = entry_count
            entry_count += 1
            target_bits |= 1 << node
            grandchildren = child_children.get(node)
            if grandchildren:
                for grandchild in reversed(grandchildren):
                    stack.append((grandchild, node))
        lists[target] = target_bits
        target_tree.entry_count = entry_count

        # One tree union charges like one list union: one list I/O,
        # ``visited_tuples`` entries read and generated.
        ctx.metrics.count_union(visited_tuples, duplicates)

        ctx.store.read_blocks(child, sorted(visited_blocks))
        appended = target_tree.entry_count - appended_before
        if appended:
            ctx.store.append(target, appended)

    def _copy_node(
        self,
        ctx: ExecutionContext,
        target: int,
        tree: _Tree,
        parent: int | None,
        node: int,
    ) -> None:
        """Append one node to the target tree's structure and layout."""
        if parent is None:
            tree.roots.append(node)
        else:
            siblings = tree.children.setdefault(parent, [])
            if not siblings:
                # The parent just became internal: it is stored once as
                # a parent marker ahead of its child run.
                tree.entry_count += 1
            siblings.append(node)
        tree.index[node] = tree.entry_count
        tree.entry_count += 1
        ctx.lists[target] |= 1 << node
