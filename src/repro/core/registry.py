"""Algorithm registry: the paper's candidate suite by name.

The names follow Section 4.1 of the paper:

========  ==========================================================
``btc``   basic algorithm with the marking optimisation (Section 3.1)
``hyb``   Hybrid algorithm with diagonal blocking (Section 3.2)
``bj``    BFS algorithm / single-parent optimisation (Section 3.3)
``srch``  Search algorithm, one search per source node (Section 3.4)
``spn``   Spanning Tree algorithm (Section 3.5)
``jkb``   Compute_Tree, single source-clustered relation (Section 3.6)
``jkb2``  Compute_Tree with the dual representation (Section 4.1)
``chains``  chain-decomposition k-vector index (Kritikakis & Tollis)
========  ==========================================================

``chains`` post-dates the paper -- it is the modern comparison family
(see :mod:`repro.core.chains`), run through the same two-phase
framework and cost model as the 1994 suite.

Algorithm objects are cheap, stateless-between-runs factories; create a
fresh one per run if in doubt.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.base import TwoPhaseAlgorithm
from repro.core.bfs import BjAlgorithm
from repro.core.btc import BtcAlgorithm
from repro.core.chains import ChainsAlgorithm
from repro.core.compute_tree import ComputeTreeAlgorithm
from repro.core.hybrid import HybridAlgorithm
from repro.core.search import SearchAlgorithm
from repro.core.spanning_tree import SpanningTreeAlgorithm
from repro.errors import UnknownAlgorithmError

_FACTORIES: dict[str, Callable[[], TwoPhaseAlgorithm]] = {
    "btc": BtcAlgorithm,
    "hyb": HybridAlgorithm,
    "bj": BjAlgorithm,
    "srch": SearchAlgorithm,
    "spn": SpanningTreeAlgorithm,
    "jkb": lambda: ComputeTreeAlgorithm(dual_representation=False),
    "jkb2": lambda: ComputeTreeAlgorithm(dual_representation=True),
    "chains": ChainsAlgorithm,
}

ALGORITHM_NAMES: tuple[str, ...] = tuple(_FACTORIES)
"""All registered algorithm names, in the paper's order."""


def make_algorithm(name: str) -> TwoPhaseAlgorithm:
    """Instantiate an algorithm by its paper name (case-insensitive)."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        valid = ", ".join(ALGORITHM_NAMES)
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; valid names: {valid}"
        )
    return factory()
