"""Execution context: wires graph, query, engine and metrics together.

One :class:`ExecutionContext` is created per algorithm run.  It builds
the run's :class:`~repro.storage.engine.StorageEngine` (the paged
substrate by default, or the in-memory fast backend) and carries the
state the shared restructuring phase produces: the magic-graph scope,
the topological order, node levels and the initial adjacency (which the
BJ algorithm's single-parent reduction is allowed to rewrite).  All
storage is owned by the engine; the algorithms reach it through
``ctx.engine`` and the shared cost-accounting helpers here.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.chaos.audit import make_auditor
from repro.core.query import Query, SystemConfig
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.obs.spans import SpanRecorder
from repro.obs.tracing import TraceCollector
from repro.storage.engine import CAP_AUDIT, StorageEngine, make_engine
from repro.storage.iostats import Phase
from repro.storage.trace import PageTrace


class ExecutionContext:
    """All the state of one algorithm execution."""

    def __init__(
        self,
        graph: Digraph,
        query: Query,
        system: SystemConfig,
        needs_inverse: bool = False,
        recorder: SpanRecorder | None = None,
        trace: PageTrace | None = None,
        collector: TraceCollector | None = None,
    ) -> None:
        self.graph = graph
        self.query = query
        self.system = system
        self.metrics = MetricSet()
        self.recorder = recorder
        self.trace = trace
        self.collector = collector
        # The invariant auditor (repro.chaos.audit): None when audit
        # mode is "off", cheap end-of-run checks by default, plus
        # after-every-eviction pool checks in "strict" mode.  A pure
        # observer -- page-I/O counts are identical with or without it.
        self.auditor = make_auditor()
        self.engine: StorageEngine = make_engine(
            system,
            graph,
            metrics=self.metrics,
            needs_inverse=needs_inverse,
            recorder=recorder,
            trace=trace,
            auditor=self.auditor,
            collector=collector,
        )
        if self.auditor is not None and not self.engine.supports(CAP_AUDIT):
            # An *explicitly* requested audit was already refused by the
            # engine's constructor.  The implicit cheap auditor has
            # nothing left to check here -- this engine never touches
            # the counters or substrate it covers -- so it does not
            # attach at all (capability honesty, not a silent no-op).
            self.auditor = None

        # Populated by the restructuring phase:
        self.topo_order: list[int] = []
        """Magic-graph nodes in topological order."""
        self.position: dict[int, int] = {}
        """Topological position of each magic node."""
        self.in_scope: set[int] = set()
        """The magic graph's node set (all nodes for a full query)."""
        self.levels: dict[int, int] = {}
        """Node levels of the magic graph (rectangle model, Section 5.3)."""
        self.adjacency: dict[int, Sequence[int]] = {}
        """Per-node children within the magic graph.

        Rows are zero-copy CSR :class:`~repro.graphs.digraph.ArcView`
        windows for read-only algorithms, or fresh mutable lists when
        the algorithm declares ``mutates_adjacency`` (only BJ does).
        """
        self.num_magic_arcs: int = 0
        """Arc count of the magic graph, frozen when the scope is sorted."""
        self.lists: dict[int, int] = {}
        """Successor-list contents as bitsets (bit j set = j in the list)."""
        self.acquired: dict[int, int] = {}
        """Bits acquired through unions; the marking test consults this."""
        self.height: float = 0.0
        """H of the magic graph (rectangle model)."""
        self.width: float = 0.0
        """W of the magic graph (rectangle model)."""
        self.max_level: int = 0
        """Maximum node level of the magic graph."""

    # -- engine component views (read-only conveniences) ---------------------

    @property
    def store(self):
        """The engine's main successor-list store."""
        return self.engine.store

    @property
    def pool(self):
        """The paged engine's buffer pool (None under the fast engine)."""
        return getattr(self.engine, "pool", None)

    @property
    def relation(self):
        """The paged engine's arc relation (None under the fast engine)."""
        return getattr(self.engine, "relation", None)

    @property
    def inverse_relation(self):
        """The paged engine's inverse relation, when materialised."""
        return getattr(self.engine, "inverse_relation", None)

    # -- phase bookkeeping -------------------------------------------------

    def enter_phase(self, phase: Phase) -> None:
        """Switch the I/O accounting to a new execution phase.

        Phase transitions are also the auditor's counter checkpoints:
        totals must be monotone and requests must equal hits plus
        physical reads at every boundary.
        """
        if self.auditor is not None:
            self.auditor.check_counters(self.metrics.io)
        self.metrics.io.phase = phase
        if self.collector is not None:
            self.collector.phase = phase.value

    # -- shared helpers used by the algorithms ------------------------------

    def sources(self) -> tuple[int, ...]:
        """The query's source nodes (all scope nodes for a full query)."""
        if self.query.sources is not None:
            return self.query.sources
        return tuple(self.topo_order)

    def arc_locality(self, src: int, dst: int) -> int:
        """``level(src) - level(dst)`` for an arc of the magic graph."""
        return self.levels[src] - self.levels[dst]

    def union_list(self, target: int, child: int) -> None:
        """Union ``{child} + S_child`` into ``S_target`` (flat lists).

        Performs the full cost accounting of one successor-list union:
        the child's list is read (page touches plus one list I/O), its
        tuples are counted as generated (deductions), duplicates are
        counted against the target's current contents, and the newly
        added successors are appended to the target's list in the
        engine's store.
        """
        store = self.engine.store
        lists = self.lists
        store.read_list(child)

        source_bits = lists[child] | (1 << child)
        read_tuples = store.length(child)

        before = lists[target]
        # ``child`` itself is an immediate successor already present in
        # the target's restructured list, so only the child's proper
        # successor list can contribute new entries.
        added = (source_bits & ~before).bit_count()
        self.metrics.count_union(read_tuples, read_tuples - added)

        lists[target] = before | source_bits
        acquired = self.acquired
        acquired[target] = acquired.get(target, 0) | source_bits
        if added:
            store.append(target, added)
