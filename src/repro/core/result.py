"""The result of one algorithm execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import Query, SystemConfig
from repro.graphs.analysis import bitset_to_nodes
from repro.metrics.counters import MetricSet


@dataclass
class ClosureResult:
    """Answer tuples plus the full cost profile of the run.

    ``successor_bits`` maps each answered node to a bitset of its
    proper successors (bit ``j`` set means the tuple ``(node, j)`` is
    in the answer).  For a full-closure query every node of the graph
    is answered; for a selection query only the source nodes are.
    """

    algorithm: str
    query: Query
    system: SystemConfig
    metrics: MetricSet
    successor_bits: dict[int, int] = field(default_factory=dict)
    magic_height: float = 0.0
    magic_width: float = 0.0
    magic_max_level: int = 0
    magic_nodes: int = 0
    magic_arcs: int = 0

    def successors_of(self, node: int) -> list[int]:
        """The sorted successors of ``node`` in the answer."""
        return bitset_to_nodes(self.successor_bits.get(node, 0))

    def tuples(self) -> list[tuple[int, int]]:
        """All answer tuples, sorted.  Intended for tests and examples;
        for the paper-scale closures prefer :attr:`successor_bits`.
        """
        pairs = []
        for node in sorted(self.successor_bits):
            for successor in bitset_to_nodes(self.successor_bits[node]):
                pairs.append((node, successor))
        return pairs

    @property
    def num_tuples(self) -> int:
        """Size of the answer (number of (source, successor) pairs)."""
        return sum(bits.bit_count() for bits in self.successor_bits.values())

    def reaches(self, src: int, dst: int) -> bool:
        """Whether the answer contains the tuple (src, dst)."""
        return bool((self.successor_bits.get(src, 0) >> dst) & 1)
