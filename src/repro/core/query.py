"""Query and system configuration types.

A :class:`Query` is either the *full* transitive closure (CTC) or a
*partial* transitive closure (PTC) with an explicit set of source nodes
(Section 2 of the paper).  A :class:`SystemConfig` captures the system
parameters of Section 5.1: buffer pool size, page replacement policy,
list placement policy, and the Hybrid algorithm's ILIMIT ratio.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.engine import (
    BLOCK_CAPACITY,
    BLOCKS_PER_PAGE,
    ENGINE_NAMES,
    ListPlacementPolicy,
    default_engine,
)


@dataclass(frozen=True)
class Query:
    """A reachability query: full closure, or closure of given sources.

    ``sources is None`` means the full transitive closure of the graph;
    otherwise the query asks for all successors of each source node
    (a multi-source partial transitive closure).
    """

    sources: tuple[int, ...] | None = None

    @classmethod
    def full(cls) -> "Query":
        """The full transitive closure query (CTC)."""
        return cls(sources=None)

    @classmethod
    def ptc(cls, sources: Iterable[int]) -> "Query":
        """A partial transitive closure query over ``sources``.

        Duplicate sources are collapsed; order is preserved.
        """
        unique = tuple(dict.fromkeys(sources))
        if not unique:
            raise ConfigurationError("a PTC query needs at least one source node")
        return cls(sources=unique)

    @property
    def is_full(self) -> bool:
        """Whether this query computes the complete closure."""
        return self.sources is None

    @property
    def selectivity(self) -> int | None:
        """The number of source nodes (``s`` in the paper), or None for CTC."""
        return None if self.sources is None else len(self.sources)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_full:
            return "Query.full()"
        return f"Query.ptc(s={len(self.sources or ())})"


@dataclass(frozen=True)
class SystemConfig:
    """The system parameters of one experiment (Section 5.1).

    Attributes
    ----------
    buffer_pages:
        Size of the buffer pool ``M`` (the paper uses 10, 20 and 50).
    page_policy:
        Page replacement policy name (``lru``, ``mru``, ``fifo``,
        ``clock``, ``random``).
    list_policy:
        List placement policy applied on page splits.
    ilimit:
        Fraction of the buffer pool reserved for the Hybrid algorithm's
        diagonal block; 0 disables blocking (making Hybrid identical to
        BTC, as in Figure 6's ``HYB-0`` curve).  Ignored by the other
        algorithms.
    policy_seed:
        Seed for the ``random`` replacement policy.
    blocks_per_page / block_capacity:
        Successor-list page geometry.  Defaults to the paper's 30
        blocks of 15 successors; the block-size ablation benchmark
        sweeps these.
    engine:
        Storage engine name (see :mod:`repro.storage.engine`):
        ``"paged"`` is the paper-faithful simulated substrate,
        ``"fast"`` the in-memory backend with no page simulation.  An
        empty string (the default) resolves at construction time to
        the process default (``--engine`` flags / ``REPRO_ENGINE`` /
        ``"paged"``), so the resolved name travels with pickled
        configs to worker processes.
    """

    buffer_pages: int = 20
    page_policy: str = "lru"
    list_policy: ListPlacementPolicy = ListPlacementPolicy.MOVE_SELF
    ilimit: float = 0.2
    policy_seed: int = 0
    blocks_per_page: int = BLOCKS_PER_PAGE
    block_capacity: int = BLOCK_CAPACITY
    engine: str = ""

    def __post_init__(self) -> None:
        if not self.engine:
            object.__setattr__(self, "engine", default_engine())
        if self.engine not in ENGINE_NAMES:
            valid = ", ".join(ENGINE_NAMES)
            raise ConfigurationError(
                f"unknown storage engine {self.engine!r}; valid engines: {valid}"
            )
        if self.buffer_pages <= 0:
            raise ConfigurationError(
                f"buffer_pages must be positive, got {self.buffer_pages}"
            )
        if not 0.0 <= self.ilimit <= 1.0:
            raise ConfigurationError(f"ilimit must be in [0, 1], got {self.ilimit}")
        if self.blocks_per_page <= 0 or self.block_capacity <= 0:
            raise ConfigurationError(
                "blocks_per_page and block_capacity must both be positive"
            )
        if isinstance(self.list_policy, str):
            object.__setattr__(self, "list_policy", ListPlacementPolicy(self.list_policy))
