"""Schmitz's algorithm (related work, Section 8; Schmitz [23]).

Schmitz improved Tarjan's SCC algorithm into a transitive closure
algorithm: one depth-first traversal detects strongly connected
components and computes each component's successor set as it is
completed -- every member of a component shares one set, and an arc
leaving a component always points into an already-completed component,
so the union can always reuse finished sets.

Two properties distinguish it from BTC in the study's terms:

* it needs no separate condensation step -- cyclic inputs are handled
  in the same pass (the reason we include it as a cyclic-capable
  member of the suite); but
* it expands in DFS completion order without the topological-sort
  marking optimisation, so it performs one union per arc.  Ioannidis
  et al. [12] measured Schmitz against BTC and found BTC better on
  both I/O and CPU overall; ``benchmarks/bench_baselines.py`` checks
  that ordering here.

Selections are supported naturally: the DFS simply starts from the
source nodes, so only the magic subgraph is traversed.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.engine import (
    CAP_PAGE_COSTS,
    ListStore,
    PageId,
    PageKind,
    make_engine,
)
from repro.storage.iostats import Phase


class SchmitzAlgorithm:
    """One-pass SCC-merging transitive closure (cyclic inputs welcome)."""

    name = "schmitz"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        engine = make_engine(system, graph, metrics=metrics)
        store = engine.make_list_store(PageKind.SUCCESSOR, policy=system.list_policy)
        start = time.process_time()

        metrics.io.phase = Phase.RESTRUCTURE
        if query.is_full:
            roots = list(graph.nodes())
            engine.scan_relation()
        else:
            roots = list(query.sources or ())
            # Arcs are fetched on first visit during the DFS below; the
            # restructuring phase for a selection is the search itself.

        metrics.io.phase = Phase.COMPUTE
        n = graph.num_nodes
        UNVISITED = -1
        index_of = [UNVISITED] * n
        lowlink = [0] * n
        on_stack = [False] * n
        component_of = [UNVISITED] * n
        scc_stack: list[int] = []
        counter = 0
        component_sets: dict[int, int] = {}
        component_members: dict[int, list[int]] = {}
        next_component = 0
        fetched: set[int] = set()

        def children_of(node: int) -> list[int]:
            if not query.is_full and node not in fetched:
                fetched.add(node)
                engine.read_successors(node)
            return graph.successors(node)

        for root in roots:
            if not 0 <= root < n:
                from repro.errors import InvalidNodeError

                raise InvalidNodeError(f"source node {root} out of range")
            if index_of[root] != UNVISITED:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index_of[node] = lowlink[node] = counter
                    counter += 1
                    scc_stack.append(node)
                    on_stack[node] = True
                children = children_of(node)
                descended = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if index_of[child] == UNVISITED:
                        work[-1] = (node, child_index)
                        work.append((child, 0))
                        descended = True
                        break
                    if on_stack[child] and index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
                if lowlink[node] == index_of[node]:
                    members = []
                    while True:
                        member = scc_stack.pop()
                        on_stack[member] = False
                        component_of[member] = next_component
                        members.append(member)
                        if member == node:
                            break
                    self._complete_component(
                        next_component,
                        members,
                        graph,
                        component_of,
                        component_sets,
                        store,
                        metrics,
                    )
                    component_members[next_component] = members
                    next_component += 1

        metrics.io.phase = Phase.WRITEOUT
        if query.is_full:
            output_nodes = list(graph.nodes())
        else:
            output_nodes = list(dict.fromkeys(query.sources or ()))
        successor_bits = {
            node: component_sets[component_of[node]] for node in output_nodes
        }
        if engine.supports(CAP_PAGE_COSTS):
            output_pages: set[PageId] = set()
            for node in output_nodes:
                output_pages.update(store.pages_of(component_of[node]))
            engine.flush_output(output_pages)
        metrics.set_totals(
            distinct_tuples=sum(
                bits.bit_count() * len(component_members[comp])
                for comp, bits in component_sets.items()
            ),
            output_tuples=sum(
                bits.bit_count() for bits in successor_bits.values()
            ),
            cpu_seconds=time.process_time() - start,
        )

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits=successor_bits,
        )

    def _complete_component(
        self,
        comp_id: int,
        members: list[int],
        graph: Digraph,
        component_of: list[int],
        component_sets: dict[int, int],
        store: ListStore,
        metrics: MetricSet,
    ) -> None:
        """Build the shared successor set of a finished component.

        Every arc out of the component points into a completed
        component (Tarjan invariant), so each distinct target
        component's set is unioned in exactly once.
        """
        bits = 0
        has_internal_arc = False
        seen_components: set[int] = set()
        read_list = store.read_list
        successors = graph.successors
        # The per-arc counters accumulate in locals and fold into
        # ``metrics`` once at the end -- the final totals (and every
        # storage call, in the same order) are identical.
        arcs_considered = arcs_marked = unions = 0
        tuple_io = generated = duplicates = 0
        for member in members:
            for child in successors(member):
                child_comp = component_of[child]
                if child_comp == comp_id:
                    has_internal_arc = True
                    continue
                arcs_considered += 1
                if child_comp in seen_components:
                    # The target component's set is here already; only
                    # the member arc's endpoint may be new.
                    arcs_marked += 1
                    bits |= 1 << child
                    continue
                seen_components.add(child_comp)
                unions += 1
                read_list(child_comp)
                comp_bits = component_sets[child_comp]
                child_bits = comp_bits | (1 << child)
                read = comp_bits.bit_count()
                tuple_io += read
                generated += read
                added = (child_bits & ~bits).bit_count()
                duplicates += read - min(read, added)
                bits |= child_bits
        if len(members) > 1 or has_internal_arc:
            for member in members:
                bits |= 1 << member
        component_sets[comp_id] = bits
        store.create_list(comp_id, bits.bit_count())
        metrics.fold(
            arcs_considered=arcs_considered,
            arcs_marked=arcs_marked,
            list_unions=unions,
            list_reads=unions,
            tuple_io=tuple_io,
            tuples_generated=generated,
            duplicates=duplicates,
        )
