"""Warren's matrix algorithm (related work, Section 8).

Warren [26] modified Warshall's algorithm [27] into two row-major
passes over a boolean adjacency matrix:

* pass 1: for each row ``i``, for each ``j < i`` with ``M[i][j]`` set,
  OR row ``j`` into row ``i`` (uses only rows above the diagonal's
  left part -- already final for this pass);
* pass 2: the same for ``j > i``.

After both passes ``M`` is the transitive closure.  The algorithm is
correct for cyclic graphs as well, so it needs no condensation.

On disk the matrix is paged row-major: a 2048-byte page holds
``PAGE_SIZE * 8 // n`` rows (for the paper's n = 2000 that is 8 rows
per page and a 250-page matrix -- far larger than the 10-50 page buffer
pools, which is why the earlier studies [12, 19] found the matrix
algorithms an order of magnitude worse than the graph-based ones).
Row accesses go through the buffer pool, so locality across the passes
is captured exactly; this models the "Blocked Warren" behaviour, with
the buffer pool as the block.

Selections are supported the way a matrix algorithm supports them:
the full closure is computed and only the requested rows are output --
which is precisely why these algorithms lose on high-selectivity
queries (Section 8).
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.buffer import BufferPool, make_policy
from repro.storage.iostats import Phase
from repro.storage.page import PAGE_SIZE, PageId, PageKind
from repro.storage.relation import ArcRelation


class WarrenAlgorithm:
    """Warren's two-pass bit-matrix transitive closure."""

    name = "warren"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        pool = BufferPool(
            system.buffer_pages,
            stats=metrics.io,
            policy=make_policy(system.page_policy, seed=system.policy_seed),
        )
        n = graph.num_nodes
        rows_per_page = max(1, (PAGE_SIZE * 8) // max(1, n))
        start = time.process_time()

        def row_page(row: int) -> PageId:
            return PageId(PageKind.SUCCESSOR, row // rows_per_page)

        # Load phase: build the matrix from a relation scan.
        metrics.io.phase = Phase.RESTRUCTURE
        ArcRelation(graph).scan(pool)
        matrix = [0] * n
        for src, dst in graph.arcs():
            matrix[src] |= 1 << dst
        for row in range(n):
            pool.access(row_page(row), dirty=True)

        # Warren's two passes.
        metrics.io.phase = Phase.COMPUTE
        for below_diagonal in (True, False):
            for i in range(n):
                pool.access(row_page(i))
                # Warren scans j in increasing order over the *current*
                # row: bits set by earlier unions in the same scan are
                # picked up when the scan reaches them, bits at or
                # before the current j are never revisited.
                scanned = 0  # mask of positions <= current j
                while True:
                    if below_diagonal:
                        region = matrix[i] & ((1 << i) - 1)  # j < i
                    else:
                        region = (matrix[i] >> (i + 1)) << (i + 1)  # j > i
                    remaining = region & ~scanned
                    if not remaining:
                        break
                    low = remaining & -remaining
                    j = low.bit_length() - 1
                    scanned |= (low << 1) - 1
                    pool.access(row_page(j))
                    before = matrix[i]
                    metrics.list_unions += 1
                    metrics.tuples_generated += matrix[j].bit_count()
                    matrix[i] = before | matrix[j]
                    added = (matrix[i] & ~before).bit_count()
                    metrics.duplicates += matrix[j].bit_count() - added
                    if added:
                        pool.access(row_page(i), dirty=True)

        metrics.io.phase = Phase.WRITEOUT
        if query.is_full:
            output_rows = list(range(n))
        else:
            output_rows = list(query.sources or ())
        output_pages = {row_page(row) for row in output_rows}
        pool.flush_selected(output_pages)

        metrics.distinct_tuples = sum(bits.bit_count() for bits in matrix)
        metrics.output_tuples = sum(matrix[row].bit_count() for row in output_rows)
        metrics.cpu_seconds = time.process_time() - start

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: matrix[row] for row in output_rows},
        )
