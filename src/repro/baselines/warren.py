"""Warren's matrix algorithm (related work, Section 8).

Warren [26] modified Warshall's algorithm [27] into two row-major
passes over a boolean adjacency matrix:

* pass 1: for each row ``i``, for each ``j < i`` with ``M[i][j]`` set,
  OR row ``j`` into row ``i`` (uses only rows above the diagonal's
  left part -- already final for this pass);
* pass 2: the same for ``j > i``.

After both passes ``M`` is the transitive closure.  The algorithm is
correct for cyclic graphs as well, so it needs no condensation.

On disk the matrix is paged row-major: a 2048-byte page holds
``PAGE_SIZE * 8 // n`` rows (for the paper's n = 2000 that is 8 rows
per page and a 250-page matrix -- far larger than the 10-50 page buffer
pools, which is why the earlier studies [12, 19] found the matrix
algorithms an order of magnitude worse than the graph-based ones).
Row accesses go through the buffer pool, so locality across the passes
is captured exactly; this models the "Blocked Warren" behaviour, with
the buffer pool as the block.

Selections are supported the way a matrix algorithm supports them:
the full closure is computed and only the requested rows are output --
which is precisely why these algorithms lose on high-selectivity
queries (Section 8).
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.engine import (
    CAP_PAGE_COSTS,
    PAGE_SIZE,
    PageId,
    PageKind,
    make_engine,
)
from repro.storage.iostats import Phase


class WarrenAlgorithm:
    """Warren's two-pass bit-matrix transitive closure."""

    name = "warren"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        engine = make_engine(system, graph, metrics=metrics)
        n = graph.num_nodes
        rows_per_page = max(1, (PAGE_SIZE * 8) // max(1, n))
        start = time.process_time()

        def row_page(row: int) -> PageId:
            return PageId(PageKind.SUCCESSOR, row // rows_per_page)

        # Engines without a page-cost model skip the per-bit row touches
        # of the inner loop entirely (they would be pure overhead).
        charged = engine.supports(CAP_PAGE_COSTS)

        def touch_row(row: int, dirty: bool = False) -> None:
            if not charged:
                return
            engine.touch_page(PageKind.SUCCESSOR, row // rows_per_page, dirty=dirty)

        # Load phase: build the matrix from a relation scan.
        metrics.io.phase = Phase.RESTRUCTURE
        engine.scan_relation()
        matrix = [0] * n
        for src, dst in graph.arcs():
            matrix[src] |= 1 << dst
        if charged:
            for row in range(n):
                touch_row(row, dirty=True)

        # Warren's two passes.  The union counters accumulate in locals
        # and fold into ``metrics`` once after both passes -- the final
        # totals are identical, nothing reads them mid-compute.
        metrics.io.phase = Phase.COMPUTE
        list_unions = tuples_generated = duplicates = 0
        for below_diagonal in (True, False):
            for i in range(n):
                if charged:
                    touch_row(i)
                # Warren scans j in increasing order over the *current*
                # row: bits set by earlier unions in the same scan are
                # picked up when the scan reaches them, bits at or
                # before the current j are never revisited.
                if below_diagonal:
                    region_mask = (1 << i) - 1  # j < i
                else:
                    region_mask = -1 << (i + 1)  # j > i
                scanned = 0  # mask of positions <= current j
                row_i = matrix[i]
                while True:
                    remaining = row_i & region_mask & ~scanned
                    if not remaining:
                        break
                    low = remaining & -remaining
                    j = low.bit_length() - 1
                    scanned |= (low << 1) - 1
                    if charged:
                        touch_row(j)
                    row_j = matrix[j]
                    row_j_count = row_j.bit_count()
                    list_unions += 1
                    tuples_generated += row_j_count
                    merged = row_i | row_j
                    added = (merged & ~row_i).bit_count()
                    duplicates += row_j_count - added
                    row_i = matrix[i] = merged
                    if added and charged:
                        touch_row(i, dirty=True)
        metrics.fold(
            list_unions=list_unions,
            tuples_generated=tuples_generated,
            duplicates=duplicates,
        )

        metrics.io.phase = Phase.WRITEOUT
        if query.is_full:
            output_rows = list(range(n))
        else:
            output_rows = list(query.sources or ())
        if charged:
            engine.flush_output({row_page(row) for row in output_rows})

        metrics.set_totals(
            distinct_tuples=sum(map(int.bit_count, matrix)),
            output_tuples=sum(matrix[row].bit_count() for row in output_rows),
            cpu_seconds=time.process_time() - start,
        )

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: matrix[row] for row in output_rows},
        )
