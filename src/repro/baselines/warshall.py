"""Warshall's algorithm (related work; Warshall [27]).

The original boolean-matrix closure: for each pivot ``k``, every row
``i`` with ``M[i][k]`` set absorbs row ``k``.  Correct for cyclic
graphs.  Compared with Warren's two-pass variant the pivot-major order
touches every row once per pivot it feeds, which is brutal when the
matrix exceeds the buffer pool -- Warren's row-major passes were
invented precisely to fix that access pattern, and the pair of
implementations lets the benchmark suite show the gap.

The matrix uses the same paged layout as :mod:`repro.baselines.warren`.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.engine import (
    CAP_PAGE_COSTS,
    PAGE_SIZE,
    PageId,
    PageKind,
    make_engine,
)
from repro.storage.iostats import Phase


class WarshallAlgorithm:
    """The classic pivot-major boolean-matrix transitive closure."""

    name = "warshall"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        engine = make_engine(system, graph, metrics=metrics)
        n = graph.num_nodes
        rows_per_page = max(1, (PAGE_SIZE * 8) // max(1, n))
        start = time.process_time()

        def row_page(row: int) -> PageId:
            return PageId(PageKind.SUCCESSOR, row // rows_per_page)

        # Engines without a page-cost model skip the per-bit row touches
        # of the inner loop entirely (they would be pure overhead).
        charged = engine.supports(CAP_PAGE_COSTS)

        def touch_row(row: int, dirty: bool = False) -> None:
            if not charged:
                return
            engine.touch_page(PageKind.SUCCESSOR, row // rows_per_page, dirty=dirty)

        metrics.io.phase = Phase.RESTRUCTURE
        engine.scan_relation()
        matrix = [0] * n
        column = [0] * n  # column[k] = bitset of rows with M[i][k] set
        for src, dst in graph.arcs():
            matrix[src] |= 1 << dst
            column[dst] |= 1 << src
        if charged:
            for row in range(n):
                touch_row(row, dirty=True)

        # The union counters accumulate in locals and fold into
        # ``metrics`` once after the pivot loop -- the final totals are
        # identical, nothing reads them mid-compute.
        metrics.io.phase = Phase.COMPUTE
        list_unions = tuples_generated = duplicates = 0
        for pivot in range(n):
            feeders = column[pivot] & ~(1 << pivot)
            pivot_row = matrix[pivot]
            if not feeders or not pivot_row:
                continue
            if charged:
                touch_row(pivot)
            # matrix[pivot] cannot change while its feeders are
            # processed (the pivot itself is masked out above).
            pivot_count = pivot_row.bit_count()
            while feeders:
                low = feeders & -feeders
                row = low.bit_length() - 1
                feeders ^= low
                if charged:
                    touch_row(row)
                before = matrix[row]
                list_unions += 1
                tuples_generated += pivot_count
                after = before | pivot_row
                fresh = after & ~before
                duplicates += pivot_count - fresh.bit_count()
                if fresh:
                    matrix[row] = after
                    if charged:
                        touch_row(row, dirty=True)
                    # Track new column memberships for later pivots.
                    value = fresh
                    while value:
                        bit = value & -value
                        column[bit.bit_length() - 1] |= 1 << row
                        value ^= bit

        metrics.fold(
            list_unions=list_unions,
            tuples_generated=tuples_generated,
            duplicates=duplicates,
        )

        metrics.io.phase = Phase.WRITEOUT
        if query.is_full:
            output_rows = list(range(n))
        else:
            output_rows = list(dict.fromkeys(query.sources or ()))
        if charged:
            engine.flush_output({row_page(row) for row in output_rows})
        metrics.set_totals(
            distinct_tuples=sum(map(int.bit_count, matrix)),
            output_tuples=sum(matrix[row].bit_count() for row in output_rows),
            cpu_seconds=time.process_time() - start,
        )

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: matrix[row] for row in output_rows},
        )
