"""Warshall's algorithm (related work; Warshall [27]).

The original boolean-matrix closure: for each pivot ``k``, every row
``i`` with ``M[i][k]`` set absorbs row ``k``.  Correct for cyclic
graphs.  Compared with Warren's two-pass variant the pivot-major order
touches every row once per pivot it feeds, which is brutal when the
matrix exceeds the buffer pool -- Warren's row-major passes were
invented precisely to fix that access pattern, and the pair of
implementations lets the benchmark suite show the gap.

The matrix uses the same paged layout as :mod:`repro.baselines.warren`.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.buffer import BufferPool, make_policy
from repro.storage.iostats import Phase
from repro.storage.page import PAGE_SIZE, PageId, PageKind
from repro.storage.relation import ArcRelation


class WarshallAlgorithm:
    """The classic pivot-major boolean-matrix transitive closure."""

    name = "warshall"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        pool = BufferPool(
            system.buffer_pages,
            stats=metrics.io,
            policy=make_policy(system.page_policy, seed=system.policy_seed),
        )
        n = graph.num_nodes
        rows_per_page = max(1, (PAGE_SIZE * 8) // max(1, n))
        start = time.process_time()

        def row_page(row: int) -> PageId:
            return PageId(PageKind.SUCCESSOR, row // rows_per_page)

        metrics.io.phase = Phase.RESTRUCTURE
        ArcRelation(graph).scan(pool)
        matrix = [0] * n
        column = [0] * n  # column[k] = bitset of rows with M[i][k] set
        for src, dst in graph.arcs():
            matrix[src] |= 1 << dst
            column[dst] |= 1 << src
        for row in range(n):
            pool.access(row_page(row), dirty=True)

        metrics.io.phase = Phase.COMPUTE
        for pivot in range(n):
            feeders = column[pivot] & ~(1 << pivot)
            if not feeders or not matrix[pivot]:
                continue
            pool.access(row_page(pivot))
            while feeders:
                low = feeders & -feeders
                row = low.bit_length() - 1
                feeders ^= low
                pool.access(row_page(row))
                before = matrix[row]
                metrics.list_unions += 1
                metrics.tuples_generated += matrix[pivot].bit_count()
                after = before | matrix[pivot]
                fresh = after & ~before
                metrics.duplicates += matrix[pivot].bit_count() - fresh.bit_count()
                if fresh:
                    matrix[row] = after
                    pool.access(row_page(row), dirty=True)
                    # Track new column memberships for later pivots.
                    value = fresh
                    while value:
                        bit = value & -value
                        column[bit.bit_length() - 1] |= 1 << row
                        value ^= bit

        metrics.io.phase = Phase.WRITEOUT
        if query.is_full:
            output_rows = list(range(n))
        else:
            output_rows = list(dict.fromkeys(query.sources or ()))
        output_pages = {row_page(row) for row in output_rows}
        pool.flush_selected(output_pages)
        metrics.distinct_tuples = sum(bits.bit_count() for bits in matrix)
        metrics.output_tuples = sum(matrix[row].bit_count() for row in output_rows)
        metrics.cpu_seconds = time.process_time() - start

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: matrix[row] for row in output_rows},
        )
