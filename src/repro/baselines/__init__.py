"""Related-work baseline algorithms (Section 8 of the paper).

The paper selected its candidate suite because earlier studies
[1, 3, 12, 19] had already shown the graph-based algorithms superior to
the *iterative* (Seminaive) and *matrix-based* (Warshall/Warren)
algorithms.  This subpackage implements those two classical baselines
on the same simulated storage substrate so that the earlier studies'
conclusion can be checked against this reproduction (see
``benchmarks/bench_baselines.py``):

* :class:`~repro.baselines.seminaive.SeminaiveAlgorithm` -- the
  iterative delta algorithm evaluated over the clustered arc relation.
* :class:`~repro.baselines.smart.SmartAlgorithm` -- the logarithmic
  (squaring) iterative algorithm, which Kabler et al. [19] found
  Seminaive to always outperform.
* :class:`~repro.baselines.warshall.WarshallAlgorithm` -- the classic
  pivot-major boolean-matrix closure [27].
* :class:`~repro.baselines.warren.WarrenAlgorithm` -- Warren's two-pass
  row-major modification [26] over a paged bit matrix.
* :class:`~repro.baselines.schmitz.SchmitzAlgorithm` -- the one-pass
  SCC-merging graph algorithm [23] that Ioannidis et al. [12] compared
  against BTC.

All expose the same ``run(graph, query, system) -> ClosureResult``
protocol as the paper's algorithms.
"""

from repro.baselines.schmitz import SchmitzAlgorithm
from repro.baselines.seminaive import SeminaiveAlgorithm
from repro.baselines.smart import SmartAlgorithm
from repro.baselines.warren import WarrenAlgorithm
from repro.baselines.warshall import WarshallAlgorithm
from repro.errors import UnknownAlgorithmError

_BASELINES = {
    "seminaive": SeminaiveAlgorithm,
    "smart": SmartAlgorithm,
    "warshall": WarshallAlgorithm,
    "warren": WarrenAlgorithm,
    "schmitz": SchmitzAlgorithm,
}

BASELINE_NAMES = tuple(_BASELINES)


def make_baseline(name: str):
    """Instantiate a baseline algorithm by name."""
    try:
        return _BASELINES[name.lower()]()
    except KeyError:
        valid = ", ".join(BASELINE_NAMES)
        raise UnknownAlgorithmError(
            f"unknown baseline {name!r}; valid names: {valid}"
        ) from None


__all__ = [
    "BASELINE_NAMES",
    "SchmitzAlgorithm",
    "SeminaiveAlgorithm",
    "SmartAlgorithm",
    "WarrenAlgorithm",
    "WarshallAlgorithm",
    "make_baseline",
]
