"""The Smart algorithm (related work, Section 8; Ioannidis/Kabler [19]).

Where Seminaive extends paths by one arc per iteration, Smart squares:
iteration ``k`` holds all paths of length up to ``2^k``, joining the
accumulated closure with itself (plus the base relation), so only
``log2(depth)`` iterations are needed.  Kabler et al. found Seminaive
to *always outperform Smart* in their page-I/O study -- squaring joins
the (large) closure-so-far with itself, which re-derives enormous
numbers of duplicates -- and this implementation reproduces that
finding (see ``benchmarks/bench_baselines.py``).

Cost model: each iteration scans the delta (paths discovered in the
previous round), probes the *accumulated result* (clustered per row,
like the successor-list file) for the join, merges for duplicate
elimination, and appends fresh tuples.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.buffer import BufferPool, make_policy
from repro.storage.iostats import Phase
from repro.storage.page import TUPLES_PER_PAGE, PageId, PageKind, pages_needed
from repro.storage.relation import ArcRelation
from repro.storage.successor_store import SuccessorListStore


class SmartAlgorithm:
    """Logarithmic (squaring) iterative transitive closure."""

    name = "smart"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        pool = BufferPool(
            system.buffer_pages,
            stats=metrics.io,
            policy=make_policy(system.page_policy, seed=system.policy_seed),
        )
        relation = ArcRelation(graph)
        store = SuccessorListStore(pool, policy=system.list_policy)
        start = time.process_time()
        metrics.io.phase = Phase.COMPUTE

        if query.is_full:
            rows = list(graph.nodes())
            relation.scan(pool)
        else:
            rows = list(query.sources or ())
            for row in rows:
                relation.read_successors(row, pool)

        # closure[row] holds all successors found so far; delta[row]
        # the paths first discovered in the previous round.  To answer
        # a selection, Smart still squares over *every* node's row --
        # the join needs paths between arbitrary intermediate nodes --
        # which is why squaring cannot exploit selectivity.
        all_rows = list(graph.nodes())
        closure = {}
        delta = {}
        delta_tuples = 0
        for node in all_rows:
            bits = 0
            for child in graph.successors(node):
                bits |= 1 << child
            closure[node] = bits
            delta[node] = bits
            delta_tuples += bits.bit_count()
            store.create_list(node, bits.bit_count())
            metrics.tuples_generated += bits.bit_count()
        delta_pages_end = self._spool(pool, 0, delta_tuples)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            self._scan(pool, delta_pages_end, delta_tuples)
            new_delta = {}
            new_delta_tuples = 0
            for node in all_rows:
                bits = delta[node]
                derived = 0
                # Join the delta with the accumulated closure: paths of
                # length <= 2^k extended by paths of length <= 2^k.
                value = bits
                while value:
                    low = value & -value
                    middle = low.bit_length() - 1
                    value ^= low
                    if closure[middle]:
                        metrics.list_reads += 1
                        store.read_list(middle)
                        derived |= closure[middle]
                derived_count = derived.bit_count()
                metrics.tuples_generated += derived_count
                fresh = derived & ~closure[node]
                metrics.duplicates += derived_count - fresh.bit_count()
                if derived:
                    store.read_list(node)  # duplicate-elimination merge
                if fresh:
                    closure[node] |= fresh
                    new_delta[node] = fresh
                    new_delta_tuples += fresh.bit_count()
                    store.append(node, fresh.bit_count())
                else:
                    new_delta[node] = 0
            delta = new_delta
            delta_tuples = new_delta_tuples
            delta_pages_end = self._spool(pool, delta_pages_end, delta_tuples)
        self.iterations = iterations

        metrics.io.phase = Phase.WRITEOUT
        output_pages: set[PageId] = set()
        for row in rows:
            output_pages.update(store.pages_of(row))
        pool.flush_selected(output_pages)
        metrics.distinct_tuples = sum(bits.bit_count() for bits in closure.values())
        metrics.output_tuples = sum(closure[row].bit_count() for row in rows)
        metrics.cpu_seconds = time.process_time() - start

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: closure[row] for row in rows},
        )

    @staticmethod
    def _spool(pool: BufferPool, first_page: int, tuples: int) -> int:
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        for offset in range(num_pages):
            pool.create(PageId(PageKind.DELTA, first_page + offset))
        return first_page + num_pages

    @staticmethod
    def _scan(pool: BufferPool, end_page: int, tuples: int) -> None:
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        for offset in range(num_pages):
            pool.access(PageId(PageKind.DELTA, end_page - num_pages + offset))
