"""The Smart algorithm (related work, Section 8; Ioannidis/Kabler [19]).

Where Seminaive extends paths by one arc per iteration, Smart squares:
iteration ``k`` holds all paths of length up to ``2^k``, joining the
accumulated closure with itself (plus the base relation), so only
``log2(depth)`` iterations are needed.  Kabler et al. found Seminaive
to *always outperform Smart* in their page-I/O study -- squaring joins
the (large) closure-so-far with itself, which re-derives enormous
numbers of duplicates -- and this implementation reproduces that
finding (see ``benchmarks/bench_baselines.py``).

Cost model: each iteration scans the delta (paths discovered in the
previous round), probes the *accumulated result* (clustered per row,
like the successor-list file) for the join, merges for duplicate
elimination, and appends fresh tuples.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.storage.engine import (
    CAP_PAGE_COSTS,
    TUPLES_PER_PAGE,
    PageId,
    PageKind,
    StorageEngine,
    make_engine,
    pages_needed,
)
from repro.storage.iostats import Phase


class SmartAlgorithm:
    """Logarithmic (squaring) iterative transitive closure."""

    name = "smart"

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms."""
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        engine = make_engine(system, graph, metrics=metrics)
        store = engine.make_list_store(PageKind.SUCCESSOR, policy=system.list_policy)
        start = time.process_time()
        metrics.io.phase = Phase.COMPUTE

        if query.is_full:
            rows = list(graph.nodes())
            engine.scan_relation()
        else:
            rows = list(query.sources or ())
            for row in rows:
                engine.read_successors(row)

        # closure[row] holds all successors found so far; delta[row]
        # the paths first discovered in the previous round.  To answer
        # a selection, Smart still squares over *every* node's row --
        # the join needs paths between arbitrary intermediate nodes --
        # which is why squaring cannot exploit selectivity.
        all_rows = list(graph.nodes())
        closure = {}
        delta = {}
        delta_tuples = 0
        for node in all_rows:
            bits = 0
            for child in graph.successors(node):
                bits |= 1 << child
            closure[node] = bits
            delta[node] = bits
            delta_tuples += bits.bit_count()
            store.create_list(node, bits.bit_count())
        metrics.fold(tuples_generated=delta_tuples)
        delta_pages_end = self._spool(engine, 0, delta_tuples)

        # The join counters accumulate in locals and fold into
        # ``metrics`` once after the loop -- the final totals (and
        # every storage call, in the same order) are identical.
        read_list = store.read_list
        append = store.append
        list_reads = tuples_generated = duplicates = 0
        iterations = 0
        while any(delta.values()):
            iterations += 1
            self._scan(engine, delta_pages_end, delta_tuples)
            new_delta = {}
            new_delta_tuples = 0
            for node in all_rows:
                derived = 0
                # Join the delta with the accumulated closure: paths of
                # length <= 2^k extended by paths of length <= 2^k.
                value = delta[node]
                while value:
                    low = value & -value
                    middle = low.bit_length() - 1
                    value ^= low
                    middle_closure = closure[middle]
                    if middle_closure:
                        list_reads += 1
                        read_list(middle)
                        derived |= middle_closure
                derived_count = derived.bit_count()
                tuples_generated += derived_count
                fresh = derived & ~closure[node]
                fresh_count = fresh.bit_count()
                duplicates += derived_count - fresh_count
                if derived:
                    read_list(node)  # duplicate-elimination merge
                if fresh:
                    closure[node] |= fresh
                    new_delta[node] = fresh
                    new_delta_tuples += fresh_count
                    append(node, fresh_count)
                else:
                    new_delta[node] = 0
            delta = new_delta
            delta_tuples = new_delta_tuples
            delta_pages_end = self._spool(engine, delta_pages_end, delta_tuples)
        self.iterations = iterations
        metrics.fold(
            list_reads=list_reads,
            tuples_generated=tuples_generated,
            duplicates=duplicates,
        )

        metrics.io.phase = Phase.WRITEOUT
        if engine.supports(CAP_PAGE_COSTS):
            output_pages: set[PageId] = set()
            for row in rows:
                output_pages.update(store.pages_of(row))
            engine.flush_output(output_pages)
        metrics.set_totals(
            distinct_tuples=sum(map(int.bit_count, closure.values())),
            output_tuples=sum(closure[row].bit_count() for row in rows),
            cpu_seconds=time.process_time() - start,
        )

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: closure[row] for row in rows},
        )

    @staticmethod
    def _spool(engine: StorageEngine, first_page: int, tuples: int) -> int:
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        if engine.supports(CAP_PAGE_COSTS):
            for offset in range(num_pages):
                engine.create_page(PageKind.DELTA, first_page + offset)
        return first_page + num_pages

    @staticmethod
    def _scan(engine: StorageEngine, end_page: int, tuples: int) -> None:
        if not engine.supports(CAP_PAGE_COSTS):
            return
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        for offset in range(num_pages):
            engine.touch_page(PageKind.DELTA, end_page - num_pages + offset)
