"""The Seminaive iterative algorithm (related work, Section 8).

Classic bottom-up delta evaluation of the recursive rule
``tc(X, Z) :- tc(X, Y), arc(Y, Z)``: each iteration joins the freshly
derived delta tuples with the arc relation and keeps only the tuples
not seen before, until no new tuple appears.  Kabler et al. [19] found
Seminaive inferior to the graph-based algorithms for full closure but
competitive for selections touching under a third of the nodes; the
graph-based algorithms of this study beat it across the board (see
``benchmarks/bench_baselines.py``).

The implementation runs on the same substrate as the paper's suite:
delta joins probe the source-clustered arc relation through the
buffer pool, and derived tuples are appended to paged result lists.
"""

from __future__ import annotations

import time

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.graphs.digraph import Digraph
from repro.metrics.counters import MetricSet
from repro.obs.spans import SpanRecorder, span
from repro.obs.tracing import (
    EV_DELTA_SCAN,
    EV_DELTA_SPOOL,
    TraceCollector,
)
from repro.storage.engine import (
    CAP_PAGE_COSTS,
    TUPLES_PER_PAGE,
    PageId,
    PageKind,
    StorageEngine,
    make_engine,
    pages_needed,
)
from repro.storage.iostats import Phase


class SeminaiveAlgorithm:
    """Iterative delta evaluation of the transitive closure."""

    name = "seminaive"
    accepts_instrumentation = True
    """The CLI may pass ``recorder``/``collector`` (but no PageTrace:
    the baselines never see storage internals, only the seam)."""

    def run(
        self,
        graph: Digraph,
        query: Query | None = None,
        system: SystemConfig | None = None,
        recorder: "SpanRecorder | None" = None,
        collector: "TraceCollector | None" = None,
    ) -> ClosureResult:
        """Evaluate the query; same protocol as the paper's algorithms.

        ``recorder`` times the run under a single ``run`` span;
        ``collector`` records structured trace events -- including the
        ``delta.spool``/``delta.scan`` markers unique to semi-naive --
        through the engine seam.  Both are pure observers.
        """
        with span("run", recorder):
            return self._run(graph, query, system, collector)

    def _run(
        self,
        graph: Digraph,
        query: Query | None,
        system: SystemConfig | None,
        collector: "TraceCollector | None",
    ) -> ClosureResult:
        query = Query.full() if query is None else query
        system = SystemConfig() if system is None else system
        metrics = MetricSet()
        engine = make_engine(system, graph, metrics=metrics, collector=collector)
        store = engine.make_list_store(PageKind.SUCCESSOR, policy=system.list_policy)
        start = time.process_time()
        metrics.io.phase = Phase.COMPUTE
        if collector is not None:
            collector.phase = Phase.COMPUTE.value

        if query.is_full:
            rows: list[int] = list(graph.nodes())
            engine.scan_relation()
        else:
            rows = list(query.sources or ())

        closure: dict[int, int] = {}
        delta: dict[int, int] = {}
        delta_tuples = 0
        for row in rows:
            bits = 0
            if not query.is_full:
                engine.read_successors(row)
            for child in graph.successors(row):
                bits |= 1 << child
            closure[row] = bits
            delta[row] = bits
            delta_tuples += bits.bit_count()
            store.create_list(row, bits.bit_count())
        metrics.fold(tuples_generated=delta_tuples)
        delta_page_counter = self._spool_delta(engine, 0, delta_tuples)

        # The join counters accumulate in locals and fold into
        # ``metrics`` once after the loop -- the final totals (and
        # every storage call, in the same order) are identical.
        read_list = store.read_list
        append = store.append
        tuple_io = tuples_generated = duplicates = list_reads = 0
        iterations = 0
        while delta:
            iterations += 1
            # The delta is a materialised relation: scan it.
            self._scan_delta(engine, delta_page_counter, delta_tuples)
            # Join the delta with the arc relation: fetch the successor
            # list of every distinct join value once per iteration.
            join_values: set[int] = set()
            for bits in delta.values():
                value = bits
                while value:
                    low = value & -value
                    join_values.add(low.bit_length() - 1)
                    value ^= low
            expansions: dict[int, int] = {}
            for y in sorted(join_values):
                successors = engine.read_successors(y)
                tuple_io += len(successors)
                bits = 0
                for child in successors:
                    bits |= 1 << child
                expansions[y] = bits

            new_delta: dict[int, int] = {}
            new_delta_tuples = 0
            for row, bits in delta.items():
                derived = 0
                value = bits
                while value:
                    low = value & -value
                    derived |= expansions[low.bit_length() - 1]
                    value ^= low
                derived_count = derived.bit_count()
                tuples_generated += derived_count
                fresh = derived & ~closure[row]
                fresh_count = fresh.bit_count()
                duplicates += derived_count - fresh_count
                if derived:
                    # Duplicate elimination merges the derived tuples
                    # with the row's stored result list.
                    list_reads += 1
                    read_list(row)
                if fresh:
                    closure[row] |= fresh
                    new_delta[row] = fresh
                    new_delta_tuples += fresh_count
                    append(row, fresh_count)
            # Spool the new delta relation to disk for the next round.
            delta_page_counter = self._spool_delta(
                engine, delta_page_counter, new_delta_tuples
            )
            delta = new_delta
            delta_tuples = new_delta_tuples
        self.iterations = iterations
        metrics.fold(
            tuple_io=tuple_io,
            tuples_generated=tuples_generated,
            duplicates=duplicates,
            list_reads=list_reads,
        )

        metrics.io.phase = Phase.WRITEOUT
        if collector is not None:
            collector.phase = Phase.WRITEOUT.value
        if engine.supports(CAP_PAGE_COSTS):
            output_pages: set[PageId] = set()
            for row in rows:
                output_pages.update(store.pages_of(row))
            engine.flush_output(output_pages)
        distinct = sum(map(int.bit_count, closure.values()))
        metrics.set_totals(
            distinct_tuples=distinct,
            output_tuples=distinct,
            cpu_seconds=time.process_time() - start,
        )

        return ClosureResult(
            algorithm=self.name,
            query=query,
            system=system,
            metrics=metrics,
            successor_bits={row: closure[row] for row in rows},
        )

    @staticmethod
    def _spool_delta(engine: StorageEngine, first_page: int, tuples: int) -> int:
        """Write a fresh delta relation (256 tuples/page) to disk.

        Returns the first page number of the spooled delta, which the
        next iteration's :meth:`_scan_delta` reads back.  Delta pages
        get new numbers each round -- a delta file is never reused.
        """
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        if engine.collector is not None:
            engine.collector.emit(
                EV_DELTA_SPOOL,
                PageKind.DELTA.value,
                first_page,
                detail=f"pages={num_pages} tuples={tuples}",
            )
        if engine.supports(CAP_PAGE_COSTS):
            for offset in range(num_pages):
                engine.create_page(PageKind.DELTA, first_page + offset)
        return first_page + num_pages

    @staticmethod
    def _scan_delta(engine: StorageEngine, end_page: int, tuples: int) -> None:
        """Sequentially read the current delta relation."""
        num_pages = pages_needed(tuples, TUPLES_PER_PAGE)
        if engine.collector is not None:
            engine.collector.emit(
                EV_DELTA_SCAN,
                PageKind.DELTA.value,
                end_page - num_pages,
                detail=f"pages={num_pages} tuples={tuples}",
            )
        if not engine.supports(CAP_PAGE_COSTS):
            return
        for offset in range(num_pages):
            engine.touch_page(PageKind.DELTA, end_page - num_pages + offset)
