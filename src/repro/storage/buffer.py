"""Buffer pool with pluggable page replacement policies.

Every page access in the simulator goes through a :class:`BufferPool`.
The pool has a fixed number of frames (``M`` in the paper, varied over
10, 20 and 50 pages in the experiments).  A request for a resident page
is a *hit*; a request for a non-resident page is a *miss* that charges
one physical read, and, if the evicted victim frame is dirty, one
physical write.

Pages can be *pinned*: a pinned page is never chosen as an eviction
victim.  The Hybrid algorithm pins the pages of its diagonal block
(Section 3.2); if a miss occurs while every frame is pinned the pool
raises :class:`~repro.errors.BufferPoolExhaustedError`, which Hybrid
interprets as the signal to perform dynamic reblocking.

The paper examined several page replacement policies and found their
effect secondary (Section 5.1); LRU, MRU, FIFO, CLOCK and a seeded
RANDOM policy are provided so that finding can be checked (see
``benchmarks/bench_ablation_policies.py``).
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.chaos.faults import FaultKind, FaultPlan, active_plan
from repro.errors import (
    BufferPoolError,
    BufferPoolExhaustedError,
    ConfigurationError,
    CorruptPageReadError,
    PageNotPinnedError,
)
from repro.obs.spans import SpanRecorder, span
from repro.obs.tracing import (
    EV_PAGE_CREATE,
    EV_PAGE_EVICT,
    EV_PAGE_FETCH,
    EV_PAGE_HIT,
    EV_PAGE_PIN,
    EV_PAGE_UNPIN,
    EV_PAGE_WRITE,
    TraceCollector,
)
from repro.storage.iostats import IoStats
from repro.storage.page import PageId, PageKind

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.chaos.audit import InvariantAuditor


class ReplacementPolicy(ABC):
    """Chooses which unpinned resident page to evict on a miss."""

    name: str = "abstract"

    @abstractmethod
    def note_admit(self, page: PageId) -> None:
        """Called when ``page`` enters the pool."""

    @abstractmethod
    def note_access(self, page: PageId) -> None:
        """Called when a resident ``page`` is accessed (a hit)."""

    @abstractmethod
    def note_evict(self, page: PageId) -> None:
        """Called when ``page`` leaves the pool."""

    @abstractmethod
    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        """Return an unpinned resident page to evict, or ``None``."""


class LruPolicy(ReplacementPolicy):
    """Evict the least recently used unpinned page."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def note_admit(self, page: PageId) -> None:
        self._order[page] = None

    def note_access(self, page: PageId) -> None:
        self._order.move_to_end(page)

    def note_evict(self, page: PageId) -> None:
        self._order.pop(page, None)

    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        for page in self._order:
            if page not in pinned:
                return page
        return None


class MruPolicy(LruPolicy):
    """Evict the most recently used unpinned page."""

    name = "mru"

    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        for page in reversed(self._order):
            if page not in pinned:
                return page
        return None


class FifoPolicy(ReplacementPolicy):
    """Evict the unpinned page that entered the pool earliest."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def note_admit(self, page: PageId) -> None:
        self._order[page] = None

    def note_access(self, page: PageId) -> None:
        # FIFO ignores accesses after admission.
        pass

    def note_evict(self, page: PageId) -> None:
        self._order.pop(page, None)

    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        for page in self._order:
            if page not in pinned:
                return page
        return None


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) replacement."""

    name = "clock"

    def __init__(self) -> None:
        self._pages: list[PageId] = []
        self._referenced: dict[PageId, bool] = {}
        self._hand = 0

    def note_admit(self, page: PageId) -> None:
        self._pages.append(page)
        self._referenced[page] = True

    def note_access(self, page: PageId) -> None:
        self._referenced[page] = True

    def note_evict(self, page: PageId) -> None:
        index = self._pages.index(page)
        self._pages.pop(index)
        del self._referenced[page]
        if index < self._hand:
            self._hand -= 1
        if self._pages and self._hand >= len(self._pages):
            self._hand = 0

    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        if not self._pages:
            return None
        # At most two sweeps: the first clears reference bits, the second
        # must find a victim unless everything is pinned.
        for _ in range(2 * len(self._pages)):
            page = self._pages[self._hand]
            if page in pinned:
                self._hand = (self._hand + 1) % len(self._pages)
                continue
            if self._referenced[page]:
                self._referenced[page] = False
                self._hand = (self._hand + 1) % len(self._pages)
                continue
            return page
        return None


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random unpinned page (seeded for repeatability)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pages: list[PageId] = []

    def note_admit(self, page: PageId) -> None:
        self._pages.append(page)

    def note_access(self, page: PageId) -> None:
        pass

    def note_evict(self, page: PageId) -> None:
        self._pages.remove(page)

    def choose_victim(self, pinned: set[PageId]) -> PageId | None:
        candidates = [page for page in self._pages if page not in pinned]
        if not candidates:
            return None
        return self._rng.choice(candidates)


_POLICIES = {
    "lru": LruPolicy,
    "mru": MruPolicy,
    "fifo": FifoPolicy,
    "clock": ClockPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Valid names: ``lru`` (default everywhere), ``mru``, ``fifo``,
    ``clock`` and ``random``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        valid = ", ".join(sorted(_POLICIES))
        raise ConfigurationError(
            f"unknown page replacement policy {name!r}; valid policies: {valid}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed)
    return cls()


@dataclass
class _Frame:
    page: PageId
    dirty: bool = False
    pin_count: int = 0


class BufferPool:
    """A fixed-capacity pool of page frames with replacement and pinning.

    Parameters
    ----------
    capacity:
        Number of page frames (``M``).  Must be positive.
    stats:
        Shared :class:`IoStats` that physical reads/writes and
        request/hit counts are recorded into.
    policy:
        Replacement policy name (see :func:`make_policy`) or an already
        constructed :class:`ReplacementPolicy`.
    recorder:
        Optional :class:`~repro.obs.spans.SpanRecorder`; when attached,
        the physical read and write paths are timed under ``pool.read``
        and ``pool.write`` spans.  Costs one ``None`` check when absent
        and never changes any counter.
    auditor:
        Optional :class:`~repro.chaos.audit.InvariantAuditor`; in
        strict mode the pool re-verifies its residency and pin
        accounting after every eviction.  Pure observer: never issues
        a page request or changes a counter.
    collector:
        Optional :class:`~repro.obs.tracing.TraceCollector`; when
        attached, every pool event (hit, fetch, create, write, evict,
        pin, unpin) is recorded as a structured trace event.  Same
        contract as ``recorder``: one ``None`` check when absent,
        never a counter change.

    Chaos: when a process-wide :class:`~repro.chaos.faults.FaultPlan`
    is armed, the physical-read path is a fault site (corrupt reads,
    eviction storms, latency spikes).  The check lives on the *miss*
    path only, so the hit path -- the hot path of every experiment --
    is exactly as before, and with no plan armed a miss costs one
    ``None`` comparison.
    """

    def __init__(
        self,
        capacity: int,
        stats: IoStats | None = None,
        policy: str | ReplacementPolicy = "lru",
        recorder: SpanRecorder | None = None,
        auditor: "InvariantAuditor | None" = None,
        collector: TraceCollector | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"buffer pool capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else IoStats()
        self._policy = policy if isinstance(policy, ReplacementPolicy) else make_policy(policy)
        self._recorder = recorder
        self._auditor = auditor
        self.collector = collector
        self._frames: dict[PageId, _Frame] = {}
        self._pinned: set[PageId] = set()

    # -- introspection ---------------------------------------------------

    def __contains__(self, page: PageId) -> bool:
        return page in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def pinned_count(self) -> int:
        """Number of distinct pinned pages currently resident."""
        return len(self._pinned)

    def is_dirty(self, page: PageId) -> bool:
        """Whether the resident ``page`` has unwritten modifications."""
        frame = self._frames.get(page)
        return frame is not None and frame.dirty

    # -- core operations ---------------------------------------------------

    def access(self, page: PageId, dirty: bool = False) -> bool:
        """Request ``page``; return ``True`` on a hit.

        On a miss, one physical read is charged and, if a dirty victim
        had to be evicted, one physical write.  ``dirty=True`` marks the
        page as modified, to be written when it is evicted or flushed.
        """
        frame = self._frames.get(page)
        if frame is not None:
            self.stats.record_request(page.kind, hit=True)
            self._policy.note_access(page)
            frame.dirty = frame.dirty or dirty
            if self.collector is not None:
                self.collector.emit(EV_PAGE_HIT, page.kind.value, page.number)
            return True

        plan = active_plan()
        with span("pool.read", self._recorder):
            if plan is not None:
                self._inject_read_faults(plan, page, pre_admit=True)
            if len(self._frames) >= self.capacity:
                self._evict_one()
            # Counted only once the page is actually served: when every
            # frame is pinned the eviction above raises and Hybrid
            # reblocks and retries, and an aborted attempt must not
            # break the requests = hits + reads identity.
            self.stats.record_request(page.kind, hit=False)
            self.stats.record_read(page.kind)
            self._frames[page] = _Frame(page, dirty=dirty)
            self._policy.note_admit(page)
            if self.collector is not None:
                self.collector.emit(EV_PAGE_FETCH, page.kind.value, page.number)
            if plan is not None:
                self._inject_read_faults(plan, page, pre_admit=False)
        return False

    def create(self, page: PageId) -> None:
        """Materialise a brand-new page directly in the pool.

        Unlike :meth:`access`, no physical read is charged: the page did
        not previously exist on disk.  The page is dirty and will be
        written when evicted or flushed.  Used when the restructuring
        phase allocates fresh successor-list pages.
        """
        frame = self._frames.get(page)
        if frame is not None:
            frame.dirty = True
            self._policy.note_access(page)
            return
        # Materialising a new page is not a lookup: no request, no
        # hit, no read -- only the future write when it leaves dirty.
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page] = _Frame(page, dirty=True)
        self._policy.note_admit(page)
        if self.collector is not None:
            self.collector.emit(EV_PAGE_CREATE, page.kind.value, page.number)

    def pin(self, page: PageId, dirty: bool = False) -> bool:
        """Access and pin ``page``; return ``True`` on a hit.

        A pinned page is never evicted.  Pins nest: each :meth:`pin`
        must be matched by an :meth:`unpin`.
        """
        hit = self.access(page, dirty=dirty)
        self._frames[page].pin_count += 1
        self._pinned.add(page)
        if self.collector is not None:
            self.collector.emit(EV_PAGE_PIN, page.kind.value, page.number)
        return hit

    def unpin(self, page: PageId) -> None:
        """Release one pin on ``page``."""
        frame = self._frames.get(page)
        if frame is None or frame.pin_count == 0:
            raise PageNotPinnedError(f"{page} is not pinned")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self._pinned.discard(page)
        if self.collector is not None:
            self.collector.emit(EV_PAGE_UNPIN, page.kind.value, page.number)

    def unpin_all(self) -> None:
        """Release every pin (used when Hybrid tears down a block)."""
        for page in list(self._pinned):
            frame = self._frames[page]
            frame.pin_count = 0
            if self.collector is not None:
                self.collector.emit(
                    EV_PAGE_UNPIN, page.kind.value, page.number, detail="all"
                )
        self._pinned.clear()

    def evict(self, page: PageId) -> None:
        """Explicitly evict ``page`` (must be resident and unpinned)."""
        frame = self._frames.get(page)
        if frame is None:
            return
        if frame.pin_count:
            raise BufferPoolError(f"cannot evict pinned page {page}")
        self._drop(frame)

    def flush(self) -> None:
        """Write every dirty resident page, leaving all pages resident."""
        for frame in self._frames.values():
            if frame.dirty:
                self._record_write(frame.page.kind, frame.page.number)
                frame.dirty = False

    def flush_selected(self, pages: set[PageId]) -> None:
        """Write dirty resident pages in ``pages``; discard other dirt.

        Used at the end of a selection query: only the expanded lists
        of the source nodes are written out (Section 4 of the paper);
        dirty working pages that are not part of the answer are simply
        dropped without a write.
        """
        for frame in self._frames.values():
            if frame.dirty and frame.page in pages:
                self._record_write(frame.page.kind, frame.page.number)
            frame.dirty = False

    def storm_evict(self, limit: int | None = None) -> int:
        """Evict up to ``limit`` unpinned resident pages (all by default).

        The chaos plane's *eviction storm*: dirty victims charge their
        writes and the working set must be re-read, so the damage is
        visible in the counters while the computation stays correct --
        the graceful-degradation property the harness verifies.
        Returns the number of pages evicted.
        """
        evicted = 0
        for page in list(self._frames):
            if limit is not None and evicted >= limit:
                break
            frame = self._frames[page]
            if frame.pin_count:
                continue
            self._drop(frame)
            evicted += 1
        return evicted

    # -- internals ---------------------------------------------------------

    def _inject_read_faults(self, plan: FaultPlan, page: PageId, pre_admit: bool) -> None:
        """Fault site: one physical page read (chaos plane, see class doc)."""
        if pre_admit:
            event = plan.fire(FaultKind.SLOW_IO)
            if event is not None:
                time.sleep(event.params.get("ms", 1.0) / 1000.0)
            event = plan.fire(FaultKind.EVICT_STORM)
            if event is not None:
                limit = event.params.get("k")
                self.storm_evict(None if limit is None else int(limit))
        else:
            event = plan.fire(FaultKind.CORRUPT_READ)
            if event is not None:
                raise CorruptPageReadError(
                    f"injected checksum failure reading {page} "
                    f"(chaos opportunity {event.opportunity})"
                )

    def _record_write(self, kind: PageKind, number: int | None = None) -> None:
        with span("pool.write", self._recorder):
            self.stats.record_write(kind)
        if self.collector is not None:
            self.collector.emit(EV_PAGE_WRITE, kind.value, number)

    def _evict_one(self) -> None:
        victim = self._policy.choose_victim(self._pinned)
        if victim is None:
            raise BufferPoolExhaustedError(
                f"all {self.capacity} frames are pinned; cannot fault in a new page"
            )
        self._drop(self._frames[victim])

    def _drop(self, frame: _Frame) -> None:
        if frame.dirty:
            self._record_write(frame.page.kind, frame.page.number)
        del self._frames[frame.page]
        self._pinned.discard(frame.page)
        self._policy.note_evict(frame.page)
        if self.collector is not None:
            self.collector.emit(
                EV_PAGE_EVICT, frame.page.kind.value, frame.page.number
            )
        if self._auditor is not None:
            self._auditor.after_evict(self)
