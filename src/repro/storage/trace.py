"""Page-access tracing for the simulated buffer manager.

A :class:`PageTrace` records every buffer-pool event -- requests with
their hit/miss outcome, physical reads and writes, pins -- as a flat
sequence.  Traces are what let tests assert *access patterns*, not
just totals: that a full-closure restructuring scans the relation
sequentially, that Warshall's pivot-major pass revisits rows the way
the literature says it does, or that Hybrid really fetches each
off-diagonal list once per block.

Attach a trace by wrapping the pool's stats::

    trace = PageTrace()
    pool = BufferPool(10, stats=trace.attach(IoStats()))

or use :func:`traced_pool` for the common case.  Tracing is opt-in and
costs nothing when not attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.obs.spans import SpanRecorder
from repro.obs.tracing import TraceCollector
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.storage.iostats import IoStats
from repro.storage.page import PageId, PageKind

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.chaos.audit import InvariantAuditor


class TraceEvent(enum.Enum):
    """What happened to a page."""

    REQUEST_HIT = "hit"
    REQUEST_MISS = "miss"
    READ = "read"
    WRITE = "write"
    CREATE = "create"


@dataclass(frozen=True)
class TraceRecord:
    """One buffer-manager event."""

    sequence: int
    event: TraceEvent
    kind: PageKind
    page_number: int | None


@dataclass
class PageTrace:
    """A recording of buffer-manager events, in order."""

    records: list[TraceRecord] = field(default_factory=list)

    # -- recording ------------------------------------------------------------

    def attach(self, stats: IoStats) -> IoStats:
        """Wrap ``stats`` so every event is also appended to this trace.

        Returns the same object (mutated) for chaining.
        """
        trace = self
        original_request = stats.record_request
        original_read = stats.record_read
        original_write = stats.record_write

        def record_request(kind: PageKind, hit: bool) -> None:
            original_request(kind, hit)
            event = TraceEvent.REQUEST_HIT if hit else TraceEvent.REQUEST_MISS
            trace._append(event, kind)

        def record_read(kind: PageKind) -> None:
            original_read(kind)
            trace._append(TraceEvent.READ, kind)

        def record_write(kind: PageKind) -> None:
            original_write(kind)
            trace._append(TraceEvent.WRITE, kind)

        stats.record_request = record_request  # type: ignore[method-assign]
        stats.record_read = record_read  # type: ignore[method-assign]
        stats.record_write = record_write  # type: ignore[method-assign]
        return stats

    def note_page(self, page: PageId, event: TraceEvent) -> None:
        """Record an event with full page identity (used by TracedPool)."""
        self.records.append(
            TraceRecord(len(self.records), event, page.kind, page.number)
        )

    def _append(self, event: TraceEvent, kind: PageKind) -> None:
        self.records.append(TraceRecord(len(self.records), event, kind, None))

    # -- analysis ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def events(self, event: TraceEvent, kind: PageKind | None = None) -> list[TraceRecord]:
        """All records of one event type (optionally one page kind)."""
        return [
            record
            for record in self.records
            if record.event is event and (kind is None or record.kind is kind)
        ]

    def page_numbers(self, event: TraceEvent, kind: PageKind) -> list[int]:
        """Page numbers of matching records (requires full identity)."""
        return [
            record.page_number
            for record in self.records
            if record.event is event
            and record.kind is kind
            and record.page_number is not None
        ]

    def is_sequential(self, event: TraceEvent, kind: PageKind) -> bool:
        """Whether the matching accesses form a non-decreasing run."""
        numbers = self.page_numbers(event, kind)
        return all(a <= b for a, b in zip(numbers, numbers[1:]))


class TracedPool(BufferPool):
    """A :class:`BufferPool` that records full page identities.

    The plain :meth:`PageTrace.attach` wrapper only sees page *kinds*
    (that is all :class:`IoStats` receives); this subclass intercepts
    :meth:`access`/:meth:`create` to record page numbers as well.
    """

    def __init__(
        self,
        capacity: int,
        trace: PageTrace,
        stats: IoStats | None = None,
        policy: str | ReplacementPolicy = "lru",
        recorder: SpanRecorder | None = None,
        auditor: "InvariantAuditor | None" = None,
        collector: "TraceCollector | None" = None,
    ) -> None:
        super().__init__(capacity, stats=stats, policy=policy, recorder=recorder,
                         auditor=auditor, collector=collector)
        self.trace = trace

    def access(self, page: PageId, dirty: bool = False) -> bool:
        resident = page in self
        hit = super().access(page, dirty=dirty)
        event = TraceEvent.REQUEST_HIT if resident else TraceEvent.REQUEST_MISS
        self.trace.note_page(page, event)
        if not hit:
            self.trace.note_page(page, TraceEvent.READ)
        return hit

    def create(self, page: PageId) -> None:
        super().create(page)
        self.trace.note_page(page, TraceEvent.CREATE)
