"""The fast in-memory storage engine: no page simulation at all.

:class:`FastEngine` answers the same queries as the paged engine --
the algorithms' bitset/tree computation is untouched, so closures and
tuple-level counters (unions, generated tuples, duplicates) are
bit-identical -- but every page-cost hook is free: no buffer pool, no
clustered index charges, no block layout.  Page-I/O counters therefore
stay at zero.  This is the backend for differential testing, the
:mod:`repro.api` query path, and serving workloads where the paper's
cost model is irrelevant and runtime is not.

Capability honesty: the chaos fault plane, page tracing, and substrate
auditing all live in the paged structures this engine does not have.
Rather than silently no-op'ing, construction fails with a structured
:class:`~repro.errors.EngineCapabilityError` whenever one of those
planes was *explicitly requested* (a fault plan is armed, a trace is
attached, or ``--audit``/``REPRO_AUDIT`` was set).  The implicit
default ("cheap" auditing) simply detaches: there is no paged
substrate to check, so no auditor is constructed and
:meth:`FastEngine.audit` is a no-op.  Parity with
the paged engine is enforced externally by the differential battery
and the golden-record tests.
"""

from __future__ import annotations

import sys
from array import array
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.chaos.audit import explicit_audit_mode
from repro.chaos.faults import STORAGE_FAULT_KINDS, active_plan
from repro.errors import StorageError
from repro.storage.engine import (
    CAP_AUDIT,
    CAP_CHAOS,
    CAP_TRACE,
    ListStore,
    StorageEngine,
)
from repro.storage.page import BLOCK_CAPACITY, PageId, PageKind
from repro.storage.successor_store import ListPlacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.audit import InvariantAuditor
    from repro.graphs.digraph import Digraph
    from repro.metrics.counters import MetricSet
    from repro.obs.spans import SpanRecorder
    from repro.obs.tracing import TraceCollector
    from repro.storage.trace import PageTrace


_ABSENT = -1
"""Sentinel length meaning "no list exists for this node id"."""


class FastListStore(ListStore):
    """Length-only successor lists: a flat array, no pages, no blocks.

    The algorithms keep list *contents* themselves (bitsets/trees); the
    paged store tracks layout so page touches can be charged.  With no
    page costs to model, only the lengths remain -- they feed the
    tuple-I/O accounting shared by both engines.  Node ids are the
    dense ``0..n-1`` space of the graph, so lengths live in one
    ``array('q')`` indexed by node (``-1`` = absent) instead of a
    dict -- no per-entry boxing, and sizing it up front from the
    graph's node count makes list creation allocation-free.
    """

    def __init__(self, block_capacity: int = BLOCK_CAPACITY, capacity: int = 0) -> None:
        self.block_capacity = block_capacity
        self._lengths = array("q", [_ABSENT]) * capacity
        self._count = 0

    def __contains__(self, node: int) -> bool:
        lengths = self._lengths
        return 0 <= node < len(lengths) and lengths[node] != _ABSENT

    def _grow_to(self, node: int) -> None:
        """Widen the length array to cover ``node`` (amortised doubling)."""
        needed = node + 1
        grown = max(needed, 2 * len(self._lengths))
        self._lengths.extend(array("q", [_ABSENT]) * (grown - len(self._lengths)))

    def create_list(self, node: int, initial_entries: int = 0) -> None:
        if node < 0:
            raise StorageError(f"node id must be non-negative, got {node}")
        if node >= len(self._lengths):
            self._grow_to(node)
        elif self._lengths[node] != _ABSENT:
            raise StorageError(f"list for node {node} already exists")
        self._lengths[node] = initial_entries
        self._count += 1

    def read_list(self, node: int) -> int:
        # The existence check is inlined (no _require call): these are
        # the hottest store entry points under the fast engine.
        lengths = self._lengths
        if not 0 <= node < len(lengths) or lengths[node] == _ABSENT:
            raise StorageError(f"no successor list exists for node {node}")
        return 0

    def read_blocks(self, node: int, block_indexes: list[int]) -> int:
        lengths = self._lengths
        if not 0 <= node < len(lengths) or lengths[node] == _ABSENT:
            raise StorageError(f"no successor list exists for node {node}")
        return 0

    def append(self, node: int, count: int) -> None:
        if count <= 0:
            return
        lengths = self._lengths
        if not 0 <= node < len(lengths) or lengths[node] == _ABSENT:
            raise StorageError(f"no successor list exists for node {node}")
        lengths[node] += count

    def rewrite_list(self, node: int, new_length: int) -> None:
        lengths = self._lengths
        if not 0 <= node < len(lengths) or lengths[node] == _ABSENT:
            raise StorageError(f"no successor list exists for node {node}")
        lengths[node] = new_length

    def drop_list(self, node: int) -> None:
        lengths = self._lengths
        if 0 <= node < len(lengths) and lengths[node] != _ABSENT:
            lengths[node] = _ABSENT
            self._count -= 1

    def length(self, node: int) -> int:
        lengths = self._lengths
        if 0 <= node < len(lengths) and lengths[node] != _ABSENT:
            return lengths[node]
        return 0

    @property
    def list_count(self) -> int:
        """How many lists currently exist."""
        return self._count

    def pages_of(self, node: int) -> tuple[PageId, ...]:
        return ()  # shared empty tuple: no layout, no allocation

    def page_count(self, node: int) -> int:
        return 0

    def block_index_of_entry(self, node: int, entry_index: int) -> int:
        length = self._require(node)
        if not 0 <= entry_index < length:
            raise StorageError(
                f"entry {entry_index} out of range for list of length {length}"
            )
        return entry_index // self.block_capacity

    @property
    def total_pages(self) -> int:
        return 0

    def _require(self, node: int) -> int:
        lengths = self._lengths
        if not 0 <= node < len(lengths) or lengths[node] == _ABSENT:
            raise StorageError(f"no successor list exists for node {node}")
        return lengths[node]


class FastEngine(StorageEngine):
    """Pure in-memory execution: identical closures, zero page costs."""

    name = "fast"
    capabilities = frozenset()

    def __init__(
        self,
        graph: "Digraph",
        system: Any,
        *,
        metrics: "MetricSet",
        needs_inverse: bool = False,
        recorder: "SpanRecorder | None" = None,
        trace: "PageTrace | None" = None,
        auditor: "InvariantAuditor | None" = None,
        collector: "TraceCollector | None" = None,
    ) -> None:
        # Refuse explicitly requested planes this engine cannot honour.
        if trace is not None:
            self.require(CAP_TRACE, "page tracing needs the simulated pool")
        if collector is not None:
            self.require(CAP_TRACE, "event tracing needs the simulated pool")
        plan = active_plan()
        if plan is not None and plan.arms_any(STORAGE_FAULT_KINDS):
            # Serve-site faults (slow-handler, poisoned-cache-entry, ...)
            # live above the seam and work on every engine; only the
            # storage/experiment sites need the paged substrate.
            self.require(CAP_CHAOS, "the storage fault sites live in the paged substrate")
        if explicit_audit_mode() not in (None, "off"):
            self.require(CAP_AUDIT, "substrate auditing needs the paged structures")
        self.graph = graph
        self.system = system
        self.metrics = metrics
        self.collector = None
        self.pool = None
        self.relation = None
        self.inverse_relation = None
        self.store: FastListStore = FastListStore(
            block_capacity=system.block_capacity, capacity=graph.num_nodes
        )

    # -- relation access paths ----------------------------------------------

    def scan_relation(self) -> int:
        return 0

    def read_successors(self, node: int) -> Sequence[int]:
        return self.graph.successors(node)

    def read_predecessors(self, node: int) -> Sequence[int]:
        return self.graph.predecessors(node)

    def probe_arcs_unclustered(self, node_arcs: int, seed_position: int) -> None:
        pass

    # -- successor-list storage ---------------------------------------------

    def make_list_store(
        self,
        kind: PageKind = PageKind.SUCCESSOR,
        policy: ListPlacementPolicy = ListPlacementPolicy.MOVE_SELF,
        *,
        blocks_per_page: int | None = None,
        block_capacity: int | None = None,
    ) -> FastListStore:
        # No page simulation: the block geometry has nothing to shape.
        return FastListStore(capacity=self.graph.num_nodes)

    # -- page-level cost hooks (all free) ------------------------------------

    def touch_page(self, kind: PageKind, number: int, dirty: bool = False) -> None:
        pass

    def create_page(self, kind: PageKind, number: int) -> None:
        pass

    def flush_output(self, pages: Iterable[PageId]) -> None:
        pass

    # -- frame pinning: nothing is ever resident, nothing ever pinned --------

    def pin_page(self, page: PageId) -> None:
        pass

    def unpin_page(self, page: PageId) -> None:
        pass

    @property
    def pinned_count(self) -> int:
        return 0

    @property
    def frame_capacity(self) -> int:
        # Effectively unbounded: Hybrid's memory-pressure guards never
        # fire, so it degenerates to one block expanded in strict
        # reverse topological order (the BTC-equivalent schedule).
        return sys.maxsize

    # -- observability ------------------------------------------------------

    def audit(self, auditor: "InvariantAuditor") -> None:
        """No paged substrate to inspect: auditing is a no-op here."""

    def snapshot(self) -> dict[str, Any]:
        return {"engine": self.name, "lists": self.store.list_count}

    def reset(self) -> None:
        self.store = FastListStore(
            block_capacity=self.system.block_capacity,
            capacity=self.graph.num_nodes,
        )
