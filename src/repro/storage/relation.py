"""The input arc relation on simulated disk.

Section 4 of the paper: "We assume that the corresponding relation is
stored on disk as a set of tuples clustered on the source attribute.
We also assume the existence of a clustered index on the source
attribute."  The JKB2 implementation of Compute_Tree additionally
assumes a *dual representation*: an inverse relation clustered and
indexed on the destination attribute (Section 4.1).

:class:`ArcRelation` lays the arc tuples out in (source, destination)
order, 256 tuples per 2048-byte page, and models a two-level clustered
index (a root page plus leaf pages of 256 entries).  All accesses are
charged through a :class:`~repro.storage.buffer.BufferPool`.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.graphs.digraph import Digraph
from repro.storage.buffer import BufferPool
from repro.storage.page import (
    INDEX_ENTRIES_PER_PAGE,
    TUPLES_PER_PAGE,
    PageId,
    PageKind,
    pages_needed,
)


class ArcRelation:
    """Arc tuples clustered on the source attribute, with a clustered index.

    Parameters
    ----------
    graph:
        The logical graph whose arcs the relation stores.  The arc order
        on disk is (source, destination), matching source clustering.
    kind / index_kind:
        Page kinds used for data and index pages, so the forward and
        inverse relations are distinct page spaces in the buffer pool.
    """

    def __init__(
        self,
        graph: Digraph,
        kind: PageKind = PageKind.RELATION,
        index_kind: PageKind = PageKind.INDEX,
    ) -> None:
        self._graph = graph
        self.kind = kind
        self.index_kind = index_kind
        # offsets[v] = position of node v's first tuple in the file.
        # The graph's CSR row offsets are exactly this layout (arcs
        # clustered on source, sorted), so the relation shares them
        # zero-copy instead of re-deriving them per node.
        self._offsets = graph.csr_offsets
        self.num_tuples = self._offsets[graph.num_nodes]
        self.num_pages = pages_needed(self.num_tuples, TUPLES_PER_PAGE)
        self.num_index_leaves = pages_needed(graph.num_nodes, INDEX_ENTRIES_PER_PAGE)

    # -- layout ------------------------------------------------------------

    def pages_for_node(self, node: int) -> range:
        """The data-page numbers holding ``node``'s tuples (may be empty)."""
        start, end = self._offsets[node], self._offsets[node + 1]
        if start == end:
            return range(0)
        first = start // TUPLES_PER_PAGE
        last = (end - 1) // TUPLES_PER_PAGE
        return range(first, last + 1)

    def page_of_arc(self, src: int, dst: int) -> int:
        """The data-page number holding the tuple (src, dst).

        Raises :class:`KeyError` if the arc is not in the relation.
        """
        successors = self._graph.successors(src)
        position = bisect_left(successors, dst)
        if position == len(successors) or successors[position] != dst:
            raise KeyError(f"arc ({src}, {dst}) not in relation")
        return (self._offsets[src] + position) // TUPLES_PER_PAGE

    # -- charged access paths ------------------------------------------------

    def scan(self, pool: BufferPool) -> int:
        """Sequentially read the whole relation; return pages touched.

        Used by full-closure restructuring, which converts every tuple
        to successor-list format in one pass.
        """
        for number in range(self.num_pages):
            pool.access(PageId(self.kind, number))
        return self.num_pages

    def read_successors(self, node: int, pool: BufferPool, use_index: bool = True) -> list[int]:
        """Fetch ``node``'s successor tuples via the clustered index.

        Charges the index root + leaf access and the data page(s) of the
        node's tuple run, then returns the successors.  Selection-query
        restructuring uses this to search forward from the source nodes
        (Section 3.6: "this can be done efficiently if the input
        relation is clustered and indexed on the source attribute").
        """
        if use_index:
            self._charge_index(node, pool)
        for number in self.pages_for_node(node):
            pool.access(PageId(self.kind, number))
        return self._graph.successors(node)

    def probe_arcs_unclustered(self, node_arcs: int, pool: BufferPool, seed_position: int) -> None:
        """Charge ``node_arcs`` unclustered tuple accesses.

        Models fetching tuples through an access path that is *not*
        clustered on the lookup attribute: each matching tuple may live
        on a different page, so one data-page access is charged per
        tuple, spread across the file.  This is how the plain JKB
        implementation (no inverse relation) obtains immediate
        predecessor lists; its preprocessing cost therefore grows with
        the arc count, reproducing the blow-up of Figure 7(a).
        """
        if self.num_pages == 0:
            return
        for step in range(node_arcs):
            # Deterministic scatter across the file (linear congruence).
            number = (seed_position * 2654435761 + step * 40503) % self.num_pages
            pool.access(PageId(self.kind, number))

    # -- internals -----------------------------------------------------------

    def _charge_index(self, node: int, pool: BufferPool) -> None:
        root = PageId(self.index_kind, self.num_index_leaves)
        pool.access(root)
        leaf = PageId(self.index_kind, node // INDEX_ENTRIES_PER_PAGE)
        pool.access(leaf)


class InverseArcRelation(ArcRelation):
    """The inverse relation: arcs clustered and indexed on destination.

    Built from the arc-reversed graph, so "successors" of a node in this
    relation are its *predecessors* in the original graph.  JKB2 reads
    immediate predecessor lists through this relation (Section 4.1).
    """

    def __init__(self, graph: Digraph) -> None:
        super().__init__(
            graph.reverse(),
            kind=PageKind.INVERSE_RELATION,
            index_kind=PageKind.INVERSE_INDEX,
        )

    def read_predecessors(self, node: int, pool: BufferPool, use_index: bool = True) -> list[int]:
        """Fetch ``node``'s immediate predecessors via the inverse index."""
        return self.read_successors(node, pool, use_index=use_index)
