"""Page geometry and page identity.

The constants below are taken directly from Section 5.1 of the paper:

* pages are 2048 bytes;
* input-relation tuples are 8 bytes (two integers), so 256 tuples fit on
  a relation page;
* after restructuring, a successor-list page is divided into 30 blocks,
  each holding up to 15 successor entries, so 450 successors fit on a
  successor-list page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

PAGE_SIZE = 2048
"""Size of a disk page in bytes."""

TUPLE_SIZE = 8
"""Size of an arc-relation tuple in bytes (two 4-byte integers)."""

TUPLES_PER_PAGE = PAGE_SIZE // TUPLE_SIZE
"""Arc tuples per relation page (256)."""

BLOCKS_PER_PAGE = 30
"""Successor-list blocks per page."""

BLOCK_CAPACITY = 15
"""Successor entries per block."""

SUCCESSORS_PER_PAGE = BLOCKS_PER_PAGE * BLOCK_CAPACITY
"""Successor entries per successor-list page (450)."""

INDEX_ENTRIES_PER_PAGE = PAGE_SIZE // 8
"""Entries per clustered-index page (key + page pointer, 8 bytes)."""


class PageKind(enum.Enum):
    """The different families of pages the simulator distinguishes.

    Keeping page kinds separate lets the experiments break total page
    I/O down by data structure (input relation vs. index vs. successor
    lists), which Section 6.1 of the paper does when attributing cost to
    the restructuring and computation phases.
    """

    RELATION = "relation"
    INVERSE_RELATION = "inverse_relation"
    INDEX = "index"
    INVERSE_INDEX = "inverse_index"
    SUCCESSOR = "successor"
    PREDECESSOR = "predecessor"
    OUTPUT = "output"
    DELTA = "delta"
    CHAIN = "chain"

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash -- and much cheaper for PageId hashing and the
    # per-kind I/O counters on the hot path.
    __hash__ = object.__hash__


@dataclass(frozen=True, slots=True)
class PageId:
    """Identity of a simulated disk page.

    ``kind`` names the data structure the page belongs to and ``number``
    is the page's position within that structure.  Two pages are the
    same page if and only if their :class:`PageId` values are equal.
    """

    kind: PageKind
    number: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageId({self.kind.value}:{self.number})"


ENTRY_SIZE = 4
"""Size of one successor entry in bytes (a 4-byte node id)."""


def validate_block_geometry(blocks_per_page: int, block_capacity: int) -> None:
    """Check that a successor-page geometry physically fits a page.

    The paper's layout is 30 blocks x 15 entries x 4 bytes = 1800 of
    2048 bytes (the remainder is block headers).  A configuration whose
    blocks cannot fit on one 2048-byte page would silently undercount
    page I/O, so the successor store and the invariant auditor both
    reject it up front.

    Raises :class:`~repro.errors.ConfigurationError` (a ``ValueError``)
    with the offending values.
    """
    if blocks_per_page <= 0 or block_capacity <= 0:
        raise ConfigurationError(
            "blocks_per_page and block_capacity must both be positive, got "
            f"blocks_per_page={blocks_per_page}, block_capacity={block_capacity}"
        )
    payload = blocks_per_page * block_capacity * ENTRY_SIZE
    if payload > PAGE_SIZE:
        raise ConfigurationError(
            f"successor-page geometry {blocks_per_page} blocks x "
            f"{block_capacity} entries needs {payload} bytes, which does not "
            f"fit a {PAGE_SIZE}-byte page"
        )


def pages_needed(entries: int, per_page: int) -> int:
    """Number of pages needed to hold ``entries`` items, ``per_page`` each.

    >>> pages_needed(0, 256)
    0
    >>> pages_needed(1, 256)
    1
    >>> pages_needed(257, 256)
    2
    """
    if entries <= 0:
        return 0
    return -(-entries // per_page)
