"""Paged successor-list storage.

After the restructuring phase the input tuples live in *successor list
format*: each 2048-byte page is divided into 30 blocks of up to 15
successor entries, so a page holds up to 450 successors (Section 5.1).
A successor list is a chain of blocks, preferably on one page
(intra-list clustering); lists created consecutively share pages
(inter-list clustering).  The algorithms create lists in reverse
topological order, so lists that are unioned together tend to be
neighbours on disk -- the layout decision described in [7].

When a list grows and its page has no free block, the page must be
*split*: a list replacement (placement) policy decides whether the
expanding list continues on a fresh page or another list on the page is
relocated to make room (Section 5.1: "A list replacement policy is used
when a successor list expands to the point where at least one of the
other lists on the page must be moved to a new page").  The paper found
the choice secondary; three policies are provided so that finding can
be reproduced.

The store tracks *layout* only -- which blocks of which pages belong to
which list and how full they are.  List *contents* are kept by the
algorithms (as bitsets or trees); keeping the two separate lets unions
run at bitset speed while page touches stay faithful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.chaos.faults import FaultKind, active_plan
from repro.errors import StorageError, TornWriteError
from repro.obs.tracing import EV_BLOCK_RELOCATE, EV_BLOCK_SPLIT
from repro.storage.buffer import BufferPool
from repro.storage.page import (
    BLOCK_CAPACITY,
    BLOCKS_PER_PAGE,
    PageId,
    PageKind,
    validate_block_geometry,
)


class ListPlacementPolicy(enum.Enum):
    """What to do when a list must grow on a full page.

    * ``MOVE_SELF`` -- the expanding list's new blocks go to the store's
      current append page (no relocation I/O; intra-list clustering
      degrades).
    * ``MOVE_LARGEST`` -- the largest *other* list on the page is
      relocated to a fresh page, freeing blocks in place (costs the
      relocation's page writes; preserves the expanding list's
      clustering).
    * ``MOVE_SMALLEST`` -- as above but the smallest other list moves
      (cheapest relocation, frees the fewest blocks).
    """

    MOVE_SELF = "move_self"
    MOVE_LARGEST = "move_largest"
    MOVE_SMALLEST = "move_smallest"


@dataclass
class _ListLayout:
    """Where one successor list lives: (page, used-entries) per block."""

    blocks: list[list[int]] = field(default_factory=list)  # [page, used] pairs
    length: int = 0

    def pages(self) -> list[int]:
        """Distinct page numbers holding this list, in block order."""
        seen: dict[int, None] = {}
        for page, _used in self.blocks:
            seen[page] = None
        return list(seen)


class SuccessorListStore:
    """Block-structured successor-list pages behind a buffer pool.

    Parameters
    ----------
    pool:
        The buffer pool all page touches are charged to.
    kind:
        Page kind for this store's pages (``SUCCESSOR`` for working
        lists, ``OUTPUT`` for the final result file).
    policy:
        The list placement policy applied on page splits.
    """

    def __init__(
        self,
        pool: BufferPool,
        kind: PageKind = PageKind.SUCCESSOR,
        policy: ListPlacementPolicy = ListPlacementPolicy.MOVE_SELF,
        blocks_per_page: int = BLOCKS_PER_PAGE,
        block_capacity: int = BLOCK_CAPACITY,
    ) -> None:
        validate_block_geometry(blocks_per_page, block_capacity)
        self.pool = pool
        self.kind = kind
        self.policy = policy
        self.blocks_per_page = blocks_per_page
        self.block_capacity = block_capacity
        self._layouts: dict[int, _ListLayout] = {}
        self._free_blocks: dict[int, int] = {}  # page number -> free block slots
        self._lists_on_page: dict[int, set[int]] = {}
        self._next_page = 0
        self._append_page: int | None = None
        self._relocating = False
        self.splits = 0
        self.relocations = 0

    # -- queries -------------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._layouts

    def length(self, node: int) -> int:
        """Current number of entries in ``node``'s list."""
        return self._layouts[node].length if node in self._layouts else 0

    def pages_of(self, node: int) -> list[PageId]:
        """The distinct pages holding ``node``'s list, without charging I/O."""
        layout = self._layouts.get(node)
        if layout is None:
            return []
        return [PageId(self.kind, number) for number in layout.pages()]

    def page_count(self, node: int) -> int:
        """How many pages ``node``'s list spans."""
        layout = self._layouts.get(node)
        return len(layout.pages()) if layout is not None else 0

    @property
    def total_pages(self) -> int:
        """Number of pages the store has allocated so far."""
        return self._next_page

    # -- lifecycle -------------------------------------------------------------

    def create_list(self, node: int, initial_entries: int = 0) -> None:
        """Allocate a new (possibly empty) list for ``node``.

        Lists should be created in the order they will be processed
        (reverse topological order) so that consecutive lists share
        pages -- the inter-list clustering of [7].  The pages receiving
        the initial entries are materialised in the buffer pool as new
        dirty pages (no read is charged: they never existed on disk).
        """
        if node in self._layouts:
            raise StorageError(f"list for node {node} already exists")
        layout = _ListLayout()
        self._layouts[node] = layout
        if initial_entries:
            self._extend(node, layout, initial_entries)

    def read_list(self, node: int) -> int:
        """Touch every page of ``node``'s list; return the page count.

        This is what a successor-list *read* costs: each distinct page
        of the list is requested from the buffer pool.
        """
        layout = self._require(node)
        pages = layout.pages()
        for number in pages:
            self.pool.access(PageId(self.kind, number))
        return len(pages)

    def read_blocks(self, node: int, block_indexes: list[int]) -> int:
        """Touch only the pages covering the given block indexes.

        The spanning-tree algorithms skip pruned subtrees, so they may
        avoid reading some blocks of a list (Section 3.5).  Returns the
        number of distinct pages touched.
        """
        layout = self._require(node)
        pages: dict[int, None] = {}
        for index in block_indexes:
            if 0 <= index < len(layout.blocks):
                pages[layout.blocks[index][0]] = None
        for number in pages:
            self.pool.access(PageId(self.kind, number))
        return len(pages)

    def append(self, node: int, count: int) -> None:
        """Append ``count`` new entries to ``node``'s list.

        The last block's page is touched dirty; new blocks are allocated
        according to the placement policy, possibly splitting a page.
        """
        if count <= 0:
            return
        layout = self._require(node)
        self._extend(node, layout, count)

    def rewrite_list(self, node: int, new_length: int) -> None:
        """Replace ``node``'s list with one of ``new_length`` entries.

        Used when a tree-structured list is re-serialised after a union:
        the old blocks are freed and fresh ones allocated contiguously.
        """
        layout = self._require(node)
        self._release_blocks(node, layout)
        layout.blocks = []
        layout.length = 0
        if new_length:
            self._extend(node, layout, new_length)

    def drop_list(self, node: int) -> None:
        """Free ``node``'s list without any I/O (memory-resident discard)."""
        layout = self._layouts.pop(node, None)
        if layout is not None:
            self._release_blocks(node, layout)

    def block_index_of_entry(self, node: int, entry_index: int) -> int:
        """Which block of ``node``'s list holds the entry at ``entry_index``."""
        layout = self._require(node)
        if not 0 <= entry_index < layout.length:
            raise StorageError(
                f"entry {entry_index} out of range for list of length {layout.length}"
            )
        return entry_index // self.block_capacity

    # -- internals ---------------------------------------------------------------

    def _require(self, node: int) -> _ListLayout:
        layout = self._layouts.get(node)
        if layout is None:
            raise StorageError(f"no successor list exists for node {node}")
        return layout

    def _extend(self, node: int, layout: _ListLayout, count: int) -> None:
        plan = active_plan()
        remaining = count
        # Fill the tail block first.
        if layout.blocks:
            tail = layout.blocks[-1]
            room = self.block_capacity - tail[1]
            if room > 0:
                take = min(room, remaining)
                self._check_torn_write(plan, node, tail[0])
                tail[1] += take
                remaining -= take
                self.pool.access(PageId(self.kind, tail[0]), dirty=True)
        while remaining > 0:
            page = self._page_for_new_block(node, layout)
            self._check_torn_write(plan, node, page)
            take = min(self.block_capacity, remaining)
            layout.blocks.append([page, take])
            self._free_blocks[page] -= 1
            self._lists_on_page.setdefault(page, set()).add(node)
            remaining -= take
        layout.length += count

    def _check_torn_write(self, plan, node: int, page: int) -> None:
        """Fault site: one successor-block write (chaos plane).

        The check sits *before* the layout mutation, so an injected
        torn write leaves the store's accounting exactly as it was --
        the injury is detected, not silently absorbed -- and a strict
        audit after the failure still passes.
        """
        if plan is None:
            return
        event = plan.fire(FaultKind.TORN_WRITE)
        if event is not None:
            raise TornWriteError(
                f"injected torn write of a successor block of node {node} on "
                f"page {page} (chaos opportunity {event.opportunity})"
            )

    def _page_for_new_block(self, node: int, layout: _ListLayout) -> int:
        """Pick the page for a list's next block, splitting if needed."""
        if layout.blocks:
            last_page = layout.blocks[-1][0]
            if self._free_blocks.get(last_page, 0) > 0:
                self.pool.access(PageId(self.kind, last_page), dirty=True)
                return last_page
            # The list's page is full: this is a page split.  Relocation
            # is suppressed while already relocating, so a victim's move
            # cannot cascade into further splits.
            self.splits += 1
            if self.pool.collector is not None:
                self.pool.collector.emit(
                    EV_BLOCK_SPLIT, self.kind.value, last_page, detail=f"node={node}"
                )
            if self.policy is not ListPlacementPolicy.MOVE_SELF and not self._relocating:
                self._relocating = True
                try:
                    freed = self._relocate_other_list(node, last_page)
                finally:
                    self._relocating = False
                if freed:
                    self.pool.access(PageId(self.kind, last_page), dirty=True)
                    return last_page
        return self._append_page_for(node)

    def _append_page_for(self, node: int) -> int:
        """The store's shared fill page (allocating a fresh one if full)."""
        page = self._append_page
        if page is None or self._free_blocks.get(page, 0) <= 0:
            page = self._next_page
            self._next_page += 1
            self._free_blocks[page] = self.blocks_per_page
            self._append_page = page
            self.pool.create(PageId(self.kind, page))
        else:
            self.pool.access(PageId(self.kind, page), dirty=True)
        return page

    def _relocate_other_list(self, node: int, page: int) -> bool:
        """Move another list's blocks off ``page``; return whether any moved."""
        candidates = [
            other
            for other in self._lists_on_page.get(page, ())
            if other != node
        ]
        if not candidates:
            return False
        key = self._layouts
        if self.policy is ListPlacementPolicy.MOVE_LARGEST:
            victim = max(candidates, key=lambda other: key[other].length)
        else:
            victim = min(candidates, key=lambda other: key[other].length)
        victim_layout = key[victim]

        # Read the victim's pages (it must be brought in to be moved)...
        for number in victim_layout.pages():
            self.pool.access(PageId(self.kind, number))
        # ...free its blocks on *this* page and re-allocate them elsewhere.
        moved_entries = 0
        kept_blocks = []
        for block in victim_layout.blocks:
            if block[0] == page:
                moved_entries += block[1]
                self._free_blocks[page] += 1
            else:
                kept_blocks.append(block)
        victim_layout.blocks = kept_blocks
        victim_layout.length -= moved_entries
        self._lists_on_page[page].discard(victim)
        if moved_entries:
            self.relocations += 1
            if self.pool.collector is not None:
                self.pool.collector.emit(
                    EV_BLOCK_RELOCATE, self.kind.value, page, detail=f"victim={victim}"
                )
            self._extend(victim, victim_layout, moved_entries)
        return self._free_blocks[page] > 0

    def _release_blocks(self, node: int, layout: _ListLayout) -> None:
        for page, _used in layout.blocks:
            self._free_blocks[page] += 1
        for page in layout.pages():
            lists = self._lists_on_page.get(page)
            if lists is not None:
                lists.discard(node)
