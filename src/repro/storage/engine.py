"""The storage-engine seam: one interface, interchangeable substrates.

Every algorithm in the suite expresses its storage needs through a
:class:`StorageEngine`: scanning and probing the input arc relation,
reading/appending successor lists, touching raw pages, pinning frames,
and flushing the answer.  Two engines implement the interface:

* ``paged`` (:mod:`repro.storage.paged`) -- the paper-faithful
  substrate: a simulated buffer pool over 2048-byte pages, clustered
  relations, and block-structured successor-list storage.  Every page
  touch is charged to the I/O counters, so this engine produces the
  numbers the study reports.
* ``fast`` (:mod:`repro.storage.fast`) -- a dict/array in-memory
  backend with **no page simulation**.  It returns bit-identical
  closures (and tuple-level counters) at a fraction of the runtime,
  for differential testing, the :mod:`repro.api` query path, and
  serving workloads where page costs are irrelevant.

Capability hooks
----------------

Cross-cutting planes (chaos fault injection, invariant auditing, page
tracing, frame pinning) attach through *capabilities*.  An engine
advertises what it supports via :meth:`StorageEngine.supports`; asking
for an unsupported capability raises a structured
:class:`~repro.errors.EngineCapabilityError` instead of silently
no-op'ing, so "the chaos run passed" can never mean "the faults were
dropped on the floor".

Engine selection
----------------

The engine is part of :class:`~repro.core.query.SystemConfig`
(``engine=``), resolved at construction time from, in order: an
explicit value, a process-wide default set by
:func:`set_default_engine` (the ``--engine`` flags), the
``REPRO_ENGINE`` environment variable, and finally ``"paged"``.
Because the resolved name is frozen into the config, pickled work units
carry their engine to worker processes unchanged.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import ConfigurationError, EngineCapabilityError
from repro.storage.page import (
    BLOCK_CAPACITY,
    BLOCKS_PER_PAGE,
    PAGE_SIZE,
    TUPLES_PER_PAGE,
    PageId,
    PageKind,
    pages_needed,
)
from repro.storage.successor_store import ListPlacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.chaos.audit import InvariantAuditor
    from repro.graphs.digraph import Digraph
    from repro.metrics.counters import MetricSet
    from repro.obs.spans import SpanRecorder
    from repro.obs.tracing import TraceCollector
    from repro.storage.trace import PageTrace

__all__ = [
    # Page vocabulary, re-exported so algorithm code can name page
    # identities and geometry without importing the substrate modules
    # (the RPL001 seam-isolation rule bans those imports outside
    # repro/storage/).
    "BLOCK_CAPACITY",
    "BLOCKS_PER_PAGE",
    "PAGE_SIZE",
    "TUPLES_PER_PAGE",
    "PageId",
    "PageKind",
    "pages_needed",
    # The seam itself.
    "CAP_AUDIT",
    "CAP_CHAOS",
    "CAP_PAGE_COSTS",
    "CAP_PINNING",
    "CAP_TRACE",
    "ENGINE_NAMES",
    "ENV_ENGINE",
    "ListPlacementPolicy",
    "ListStore",
    "StorageEngine",
    "default_engine",
    "make_engine",
    "set_default_engine",
]

ENV_ENGINE = "REPRO_ENGINE"
"""Environment variable selecting the default storage engine."""

ENGINE_NAMES = ("paged", "fast")
"""Registered engine names, in documentation order."""

# -- capabilities -----------------------------------------------------------

CAP_PAGE_COSTS = "page-costs"
"""Page touches are charged to the I/O counters (the paper's measure)."""

CAP_PINNING = "pinning"
"""Frames can be pinned/unpinned (the Hybrid algorithm's diagonal block)."""

CAP_CHAOS = "chaos"
"""The chaos fault plane's storage fault sites are live in this engine."""

CAP_AUDIT = "audit"
"""The invariant auditor can inspect this engine's substrate state."""

CAP_TRACE = "trace"
"""Page-identity tracing: a :class:`~repro.storage.trace.PageTrace` and/or
a structured :class:`~repro.obs.tracing.TraceCollector` can record the
engine's page, block and delta events."""


_default: str | None = None  # process-wide override; None = env / "paged"


def default_engine() -> str:
    """The effective default engine: explicit setting > REPRO_ENGINE > paged.

    A ``REPRO_ENGINE`` value naming no registered engine raises a
    :class:`~repro.errors.ConfigurationError` that spells out both the
    offending value and the accepted set -- a typo'd export must not
    silently fall back to the paged engine and measure the wrong thing.
    """
    if _default is not None:
        return _default
    value = os.environ.get(ENV_ENGINE, "").strip().lower()
    if not value:
        return "paged"
    if value not in ENGINE_NAMES:
        valid = ", ".join(ENGINE_NAMES)
        raise ConfigurationError(
            f"{ENV_ENGINE}={value!r} names an unknown storage engine; "
            f"valid engines: {valid}"
        )
    return value


def set_default_engine(name: str | None) -> str | None:
    """Set (or clear, with ``None``) the process-wide default engine.

    Returns the previous override so callers can restore it.
    """
    global _default
    if name is not None and name not in ENGINE_NAMES:
        valid = ", ".join(ENGINE_NAMES)
        raise ConfigurationError(
            f"unknown storage engine {name!r}; valid engines: {valid}"
        )
    previous = _default
    _default = name
    return previous


# -- the interface ----------------------------------------------------------


class ListStore(ABC):
    """Successor-list storage as the algorithms see it.

    The store tracks list *layout and length* only; list contents are
    kept by the algorithms as bitsets or trees (see
    :mod:`repro.storage.successor_store`).  The paged implementation is
    :class:`~repro.storage.successor_store.SuccessorListStore`
    (registered as a virtual subclass); the fast implementation is
    :class:`~repro.storage.fast.FastListStore`.
    """

    @abstractmethod
    def create_list(self, node: int, initial_entries: int = 0) -> None:
        """Allocate a new (possibly empty) list for ``node``."""

    @abstractmethod
    def read_list(self, node: int) -> int:
        """Charge one full read of ``node``'s list; return pages touched."""

    @abstractmethod
    def read_blocks(self, node: int, block_indexes: list[int]) -> int:
        """Charge a partial read covering the given block indexes."""

    @abstractmethod
    def append(self, node: int, count: int) -> None:
        """Append ``count`` new entries to ``node``'s list."""

    @abstractmethod
    def drop_list(self, node: int) -> None:
        """Free ``node``'s list without any I/O."""

    @abstractmethod
    def length(self, node: int) -> int:
        """Current number of entries in ``node``'s list."""

    @abstractmethod
    def pages_of(self, node: int) -> list[PageId]:
        """The distinct pages holding ``node``'s list (no I/O charged)."""

    @abstractmethod
    def page_count(self, node: int) -> int:
        """How many pages ``node``'s list spans."""

    @abstractmethod
    def __contains__(self, node: int) -> bool: ...


class StorageEngine(ABC):
    """Everything an algorithm may ask of the storage substrate.

    One engine is created per run.  ``store`` is the engine's main
    successor-list store; auxiliary stores (predecessor lists, the
    output file) come from :meth:`make_list_store`.  The relation
    access paths return the *logical* successors/predecessors while
    charging whatever the engine's cost model says they cost.
    """

    name: str = "abstract"
    capabilities: frozenset[str] = frozenset()
    store: ListStore
    collector: "TraceCollector | None" = None
    """The run's structured trace collector, when one is attached
    (requires ``CAP_TRACE``); emit sites above the pool reach it here."""

    # -- capability hooks ---------------------------------------------------

    def supports(self, capability: str) -> bool:
        """Whether this engine provides ``capability``."""
        return capability in self.capabilities

    def require(self, capability: str, detail: str = "") -> None:
        """Raise :class:`EngineCapabilityError` unless supported."""
        if capability not in self.capabilities:
            suffix = f" ({detail})" if detail else ""
            raise EngineCapabilityError(
                f"the {self.name!r} storage engine does not support "
                f"{capability!r}{suffix}; run with the 'paged' engine instead"
            )

    # -- relation access paths ----------------------------------------------

    @abstractmethod
    def scan_relation(self) -> int:
        """Sequentially read the whole arc relation; return pages touched."""

    @abstractmethod
    def read_successors(self, node: int) -> Sequence[int]:
        """Fetch ``node``'s successors (charging the clustered-index path).

        The row is read-only (a zero-copy CSR view on the fast engine);
        callers that need to mutate it must copy it first.
        """

    @abstractmethod
    def read_predecessors(self, node: int) -> Sequence[int]:
        """Fetch ``node``'s predecessors via the inverse relation (JKB2)."""

    @abstractmethod
    def probe_arcs_unclustered(self, node_arcs: int, seed_position: int) -> None:
        """Charge ``node_arcs`` scattered relation probes (plain JKB)."""

    # -- successor-list storage ---------------------------------------------

    @abstractmethod
    def make_list_store(
        self,
        kind: PageKind = PageKind.SUCCESSOR,
        policy: ListPlacementPolicy = ListPlacementPolicy.MOVE_SELF,
        *,
        blocks_per_page: int | None = None,
        block_capacity: int | None = None,
    ) -> ListStore:
        """An auxiliary list store in its own page space.

        ``blocks_per_page``/``block_capacity`` override the engine's
        default block geometry (``None`` keeps it); the generalized
        closure uses this for its wider (successor, value) entries.
        Engines without page simulation ignore the geometry.
        """

    # -- page-level cost hooks ----------------------------------------------

    @abstractmethod
    def touch_page(self, kind: PageKind, number: int, dirty: bool = False) -> None:
        """Charge one access of an explicitly numbered page."""

    @abstractmethod
    def create_page(self, kind: PageKind, number: int) -> None:
        """Materialise a brand-new dirty page (no read charged)."""

    @abstractmethod
    def flush_output(self, pages: Iterable[PageId]) -> None:
        """Write the given dirty pages out (the answer's write-out cost)."""

    # -- frame pinning (Hybrid's diagonal block) ----------------------------

    @abstractmethod
    def pin_page(self, page: PageId) -> None:
        """Fault in (dirty) and pin one page."""

    @abstractmethod
    def unpin_page(self, page: PageId) -> None:
        """Release one pinned page."""

    @property
    @abstractmethod
    def pinned_count(self) -> int:
        """Number of currently pinned frames."""

    @property
    @abstractmethod
    def frame_capacity(self) -> int:
        """Total frames available to the engine (the buffer pool size)."""

    # -- observability ------------------------------------------------------

    @abstractmethod
    def audit(self, auditor: "InvariantAuditor") -> None:
        """Run the auditor's substrate checks over this engine's state."""

    @abstractmethod
    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe summary of the engine's current storage state."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all run state (lists, resident pages); keep the input."""


def make_engine(
    system: Any,
    graph: "Digraph",
    *,
    metrics: "MetricSet",
    needs_inverse: bool = False,
    recorder: "SpanRecorder | None" = None,
    trace: "PageTrace | None" = None,
    auditor: "InvariantAuditor | None" = None,
    collector: "TraceCollector | None" = None,
) -> StorageEngine:
    """Build the engine named by ``system.engine`` for one run.

    ``recorder``, ``trace``, ``auditor`` and ``collector`` are the
    observability planes; engines that cannot honour an *explicitly
    requested* plane refuse at construction time (capability hooks)
    rather than running blind.
    """
    name = getattr(system, "engine", "") or default_engine()
    if name == "paged":
        from repro.storage.paged import PagedEngine

        return PagedEngine(
            graph,
            system,
            metrics=metrics,
            needs_inverse=needs_inverse,
            recorder=recorder,
            trace=trace,
            auditor=auditor,
            collector=collector,
        )
    if name == "fast":
        from repro.storage.fast import FastEngine

        return FastEngine(
            graph,
            system,
            metrics=metrics,
            needs_inverse=needs_inverse,
            recorder=recorder,
            trace=trace,
            auditor=auditor,
            collector=collector,
        )
    valid = ", ".join(ENGINE_NAMES)
    raise ConfigurationError(
        f"unknown storage engine {name!r}; valid engines: {valid}"
    )
