"""I/O statistics collected by the simulated buffer manager.

The paper's primary cost measure is page I/O, recorded by a simulated
buffer manager (Section 6.1).  :class:`IoStats` counts page reads and
writes broken down two ways:

* by *phase* -- restructuring vs. computation vs. output writing, so the
  cost breakdown of Table 3 can be reproduced; and
* by *page kind* -- relation, index, successor-list, ... so experiments
  can attribute I/O to individual data structures.

Buffer-pool requests and hits are also counted, from which the hit
ratios plotted in Figure 13 (c)/(d) are derived.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.storage.page import PageKind


class Phase(enum.Enum):
    """Execution phases of the uniform two-phase framework (Section 4)."""

    RESTRUCTURE = "restructure"
    COMPUTE = "compute"
    WRITEOUT = "writeout"

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash -- and much cheaper for the Counter-keyed I/O
    # accounting on the hot path.
    __hash__ = object.__hash__


@dataclass
class IoStats:
    """Mutable page-I/O counters shared by one algorithm execution."""

    # reads/writes key physical I/Os two ways at once: by Phase and by
    # PageKind (record_read/record_write bump both breakdowns).
    reads: Counter[Phase | PageKind] = field(default_factory=Counter)
    writes: Counter[Phase | PageKind] = field(default_factory=Counter)
    requests: Counter[Phase | PageKind] = field(default_factory=Counter)
    hits: Counter[Phase | PageKind] = field(default_factory=Counter)
    phase: Phase = Phase.RESTRUCTURE

    def record_request(self, kind: PageKind, hit: bool) -> None:
        """Record one buffer-pool page request and whether it hit."""
        self.requests[self.phase] += 1
        if hit:
            self.hits[self.phase] += 1

    def record_read(self, kind: PageKind) -> None:
        """Record one physical page read (a buffer-pool miss)."""
        self.reads[self.phase] += 1
        self.reads[kind] += 1

    def record_write(self, kind: PageKind) -> None:
        """Record one physical page write (dirty eviction or flush)."""
        self.writes[self.phase] += 1
        self.writes[kind] += 1

    # -- derived totals ------------------------------------------------

    def reads_in(self, phase: Phase) -> int:
        """Physical reads charged while ``phase`` was current."""
        return self.reads[phase]

    def writes_in(self, phase: Phase) -> int:
        """Physical writes charged while ``phase`` was current."""
        return self.writes[phase]

    def reads_of(self, kind: PageKind) -> int:
        """Physical reads of pages of the given kind."""
        return self.reads[kind]

    def writes_of(self, kind: PageKind) -> int:
        """Physical writes of pages of the given kind."""
        return self.writes[kind]

    @property
    def total_reads(self) -> int:
        """Physical page reads across all phases."""
        reads = self.reads
        return (
            reads[Phase.RESTRUCTURE] + reads[Phase.COMPUTE] + reads[Phase.WRITEOUT]
        )

    @property
    def total_writes(self) -> int:
        """Physical page writes across all phases."""
        writes = self.writes
        return (
            writes[Phase.RESTRUCTURE] + writes[Phase.COMPUTE] + writes[Phase.WRITEOUT]
        )

    @property
    def total_io(self) -> int:
        """Total page I/O operations (reads plus writes)."""
        return self.total_reads + self.total_writes

    @property
    def total_requests(self) -> int:
        """Buffer-pool page requests across all phases."""
        requests = self.requests
        return (
            requests[Phase.RESTRUCTURE]
            + requests[Phase.COMPUTE]
            + requests[Phase.WRITEOUT]
        )

    @property
    def total_hits(self) -> int:
        """Buffer-pool hits across all phases."""
        hits = self.hits
        return hits[Phase.RESTRUCTURE] + hits[Phase.COMPUTE] + hits[Phase.WRITEOUT]

    def hit_ratio(self, phase: Phase | None = None) -> float:
        """Buffer-pool hit ratio, overall or for a single phase.

        Figure 13 of the paper reports the hit ratio of the computation
        phase only; pass ``Phase.COMPUTE`` to reproduce that measure.
        Returns 0.0 when no requests were made.
        """
        if phase is None:
            requests, hits = self.total_requests, self.total_hits
        else:
            requests, hits = self.requests[phase], self.hits[phase]
        if requests == 0:
            return 0.0
        return hits / requests

    def estimated_io_seconds(self, ms_per_io: float = 20.0) -> float:
        """Estimated I/O time if the I/Os were real (Table 3's model).

        The paper multiplies the simulated I/O count by 20 ms, the
        measured cost of one I/O on its DECstation's RZ24 disk.
        """
        return self.total_io * ms_per_io / 1000.0
