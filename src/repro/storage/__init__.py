"""Simulated disk and memory substrate.

This subpackage models the storage environment of the paper (Section 4
and Section 5.1):

* :mod:`repro.storage.page` -- page geometry constants and page identity.
* :mod:`repro.storage.iostats` -- per-phase, per-page-kind I/O counters.
* :mod:`repro.storage.buffer` -- a buffer pool with pluggable page
  replacement policies and page pinning.
* :mod:`repro.storage.relation` -- the input arc relation stored as
  tuples clustered on the source attribute with a clustered index, plus
  the inverse relation clustered on the destination attribute used by
  the JKB2 variant of the Compute_Tree algorithm.
* :mod:`repro.storage.successor_store` -- paged successor-list storage
  (30 blocks of 15 successors per 2048-byte page) with page splits and
  list replacement policies.
* :mod:`repro.storage.engine` -- the :class:`StorageEngine` seam the
  algorithms actually program against, with the paper-faithful
  ``paged`` backend (:mod:`repro.storage.paged`) and the in-memory
  ``fast`` backend (:mod:`repro.storage.fast`).

Under the ``paged`` engine every page access flows through a
:class:`BufferPool`, so the page-I/O numbers reported by the
experiments are produced by the same mechanism the paper used: a
simulated buffer manager.
"""

from repro.storage.buffer import BufferPool, ReplacementPolicy, make_policy
from repro.storage.engine import (
    ENGINE_NAMES,
    ListStore,
    StorageEngine,
    default_engine,
    make_engine,
    set_default_engine,
)
from repro.storage.iostats import IoStats, Phase
from repro.storage.page import (
    BLOCKS_PER_PAGE,
    BLOCK_CAPACITY,
    PAGE_SIZE,
    SUCCESSORS_PER_PAGE,
    TUPLES_PER_PAGE,
    TUPLE_SIZE,
    PageId,
    PageKind,
)
from repro.storage.relation import ArcRelation, InverseArcRelation
from repro.storage.successor_store import ListPlacementPolicy, SuccessorListStore

__all__ = [
    "ArcRelation",
    "BLOCKS_PER_PAGE",
    "BLOCK_CAPACITY",
    "BufferPool",
    "ENGINE_NAMES",
    "InverseArcRelation",
    "IoStats",
    "ListPlacementPolicy",
    "ListStore",
    "PAGE_SIZE",
    "PageId",
    "PageKind",
    "Phase",
    "ReplacementPolicy",
    "SUCCESSORS_PER_PAGE",
    "StorageEngine",
    "SuccessorListStore",
    "TUPLES_PER_PAGE",
    "TUPLE_SIZE",
    "default_engine",
    "make_engine",
    "make_policy",
    "set_default_engine",
]
