"""The paper-faithful paged storage engine.

:class:`PagedEngine` wires together the simulated substrate the study's
numbers come from -- a :class:`~repro.storage.buffer.BufferPool` of
2048-byte frames, the clustered :class:`~repro.storage.relation.ArcRelation`
(plus its inverse for JKB2), and block-structured
:class:`~repro.storage.successor_store.SuccessorListStore` pages -- and
exposes them through the :class:`~repro.storage.engine.StorageEngine`
interface.  Every method is a 1:1 delegation to the component that
implemented it before the seam existed, so the engine's counters are
bit-identical to the pre-seam substrate.

This engine supports every capability: page costs, pinning, chaos
fault injection (the fault sites live in the pool and the store),
invariant auditing, and page tracing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, make_policy
from repro.storage.engine import (
    CAP_AUDIT,
    CAP_CHAOS,
    CAP_PAGE_COSTS,
    CAP_PINNING,
    CAP_TRACE,
    ListStore,
    StorageEngine,
)
from repro.storage.page import PageId, PageKind
from repro.storage.relation import ArcRelation, InverseArcRelation
from repro.storage.successor_store import ListPlacementPolicy, SuccessorListStore
from repro.storage.trace import TracedPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.audit import InvariantAuditor
    from repro.graphs.digraph import Digraph
    from repro.metrics.counters import MetricSet
    from repro.obs.spans import SpanRecorder
    from repro.obs.tracing import TraceCollector
    from repro.storage.trace import PageTrace

# SuccessorListStore predates the seam and conforms structurally.
ListStore.register(SuccessorListStore)


class PagedEngine(StorageEngine):
    """Simulated paged disk: buffer pool, clustered relations, list pages."""

    name = "paged"
    capabilities = frozenset(
        {CAP_PAGE_COSTS, CAP_PINNING, CAP_CHAOS, CAP_AUDIT, CAP_TRACE}
    )

    def __init__(
        self,
        graph: "Digraph",
        system: Any,
        *,
        metrics: "MetricSet",
        needs_inverse: bool = False,
        recorder: "SpanRecorder | None" = None,
        trace: "PageTrace | None" = None,
        auditor: "InvariantAuditor | None" = None,
        collector: "TraceCollector | None" = None,
    ) -> None:
        self.graph = graph
        self.system = system
        self.metrics = metrics
        self._auditor = auditor
        self.collector = collector
        policy = make_policy(system.page_policy, seed=system.policy_seed)
        if trace is not None:
            self.pool: BufferPool = TracedPool(
                system.buffer_pages,
                trace,
                stats=metrics.io,
                policy=policy,
                recorder=recorder,
                auditor=auditor,
                collector=collector,
            )
        else:
            self.pool = BufferPool(
                system.buffer_pages,
                stats=metrics.io,
                policy=policy,
                recorder=recorder,
                auditor=auditor,
                collector=collector,
            )
        self.relation = ArcRelation(graph)
        self.inverse_relation: InverseArcRelation | None = (
            InverseArcRelation(graph) if needs_inverse else None
        )
        self.store: SuccessorListStore = SuccessorListStore(
            self.pool,
            policy=system.list_policy,
            blocks_per_page=system.blocks_per_page,
            block_capacity=system.block_capacity,
        )

    # -- relation access paths ----------------------------------------------

    def scan_relation(self) -> int:
        return self.relation.scan(self.pool)

    def read_successors(self, node: int) -> list[int]:
        return self.relation.read_successors(node, self.pool)

    def read_predecessors(self, node: int) -> list[int]:
        if self.inverse_relation is None:
            raise StorageError(
                "the inverse relation was not materialised for this run"
            )
        return self.inverse_relation.read_predecessors(node, self.pool)

    def probe_arcs_unclustered(self, node_arcs: int, seed_position: int) -> None:
        self.relation.probe_arcs_unclustered(
            node_arcs, self.pool, seed_position=seed_position
        )

    # -- successor-list storage ---------------------------------------------

    def make_list_store(
        self,
        kind: PageKind = PageKind.SUCCESSOR,
        policy: ListPlacementPolicy = ListPlacementPolicy.MOVE_SELF,
        *,
        blocks_per_page: int | None = None,
        block_capacity: int | None = None,
    ) -> SuccessorListStore:
        geometry: dict[str, int] = {}
        if blocks_per_page is not None:
            geometry["blocks_per_page"] = blocks_per_page
        if block_capacity is not None:
            geometry["block_capacity"] = block_capacity
        return SuccessorListStore(self.pool, kind=kind, policy=policy, **geometry)

    # -- page-level cost hooks ----------------------------------------------

    def touch_page(self, kind: PageKind, number: int, dirty: bool = False) -> None:
        self.pool.access(PageId(kind, number), dirty=dirty)

    def create_page(self, kind: PageKind, number: int) -> None:
        self.pool.create(PageId(kind, number))

    def flush_output(self, pages: Iterable[PageId]) -> None:
        self.pool.flush_selected(set(pages))

    # -- frame pinning ------------------------------------------------------

    def pin_page(self, page: PageId) -> None:
        self.pool.pin(page, dirty=True)

    def unpin_page(self, page: PageId) -> None:
        self.pool.unpin(page)

    @property
    def pinned_count(self) -> int:
        return self.pool.pinned_count

    @property
    def frame_capacity(self) -> int:
        return self.pool.capacity

    # -- observability ------------------------------------------------------

    def audit(self, auditor: "InvariantAuditor") -> None:
        auditor.check_pool(self.pool)
        auditor.check_store(self.store)
        auditor.check_relation(self.relation)
        if self.inverse_relation is not None:
            auditor.check_relation(self.inverse_relation)

    def snapshot(self) -> dict[str, Any]:
        return {
            "engine": self.name,
            "resident_pages": len(self.pool),
            "pinned_pages": self.pool.pinned_count,
            "store_pages": self.store.total_pages,
            "store_splits": self.store.splits,
            "store_relocations": self.store.relocations,
            "relation_pages": self.relation.num_pages,
        }

    def reset(self) -> None:
        """Drop all resident and list state; the input relation stays."""
        self.pool.unpin_all()
        for page in list(self.pool._frames):
            self.pool.evict(page)
        self.store = SuccessorListStore(
            self.pool,
            policy=self.system.list_policy,
            blocks_per_page=self.system.blocks_per_page,
            block_capacity=self.system.block_capacity,
        )
