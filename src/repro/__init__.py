"""repro -- a reproduction of Dar & Ramakrishnan,
"A Performance Study of Transitive Closure Algorithms" (SIGMOD 1994).

The package implements the paper's complete system: six disk-based
transitive closure algorithms (BTC, Hybrid, BJ, Search, Spanning Tree
and Compute_Tree) in the paper's uniform two-phase framework, running
on a simulated storage substrate (2 KB pages, buffer pool with
replacement policies, clustered relations and indexes, block-structured
successor-list pages), plus the synthetic DAG workload generator, the
rectangle model for characterising DAGs, and an experiment harness that
regenerates every table and figure of the paper's evaluation section.

Quick start::

    import repro

    graph = repro.generate_dag(500, avg_out_degree=5, locality=100, seed=7)
    result = repro.make_algorithm("btc").run(
        graph,
        repro.Query.ptc([0, 1, 2]),
        repro.SystemConfig(buffer_pages=20),
    )
    print(result.successors_of(0))
    print(result.metrics.summary())
"""

from repro.core import (
    ALGORITHM_NAMES,
    ChainIndex,
    ClosureResult,
    Query,
    SystemConfig,
    TwoPhaseAlgorithm,
    build_chain_index,
    make_algorithm,
)
from repro.errors import (
    BufferPoolExhaustedError,
    ConfigurationError,
    CyclicGraphError,
    InvalidNodeError,
    ReproError,
    StorageError,
    UnknownAlgorithmError,
)
from repro.graphs import (
    GRAPH_FAMILIES,
    Digraph,
    GraphProfile,
    build_graph,
    condensation,
    generate_dag,
    graph_family,
    magic_subgraph,
    profile_graph,
    topological_sort,
)
from repro.metrics import MetricSet
from repro.obs import (
    JsonlSink,
    RunRecord,
    SpanRecorder,
    compare_runs,
    span,
)
from repro.storage import BufferPool, IoStats, PageId, PageKind, SuccessorListStore

__version__ = "1.1.0"

__all__ = [
    "ALGORITHM_NAMES",
    "BufferPool",
    "BufferPoolExhaustedError",
    "ChainIndex",
    "ClosureResult",
    "ConfigurationError",
    "CyclicGraphError",
    "Digraph",
    "GRAPH_FAMILIES",
    "GraphProfile",
    "InvalidNodeError",
    "IoStats",
    "JsonlSink",
    "MetricSet",
    "PageId",
    "PageKind",
    "Query",
    "ReproError",
    "RunRecord",
    "SpanRecorder",
    "StorageError",
    "SuccessorListStore",
    "SystemConfig",
    "TwoPhaseAlgorithm",
    "UnknownAlgorithmError",
    "build_chain_index",
    "build_graph",
    "compare_runs",
    "condensation",
    "generate_dag",
    "graph_family",
    "magic_subgraph",
    "make_algorithm",
    "profile_graph",
    "span",
    "topological_sort",
    "__version__",
]
