"""Command line front end: run, profile, and compare algorithm runs.

Examples::

    # Full closure of graph family G6 with BTC, 20 buffer pages
    python -m repro --algorithm btc --family G6 --buffer-pages 20

    # 10-source selection on a custom random DAG with JKB2
    python -m repro --algorithm jkb2 --nodes 1000 --out-degree 5 \\
        --locality 200 --sources 10 --buffer-pages 10

    # Compare the whole suite on one query
    python -m repro --algorithm all --family G4 --scale 4 --sources 5

    # Emit one RunRecord per algorithm as JSONL (clean pipeline output)
    python -m repro --algorithm btc --family G4 --scale 4 \\
        --emit-json out.jsonl --quiet

    # Buffer-pool profile: hit-ratio timeline, kind histogram, hot pages
    python -m repro profile --algorithm btc --family G4 --scale 4

    # Chain-decomposition reachability index: build + verified spot queries
    python -m repro chains --family G4 --scale 4 --queries 500 --engine fast

    # Ingest a real edge list (SNAP format), build + verify the index
    python -m repro ingest soc-Epinions1.txt.gz --stats \\
        --build-index --engine fast --probes 1000

    # Serve reachability queries over HTTP with graceful degradation
    python -m repro serve --family G4 --scale 4 --engine fast --port 8642
    python -m repro serve --family G4 --scale 4 --self-check 200

    # Engine event trace (Chrome trace-event JSON; open in Perfetto)
    python -m repro --algorithm btc --family G4 --scale 4 \\
        --trace-out run.trace.json

    # Regression gate between two JSONL record files (total_io exact,
    # wall gated with a noise band derived from --reps samples)
    python -m repro compare baseline.jsonl out.jsonl --wall-threshold 0.1

    # Render the self-contained HTML dashboard
    python -m repro obs report --records out.jsonl --trace run.trace.json \\
        --out report.html
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.chaos.audit import AUDIT_MODES, ENV_AUDIT, set_audit_mode
from repro.chaos.faults import ENV_CHAOS, FaultPlan, set_fault_plan
from repro.core.base import TwoPhaseAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.datasets import build_graph, sample_sources
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.metrics.report import format_table
from repro.obs.compare import compare_runs, load_records
from repro.obs.record import RunRecord, summarise_trace
from repro.obs.sink import JsonlSink
from repro.obs.spans import SpanRecorder
from repro.obs.tracing import TraceCollector, validate_chrome_trace, write_chrome_trace
from repro.storage.engine import ENGINE_NAMES
from repro.storage.trace import PageTrace


def _build_graph(args: argparse.Namespace) -> Digraph:
    if args.family:
        return build_graph(args.family, seed=args.seed, scale=args.scale)
    return generate_dag(args.nodes, args.out_degree, args.locality, seed=args.seed)


def _build_query(graph: Digraph, args: argparse.Namespace) -> Query:
    if args.sources is None:
        return Query.full()
    return Query.ptc(sample_sources(graph, args.sources, seed=args.seed))


def _workload_dict(args: argparse.Namespace) -> dict[str, object]:
    """The workload tag stored in emitted run records (the cell identity)."""
    if args.family:
        return {"family": args.family, "scale": args.scale, "seed": args.seed}
    return {
        "nodes": args.nodes,
        "out_degree": args.out_degree,
        "locality": args.locality,
        "seed": args.seed,
    }


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    workload = parser.add_argument_group("workload")
    workload.add_argument("--family", help="paper graph family G1..G12")
    workload.add_argument("--scale", type=int, default=1,
                          help="shrink a paper family by this factor")
    workload.add_argument("--nodes", type=int, default=500,
                          help="custom graph: node count (default 500)")
    workload.add_argument("--out-degree", type=float, default=5,
                          help="custom graph: average out-degree F")
    workload.add_argument("--locality", type=int, default=100,
                          help="custom graph: generation locality l")
    workload.add_argument("--seed", type=int, default=0, help="random seed")
    workload.add_argument("--sources", type=int, default=None,
                          help="number of source nodes (omit for full closure)")


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    system = parser.add_argument_group("system")
    system.add_argument("--buffer-pages", "-M", type=int, default=20,
                        help="buffer pool size in pages (default 20)")
    system.add_argument("--page-policy", default="lru",
                        choices=["lru", "mru", "fifo", "clock", "random"])
    system.add_argument("--ilimit", type=float, default=0.2,
                        help="Hybrid diagonal-block ratio (default 0.2)")
    system.add_argument("--engine", default=None, choices=list(ENGINE_NAMES),
                        help="storage engine: 'paged' simulates the paper's "
                        "substrate and charges page I/O; 'fast' runs in memory "
                        "with identical closures and zero page costs "
                        "(default: REPRO_ENGINE or 'paged')")


def _system_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        buffer_pages=args.buffer_pages,
        page_policy=args.page_policy,
        ilimit=args.ilimit,
        engine=args.engine or "",
    )


# -- `run` (the default command) ---------------------------------------------


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Disk-based transitive closure algorithms "
        "(Dar & Ramakrishnan, SIGMOD 1994).",
    )
    all_names = (*ALGORITHM_NAMES, *BASELINE_NAMES, "all")
    parser.add_argument(
        "--algorithm", "-a", default="btc", choices=all_names,
        help="algorithm to run, or 'all' for the whole suite (default: btc)",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("--emit-json", metavar="PATH", default=None,
                           help="append one RunRecord JSON line per run to PATH")
    telemetry.add_argument("--trace-out", metavar="PATH", default=None,
                           help="write an engine event trace as Chrome "
                           "trace-event JSON to PATH (open in Perfetto or "
                           "chrome://tracing; needs the paged engine)")
    telemetry.add_argument("--quiet", "-q", action="store_true",
                           help="suppress the pre-run banner (keep the result table)")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                           help="run the algorithms across N worker processes "
                           "(default: 1 = in-process)")
    execution.add_argument("--reps", type=int, default=1, metavar="N",
                           help="repeat every run N times, emitting one "
                           "RunRecord per repetition (counters are "
                           "deterministic; this multiplies the timing "
                           "samples the compare gate's noise band uses)")
    execution.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                           help="per-algorithm wall-clock limit when --jobs > 1 "
                           "(one retry, then a structured error and exit 1)")
    robustness = parser.add_argument_group("robustness")
    robustness.add_argument("--chaos", metavar="SPEC", default=None,
                            help="arm the fault-injection plane, e.g. "
                            "'corrupt-read,after=100' (see docs/ROBUSTNESS.md)")
    robustness.add_argument("--audit", choices=AUDIT_MODES, default=None,
                            help="invariant audit mode "
                            "(default: cheap, or REPRO_AUDIT)")
    return parser


def _run_parallel(args: argparse.Namespace, names: list[str],
                  config: SystemConfig) -> int:
    """Fan the algorithm list across worker processes (``--jobs N``).

    Each algorithm becomes one work unit on the same (deterministically
    seeded) graph and query, so the result table is identical to the
    serial run's -- only wall-clock attribution differs.  With
    ``--trace-out``, workers instrument their unit exactly like the
    serial path and ship the trace events back; the parent merges the
    per-algorithm sections in submission order, so the trace file is
    event-for-event equal to a serial run's.
    """
    from repro.experiments.parallel import ExperimentEngine, GraphSpec, WorkUnit
    from repro.experiments.queries import QuerySpec

    if args.family:
        spec = GraphSpec(seed=args.seed, family=args.family, scale=args.scale)
    else:
        spec = GraphSpec.custom(args.nodes, args.out_degree, args.locality, args.seed)
    query_spec = (QuerySpec.full() if args.sources is None
                  else QuerySpec.selection(args.sources))
    workload = tuple(_workload_dict(args).items())

    def _units(collect_trace: bool) -> list["WorkUnit"]:
        return [
            WorkUnit(cell_index=index, algorithm=name, graph=spec, query=query_spec,
                     system=config, source_seed=args.seed, workload=workload,
                     collect_trace=collect_trace)
            for index, name in enumerate(names)
        ]

    with ExperimentEngine(jobs=args.jobs, timeout=args.timeout) as engine:
        # Only the first repetition carries the trace instrumentation:
        # counters are deterministic across reps, so one event stream
        # describes them all.
        outcomes = engine.map_units(_units(args.trace_out is not None))
        rep_outcomes = [engine.map_units(_units(False))
                        for _ in range(args.reps - 1)]

    sink = JsonlSink(args.emit_json, enabled=True) if args.emit_json is not None else None
    rows = []
    trace_sections = []
    for name, outcome in zip(names, outcomes):
        if outcome.error is not None:
            print(f"error: {outcome.error.render()}", file=sys.stderr)
            continue
        if sink is not None:
            sink.emit(outcome.record)
        if outcome.trace is not None:
            trace_sections.append((name, list(outcome.trace)))
        metrics = outcome.result.metrics
        rows.append(
            {
                "algorithm": name,
                "total_io": metrics.total_io,
                "answer_tuples": outcome.result.num_tuples,
                "unions": metrics.list_unions,
                "tuples_generated": metrics.tuples_generated,
                "marking_%": round(100 * metrics.marking_percentage, 1),
                "hit_ratio": round(metrics.hit_ratio(), 3),
                "cpu_s": round(metrics.cpu_seconds, 3),
            }
        )
    if sink is not None:
        for rep in rep_outcomes:
            for outcome in rep:
                if outcome.error is None:
                    sink.emit(outcome.record)
        sink.close()
    if args.trace_out is not None and trace_sections:
        write_chrome_trace(args.trace_out, trace_sections)
    if rows:
        print(format_table(rows))
    return 1 if engine.failures else 0


def _run_command(args: argparse.Namespace) -> int:
    parallel = args.jobs > 1
    if args.reps < 1:
        print("error: --reps must be >= 1", file=sys.stderr)
        return 2
    plan = None
    try:
        if args.chaos:
            plan = FaultPlan.parse(args.chaos)
            set_fault_plan(plan)
            # Worker processes (--jobs > 1) arm their own copy from the
            # environment in the pool initialiser.
            os.environ[ENV_CHAOS] = args.chaos
        if args.audit:
            set_audit_mode(args.audit)
            os.environ[ENV_AUDIT] = args.audit
        graph = _build_graph(args)
        query = _build_query(graph, args)
        config = _system_config(args)
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if args.algorithm == "all":
        names = [n for n in ALGORITHM_NAMES if not (n == "srch" and query.is_full)]
        names += list(BASELINE_NAMES)
    else:
        names = [args.algorithm]

    if not args.quiet:
        print(f"graph: n={graph.num_nodes} arcs={graph.num_arcs}  query: {query}  "
              f"M={config.buffer_pages}"
              + (f"  jobs={args.jobs}" if parallel else ""))

    if parallel:
        return _run_parallel(args, names, config)

    instrument = args.emit_json is not None or args.trace_out is not None
    # enabled=True: an explicit --emit-json beats the REPRO_OBS env toggle.
    sink = JsonlSink(args.emit_json, enabled=True) if args.emit_json is not None else None
    workload = _workload_dict(args)
    trace_sections: list[tuple[str, list]] = []

    rows = []
    try:
        for name in names:
            if name in BASELINE_NAMES:
                algorithm = make_baseline(name)
            else:
                algorithm = make_algorithm(name)
            # Baselines opt into the seam-level instrumentation (spans,
            # trace events) with `accepts_instrumentation`; only the
            # registry algorithms take a PageTrace.
            two_phase = isinstance(algorithm, TwoPhaseAlgorithm)
            instrumentable = two_phase or getattr(
                algorithm, "accepts_instrumentation", False
            )

            for rep in range(args.reps):
                recorder: SpanRecorder | None = None
                trace: PageTrace | None = None
                collector: TraceCollector | None = None
                if instrument and instrumentable:
                    # Counters are deterministic across reps; one event
                    # stream (the first rep's) describes them all.
                    if args.trace_out is not None and rep == 0:
                        collector = TraceCollector(label=name)
                        trace = PageTrace() if two_phase else None
                    recorder = SpanRecorder(collector=collector)

                start = time.perf_counter()
                if recorder is not None:
                    if two_phase:
                        result = algorithm.run(graph, query, config,
                                               recorder=recorder, trace=trace,
                                               collector=collector)
                    else:
                        result = algorithm.run(graph, query, config,
                                               recorder=recorder,
                                               collector=collector)
                else:
                    result = algorithm.run(graph, query, config)
                wall_seconds = time.perf_counter() - start

                if sink is not None:
                    record = RunRecord.from_result(
                        result, workload=workload, recorder=recorder,
                        trace=trace, wall_seconds=wall_seconds,
                    )
                    if plan is not None:
                        record.faults = [e.as_dict() for e in plan.drain_events()]
                    sink.emit(record)
                if collector is not None:
                    trace_sections.append((name, collector.events))

            metrics = result.metrics
            rows.append(
                {
                    "algorithm": name,
                    "total_io": metrics.total_io,
                    "answer_tuples": result.num_tuples,
                    "unions": metrics.list_unions,
                    "tuples_generated": metrics.tuples_generated,
                    "marking_%": round(100 * metrics.marking_percentage, 1),
                    "hit_ratio": round(metrics.hit_ratio(), 3),
                    "cpu_s": round(metrics.cpu_seconds, 3),
                }
            )
    except Exception as exc:  # the gate: broken runs must not exit 0
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if plan is not None:
            print(plan.summary(), file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            sink.close()

    if args.trace_out is not None:
        write_chrome_trace(args.trace_out, trace_sections)

    print(format_table(rows))
    return 0


# -- `profile` ----------------------------------------------------------------


def _profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one algorithm with full buffer-pool tracing and "
        "print its I/O profile: hit-ratio timeline, per-kind access "
        "histogram, hottest pages, and span timings.",
    )
    parser.add_argument(
        "--algorithm", "-a", default="btc", choices=ALGORITHM_NAMES,
        help="algorithm to profile (default: btc)",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    parser.add_argument("--top", type=int, default=10,
                        help="number of hot pages to show (default 10)")
    parser.add_argument("--buckets", type=int, default=10,
                        help="hit-ratio timeline buckets (default 10)")
    return parser


def _profile_command(args: argparse.Namespace) -> int:
    recorder = SpanRecorder()
    trace = PageTrace()
    try:
        graph = _build_graph(args)
        query = _build_query(graph, args)
        config = _system_config(args)
        result = make_algorithm(args.algorithm).run(
            graph, query, config, recorder=recorder, trace=trace
        )
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    profile = summarise_trace(trace, buckets=args.buckets, top_k=args.top)
    metrics = result.metrics
    print(f"{args.algorithm}: n={graph.num_nodes} arcs={graph.num_arcs} "
          f"query={query} M={config.buffer_pages}")
    print(f"total_io={metrics.total_io} "
          f"(reads={metrics.io.total_reads}, writes={metrics.io.total_writes})  "
          f"hit_ratio={metrics.hit_ratio():.3f}")

    timeline = profile["hit_ratio_timeline"]
    if timeline:
        print("\nhit-ratio timeline (run split into equal request chunks):")
        print("  " + "  ".join(f"{ratio:.2f}" for ratio in timeline))

    histogram = profile["kind_histogram"]
    if histogram:
        print("\n" + format_table(
            [{"kind": kind, "requests": count}
             for kind, count in sorted(histogram.items())],
            title="page requests by kind",
        ))

    if profile["hot_pages"]:
        print("\n" + format_table(profile["hot_pages"], title=f"top {args.top} hottest pages"))

    span_rows = [
        {
            "span": stats.path,
            "count": stats.count,
            "total_ms": round(1000 * stats.total_seconds, 3),
        }
        for stats in recorder.stats()
    ]
    if span_rows:
        print("\n" + format_table(span_rows, title="span timings"))
    return 0


# -- `chains` -----------------------------------------------------------------


def _chains_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chains",
        description="Build the frozen chain-decomposition reachability "
        "index over a workload, report its shape and build cost, and "
        "answer seeded reachable(u, v) spot queries -- each verified "
        "against a direct graph search, with the page-I/O counters "
        "checked to stay flat while querying (the index answers from "
        "memory in O(k)).",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    parser.add_argument("--queries", type=int, default=200, metavar="N",
                        help="number of seeded spot queries (default 200)")
    parser.add_argument("--probe", action="append", default=None, metavar="U:V",
                        help="answer one explicit reachable(U, V) probe "
                        "(repeatable; verified against a direct search)")
    parser.add_argument("--no-refine", action="store_true",
                        help="skip the chain-concatenation refinement pass")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress the banner (keep the summary line)")
    return parser


def _chains_command(args: argparse.Namespace) -> int:
    import random

    from repro.core.chains import build_chain_index
    from repro.errors import InvalidNodeError
    from repro.graphs.toposort import reachable_from
    from repro.serve.validate import parse_probe

    try:
        graph = _build_graph(args)
        sources = None
        if args.sources is not None:
            sources = sample_sources(graph, args.sources, seed=args.seed)
        config = _system_config(args)
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    # Validate the user's probe pairs *before* paying for the index
    # build: a malformed or out-of-range node id is a clean exit 2 with
    # the offending value and the graph's range, never a traceback.
    probes: list[tuple[int, int]] = []
    try:
        for spec in args.probe or []:
            probes.append(parse_probe(spec, graph.num_nodes))
    except InvalidNodeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        index = build_chain_index(
            graph, sources, config, refine=not args.no_refine
        )
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(f"graph: n={graph.num_nodes} arcs={graph.num_arcs}  "
              f"sources={'all' if sources is None else len(sources)}  "
              f"engine={config.engine or 'default'}")

    build_io = index.metrics.total_io
    vector_entries = sum(len(vector) for vector in index.vectors.values())

    # Seeded spot queries, each checked against a fresh forward search.
    # The index must not touch any storage while answering: the build
    # metrics are frozen, so any page I/O drift is a hard failure.
    failures = 0
    for u, v in probes:
        try:
            got = index.reachable(u, v)
        except InvalidNodeError as exc:
            print(f"error: probe {u}:{v}: {exc}", file=sys.stderr)
            return 2
        expected = v != u and v in reachable_from(graph, [u])
        verdict = "ok" if got == expected else "MISMATCH"
        print(f"probe reachable({u}, {v}) = {got}  verified={verdict}")
        if got != expected:
            failures += 1

    rng = random.Random(args.seed)
    candidates = list(sources) if sources is not None else list(graph.nodes())
    for _ in range(max(0, args.queries)):
        u = rng.choice(candidates)
        v = rng.randrange(graph.num_nodes)
        got = index.reachable(u, v)
        expected = v != u and v in reachable_from(graph, [u])
        if got != expected:
            failures += 1
            print(f"MISMATCH reachable({u}, {v}): index={got} search={expected}",
                  file=sys.stderr)
    if index.metrics.total_io != build_io:
        print(f"error: page I/O moved during queries "
              f"({build_io} -> {index.metrics.total_io})", file=sys.stderr)
        return 1
    if failures:
        print(f"error: {failures} mismatched quer{'y' if failures == 1 else 'ies'}",
              file=sys.stderr)
        return 1

    print(f"chains: k={index.k} nodes={len(index.vectors)} "
          f"vector_entries={vector_entries} build_io={build_io} "
          f"queries={max(0, args.queries)} verified=ok")
    return 0


# -- `serve` ------------------------------------------------------------------


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve reachable(u, v) / successors(u) / batch queries "
        "over HTTP (TCP or a UNIX-domain socket) from a frozen chain "
        "index built once at startup, with per-request deadlines, bounded "
        "admission with load shedding, and breaker-guarded degradation to "
        "the last-good index (see docs/ROBUSTNESS.md, 'Serving and "
        "degradation modes').",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    binding = parser.add_argument_group("binding")
    binding.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default 127.0.0.1)")
    binding.add_argument("--port", type=int, default=8642,
                         help="TCP port; 0 picks an ephemeral port "
                         "(default 8642)")
    binding.add_argument("--uds", default=None, metavar="PATH",
                         help="serve on a UNIX-domain socket at PATH "
                         "instead of TCP")
    service = parser.add_argument_group("service")
    service.add_argument("--deadline-ms", type=float, default=1000.0,
                         help="default per-request deadline (default 1000)")
    service.add_argument("--max-concurrency", type=int, default=8,
                         help="requests executing concurrently (default 8)")
    service.add_argument("--max-queue", type=int, default=64,
                         help="admission queue depth before shedding "
                         "(default 64)")
    service.add_argument("--max-wait-ms", type=float, default=250.0,
                         help="estimated-wait budget before shedding "
                         "(default 250)")
    service.add_argument("--cache-size", type=int, default=4096,
                         help="result-cache capacity, 0 disables "
                         "(default 4096)")
    service.add_argument("--breaker-threshold", type=int, default=3,
                         help="consecutive build failures that trip the "
                         "circuit breaker (default 3)")
    service.add_argument("--breaker-reset", type=float, default=2.0,
                         help="breaker cool-down seconds before a rebuild "
                         "probe (default 2)")
    service.add_argument("--build-retries", type=int, default=2,
                         help="retried attempts per index (re)build "
                         "(default 2)")
    service.add_argument("--no-refine", action="store_true",
                         help="skip the chain-concatenation refinement pass")
    checks = parser.add_argument_group("checks")
    checks.add_argument("--self-check", type=int, default=None, metavar="N",
                        help="start on an ephemeral socket, answer N seeded "
                        "queries through the HTTP client verified against a "
                        "direct graph search, check the health endpoints, "
                        "and exit (CI smoke mode)")
    checks.add_argument("--probe", action="append", default=None, metavar="U:V",
                        help="answer one explicit reachable(U, V) probe "
                        "directly (repeatable, verified, no server)")
    checks.add_argument("--emit-json", metavar="PATH", default=None,
                        help="append the serve-telemetry RunRecord JSON "
                        "line to PATH on exit (probe/self-check modes)")
    robustness = parser.add_argument_group("robustness")
    robustness.add_argument("--chaos", metavar="SPEC", default=None,
                            help="arm the fault-injection plane, e.g. "
                            "'slow-handler,p=0.1,ms=50' "
                            "(see docs/ROBUSTNESS.md)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress the banner")
    return parser


def _serve_command(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import InvalidNodeError
    from repro.serve.service import ReachabilityService, ServeConfig
    from repro.serve.validate import parse_probe

    try:
        if args.chaos:
            set_fault_plan(FaultPlan.parse(args.chaos))
            os.environ[ENV_CHAOS] = args.chaos
        graph = _build_graph(args)
        sources = None
        if args.sources is not None:
            sources = sample_sources(graph, args.sources, seed=args.seed)
        config = _system_config(args)
        serve_config = ServeConfig(
            deadline_ms=args.deadline_ms,
            max_concurrency=args.max_concurrency,
            max_queue=args.max_queue,
            max_wait_ms=args.max_wait_ms,
            cache_size=args.cache_size,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset,
            build_retries=args.build_retries,
            refine=not args.no_refine,
        )
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    probes: list[tuple[int, int]] = []
    try:
        for spec in args.probe or []:
            probes.append(parse_probe(spec, graph.num_nodes))
    except InvalidNodeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    service = ReachabilityService(graph, sources, config, serve_config)
    try:
        code = asyncio.run(_serve_main(args, graph, service, probes))
    except KeyboardInterrupt:
        return 0
    # Emitted here, after the event loop has exited: JsonlSink fsyncs
    # every record, and a synchronous fsync inside an async handler
    # stalls the whole loop (RPL009).
    _emit_serve_record(args, service)
    return code


def _emit_serve_record(args: argparse.Namespace, service: object) -> None:
    if args.emit_json is None:
        return
    sink = JsonlSink(args.emit_json, enabled=True)
    sink.emit(service.to_run_record(_workload_dict(args)))  # type: ignore[attr-defined]
    sink.close()


async def _serve_main(args: argparse.Namespace, graph: Digraph,
                      service: "ReachabilityService",
                      probes: list[tuple[int, int]]) -> int:
    import asyncio

    from repro.graphs.toposort import reachable_from
    from repro.serve.http import ServeServer

    built = await service.build()
    if not built:
        print(f"warning: initial index build failed "
              f"({service.last_build_error}); starting unready",
              file=sys.stderr)

    # Probe mode: answer explicit pairs directly (no server), verified.
    if probes and args.self_check is None:
        if service.index is None:
            print("error: no index available to answer probes", file=sys.stderr)
            return 1
        failures = 0
        for u, v in probes:
            answer = await service.reachable(u, v)
            expected = v != u and v in reachable_from(graph, [u])
            verdict = "ok" if answer["reachable"] == expected else "MISMATCH"
            print(f"probe reachable({u}, {v}) = {answer['reachable']}  "
                  f"verified={verdict}")
            if answer["reachable"] != expected:
                failures += 1
        return 1 if failures else 0

    if args.self_check is not None:
        return await _serve_self_check(args, graph, service)

    server = ServeServer(service, host=args.host, port=args.port, uds=args.uds)
    await server.start()
    if not args.quiet:
        print(f"serving n={graph.num_nodes} arcs={graph.num_arcs} "
              f"state={service.state} on {server.endpoint}")
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()
    return 0


async def _serve_self_check(args: argparse.Namespace, graph: Digraph,
                            service: "ReachabilityService") -> int:
    """CI smoke mode: seeded, oracle-verified queries over a live socket."""
    import random
    import tempfile

    from repro.graphs.toposort import reachable_from
    from repro.serve.http import ServeClient, ServeServer

    ephemeral_uds = None
    if args.uds is not None:
        server = ServeServer(service, uds=args.uds)
    elif args.port == 8642:  # default: self-check prefers a throwaway UDS
        ephemeral_uds = tempfile.mktemp(prefix="repro-serve-", suffix=".sock")
        args.uds = ephemeral_uds
        server = ServeServer(service, uds=args.uds)
    else:
        server = ServeServer(service, host=args.host, port=args.port)
    await server.start()
    client = (ServeClient(uds=args.uds) if args.uds is not None
              else ServeClient(host=args.host, port=server.port))
    rng = random.Random(args.seed)
    candidates = (list(service.sources) if service.sources is not None
                  else list(graph.nodes()))
    wrong = 0
    non_ok = 0
    answered = 0
    try:
        for _ in range(max(0, args.self_check)):
            u = rng.choice(candidates)
            v = rng.randrange(graph.num_nodes)
            status, payload = await client.reachable(u, v)
            if status != 200:
                non_ok += 1
                continue
            answered += 1
            expected = v != u and v in reachable_from(graph, [u])
            if payload["reachable"] != expected:
                wrong += 1
                print(f"WRONG reachable({u}, {v}): served="
                      f"{payload['reachable']} search={expected}",
                      file=sys.stderr)
        health_status, health = await client.get("/healthz")
        ready_status, ready = await client.get("/readyz")
        expect_ready = 200 if service.state == "ready" else 503
        health_ok = health_status == 200 and health.get("status") == "ok"
        ready_ok = (ready_status == expect_ready
                    and ready.get("state") == service.state)
    finally:
        await client.close()
        await server.close()
        if ephemeral_uds is not None and os.path.exists(ephemeral_uds):
            os.unlink(ephemeral_uds)
    print(f"self-check: {answered}/{max(0, args.self_check)} answered "
          f"({non_ok} non-200), wrong={wrong}, state={service.state}, "
          f"healthz={'ok' if health_ok else 'FAIL'}, "
          f"readyz={'ok' if ready_ok else 'FAIL'} on {server.endpoint}")
    if wrong or not health_ok or not ready_ok:
        return 1
    # Without chaos armed, every query must have been answered outright.
    if non_ok and not args.chaos and not os.environ.get(ENV_CHAOS):
        return 1
    return 0


# -- `compare` ----------------------------------------------------------------


def _compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two JSONL run-record files cell by cell and "
        "fail (exit 1) when total_io regresses beyond the threshold.",
    )
    parser.add_argument("baseline", help="baseline JSONL file of RunRecords")
    parser.add_argument("candidate", help="candidate JSONL file of RunRecords")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="allowed relative total_io growth (default 0.0: "
                        "the simulated counters are deterministic, so any "
                        "growth is a regression)")
    parser.add_argument("--cpu-threshold", type=float, default=None,
                        help="also gate on cpu_seconds growth (default: report only)")
    parser.add_argument("--wall-threshold", type=float, default=None,
                        help="also gate on wall_seconds growth with a "
                        "noise-aware band (default: not even reported)")
    parser.add_argument("--wall-abs", type=float, default=0.005,
                        help="absolute wall-clock growth always tolerated, "
                        "in seconds (default 0.005)")
    parser.add_argument("--noise-sigma", type=float, default=3.0,
                        help="tolerate wall growth up to K standard "
                        "deviations of the baseline cell's samples "
                        "(default 3.0; needs --reps >= 2 baselines)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="print regressions only")
    return parser


def _compare_command(args: argparse.Namespace) -> int:
    try:
        report = compare_runs(
            args.baseline,
            args.candidate,
            threshold=args.threshold,
            cpu_threshold=args.cpu_threshold,
            wall_threshold=args.wall_threshold,
            wall_abs=args.wall_abs,
            noise_sigma=args.noise_sigma,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        print(report.render())
    if report.ok:
        if not args.quiet:
            print("\nno regressions")
        return 0
    for delta in report.regressions:
        print(f"REGRESSION {delta.cell} {delta.metric}: "
              f"{delta.baseline:g} -> {delta.candidate:g}", file=sys.stderr)
    return 1


# -- `obs` --------------------------------------------------------------------


def _obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Observability artefact tooling: render HTML run "
        "reports and validate trace files.",
    )
    sub = parser.add_subparsers(dest="obs_command", required=True)

    report = sub.add_parser(
        "report",
        help="render a self-contained HTML dashboard from run artefacts",
        description="Render a static, self-contained HTML dashboard "
        "(phase waterfall, page heatmaps, pool residency, BENCH "
        "trajectory) from any combination of a RunRecord JSONL file, a "
        "--trace-out Chrome trace, and a BENCH_summary.json.",
    )
    report.add_argument("--records", metavar="PATH", default=None,
                        help="JSONL RunRecord file (from --emit-json)")
    report.add_argument("--trace", metavar="PATH", default=None,
                        help="Chrome trace JSON file (from --trace-out)")
    report.add_argument("--bench", metavar="PATH", default=None,
                        help="BENCH_summary.json for the trajectory panel "
                        "(default: derived from --records)")
    report.add_argument("--out", metavar="PATH", default="report.html",
                        help="output HTML path (default: report.html)")
    report.add_argument("--title", default="repro run report",
                        help="report title")

    validate = sub.add_parser(
        "validate-trace",
        help="check that a file is valid Chrome trace-event JSON",
        description="Validate a --trace-out file: JSON shape, event "
        "phases, timestamps, and balanced span begin/end pairs.",
    )
    validate.add_argument("trace", help="Chrome trace JSON file")
    return parser


def _obs_command(args: argparse.Namespace) -> int:
    try:
        if args.obs_command == "validate-trace":
            with open(args.trace) as handle:
                payload = json.load(handle)
            problems = validate_chrome_trace(payload)
            if problems:
                for problem in problems:
                    print(f"INVALID: {problem}", file=sys.stderr)
                return 1
            events = sum(1 for e in payload["traceEvents"] if e.get("ph") != "M")
            print(f"{args.trace}: valid Chrome trace ({events} events)")
            return 0

        from repro.obs.report import load_bench_entries, render_report

        records = load_records(args.records) if args.records else []
        trace_payload = None
        if args.trace:
            with open(args.trace) as handle:
                trace_payload = json.load(handle)
        bench = load_bench_entries(args.bench) if args.bench else None
        out = render_report(args.out, records, trace_payload=trace_payload,
                            bench_entries=bench, title=args.title)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {out}")
    return 0


def _ingest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ingest",
        description="Load a real-graph edge list (SNAP format, plain or "
        "gzip) into the frozen CSR graph core, report ingestion stats, "
        "and optionally build the chain reachability index over it with "
        "seeded spot probes -- each verified against a direct graph "
        "search.",
    )
    parser.add_argument("path", help="edge-list file (SNAP format; gzip "
                        "detected from the payload, not the name)")
    parser.add_argument("--stats", action="store_true",
                        help="print the full ingestion stat table")
    parser.add_argument("--build-index", action="store_true",
                        help="build the chain reachability index over the "
                        "ingested graph and run verified probes")
    parser.add_argument("--engine", default=None, choices=list(ENGINE_NAMES),
                        help="storage engine for --build-index "
                        "(default: REPRO_ENGINE or 'paged')")
    parser.add_argument("--probes", type=int, default=100, metavar="N",
                        help="seeded reachability probes for --build-index, "
                        "each checked against a direct search (default 100)")
    parser.add_argument("--seed", type=int, default=0, help="probe seed")
    parser.add_argument("--condense", action="store_true",
                        help="attach the SCC condensation when the input "
                        "is cyclic")
    parser.add_argument("--expect-nodes", type=int, default=None, metavar="N",
                        help="declared node count (overrides any '# nodes:' "
                        "header; keeps dense ids verbatim so isolated nodes "
                        "survive)")
    parser.add_argument("--emit-json", metavar="FILE",
                        help="write stats, timings and index shape as JSON")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress the banner (keep the summary line)")
    return parser


def _ingest_command(args: argparse.Namespace) -> int:
    import random
    import resource

    from repro.core.chains import build_chain_index
    from repro.errors import IngestError
    from repro.graphs.ingest import load_snap
    from repro.graphs.toposort import reachable_from

    started = time.perf_counter()
    try:
        result = load_snap(
            args.path, condense=args.condense, num_nodes=args.expect_nodes
        )
    except (OSError, IngestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    load_seconds = time.perf_counter() - started
    graph, stats = result.graph, result.stats
    arcs_per_second = stats.arc_lines / load_seconds if load_seconds else 0.0

    if not args.quiet:
        print(f"ingest: {args.path}  "
              f"load={load_seconds:.2f}s ({arcs_per_second:,.0f} arcs/s)")
    if args.stats:
        for key, value in stats.as_dict().items():
            print(f"  {key}: {value}")

    payload: dict[str, object] = {
        "path": str(args.path),
        "stats": stats.as_dict(),
        "load_seconds": round(load_seconds, 6),
        "arcs_per_second": round(arcs_per_second, 1),
    }

    exit_code = 0
    if args.build_index:
        config = SystemConfig(engine=args.engine or "")
        started = time.perf_counter()
        try:
            index = build_chain_index(graph, None, config)
        except Exception as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        build_seconds = time.perf_counter() - started
        vector_entries = sum(len(vector) for vector in index.vectors.values())

        # Verified probes, batched: a handful of sources share one
        # direct forward search each, so the oracle cost stays linear
        # while every index answer is still independently checked.
        probes = max(0, args.probes)
        failures = 0
        if probes and graph.num_nodes:
            rng = random.Random(args.seed)
            num_sources = max(1, min(16, probes // 64 + 1))
            per_source = -(-probes // num_sources)  # ceil
            done = 0
            for _ in range(num_sources):
                if done >= probes:
                    break
                u = rng.randrange(graph.num_nodes)
                closure = reachable_from(graph, [u])
                for _ in range(min(per_source, probes - done)):
                    v = rng.randrange(graph.num_nodes)
                    got = index.reachable(u, v)
                    expected = v != u and v in closure
                    if got != expected:
                        failures += 1
                        print(f"MISMATCH reachable({u}, {v}): index={got} "
                              f"search={expected}", file=sys.stderr)
                    done += 1
            probes = done
        print(f"index: k={index.k} vector_entries={vector_entries} "
              f"build={build_seconds:.2f}s probes={probes} "
              f"verified={'ok' if not failures else 'FAILED'}")
        payload["index"] = {
            "engine": config.engine or "default",
            "k": index.k,
            "vector_entries": vector_entries,
            "build_seconds": round(build_seconds, 6),
            "probes": probes,
            "probe_failures": failures,
        }
        if failures:
            print(f"error: {failures} mismatched probe"
                  f"{'' if failures == 1 else 's'}", file=sys.stderr)
            exit_code = 1

    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    payload["peak_rss_mb"] = round(peak_rss_kb / 1024, 1)
    print(f"ingest: nodes={stats.nodes} arcs={stats.arcs} "
          f"compacted={stats.compacted} acyclic={stats.acyclic} "
          f"peak_rss={payload['peak_rss_mb']}MB")

    if args.emit_json:
        try:
            with open(args.emit_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return exit_code


_SUBCOMMANDS = {
    "run": (_run_parser, _run_command),
    "profile": (_profile_parser, _profile_command),
    "chains": (_chains_parser, _chains_command),
    "serve": (_serve_parser, _serve_command),
    "ingest": (_ingest_parser, _ingest_command),
    "compare": (_compare_parser, _compare_command),
    "obs": (_obs_parser, _obs_command),
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backwards compatible dispatch: a leading bare word selects a
    # subcommand; flags alone mean the classic `run` behaviour.
    if argv and argv[0] in _SUBCOMMANDS:
        make_parser, command = _SUBCOMMANDS[argv[0]]
        argv = argv[1:]
    else:
        make_parser, command = _SUBCOMMANDS["run"]
    return command(make_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
