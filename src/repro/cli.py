"""Command line front end: run, profile, and compare algorithm runs.

Examples::

    # Full closure of graph family G6 with BTC, 20 buffer pages
    python -m repro --algorithm btc --family G6 --buffer-pages 20

    # 10-source selection on a custom random DAG with JKB2
    python -m repro --algorithm jkb2 --nodes 1000 --out-degree 5 \\
        --locality 200 --sources 10 --buffer-pages 10

    # Compare the whole suite on one query
    python -m repro --algorithm all --family G4 --scale 4 --sources 5

    # Emit one RunRecord per algorithm as JSONL (clean pipeline output)
    python -m repro --algorithm btc --family G4 --scale 4 \\
        --emit-json out.jsonl --quiet

    # Buffer-pool profile: hit-ratio timeline, kind histogram, hot pages
    python -m repro profile --algorithm btc --family G4 --scale 4

    # Regression gate between two JSONL record files
    python -m repro compare baseline.jsonl out.jsonl --threshold 0.05
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.chaos.audit import AUDIT_MODES, ENV_AUDIT, set_audit_mode
from repro.chaos.faults import ENV_CHAOS, FaultPlan, set_fault_plan
from repro.core.base import TwoPhaseAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.datasets import build_graph, sample_sources
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.metrics.report import format_table
from repro.obs.compare import compare_runs
from repro.obs.record import RunRecord, summarise_trace
from repro.obs.sink import JsonlSink
from repro.obs.spans import SpanRecorder
from repro.storage.engine import ENGINE_NAMES
from repro.storage.trace import PageTrace


def _build_graph(args: argparse.Namespace) -> Digraph:
    if args.family:
        return build_graph(args.family, seed=args.seed, scale=args.scale)
    return generate_dag(args.nodes, args.out_degree, args.locality, seed=args.seed)


def _build_query(graph: Digraph, args: argparse.Namespace) -> Query:
    if args.sources is None:
        return Query.full()
    return Query.ptc(sample_sources(graph, args.sources, seed=args.seed))


def _workload_dict(args: argparse.Namespace) -> dict[str, object]:
    """The workload tag stored in emitted run records (the cell identity)."""
    if args.family:
        return {"family": args.family, "scale": args.scale, "seed": args.seed}
    return {
        "nodes": args.nodes,
        "out_degree": args.out_degree,
        "locality": args.locality,
        "seed": args.seed,
    }


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    workload = parser.add_argument_group("workload")
    workload.add_argument("--family", help="paper graph family G1..G12")
    workload.add_argument("--scale", type=int, default=1,
                          help="shrink a paper family by this factor")
    workload.add_argument("--nodes", type=int, default=500,
                          help="custom graph: node count (default 500)")
    workload.add_argument("--out-degree", type=float, default=5,
                          help="custom graph: average out-degree F")
    workload.add_argument("--locality", type=int, default=100,
                          help="custom graph: generation locality l")
    workload.add_argument("--seed", type=int, default=0, help="random seed")
    workload.add_argument("--sources", type=int, default=None,
                          help="number of source nodes (omit for full closure)")


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    system = parser.add_argument_group("system")
    system.add_argument("--buffer-pages", "-M", type=int, default=20,
                        help="buffer pool size in pages (default 20)")
    system.add_argument("--page-policy", default="lru",
                        choices=["lru", "mru", "fifo", "clock", "random"])
    system.add_argument("--ilimit", type=float, default=0.2,
                        help="Hybrid diagonal-block ratio (default 0.2)")
    system.add_argument("--engine", default=None, choices=list(ENGINE_NAMES),
                        help="storage engine: 'paged' simulates the paper's "
                        "substrate and charges page I/O; 'fast' runs in memory "
                        "with identical closures and zero page costs "
                        "(default: REPRO_ENGINE or 'paged')")


def _system_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        buffer_pages=args.buffer_pages,
        page_policy=args.page_policy,
        ilimit=args.ilimit,
        engine=args.engine or "",
    )


# -- `run` (the default command) ---------------------------------------------


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Disk-based transitive closure algorithms "
        "(Dar & Ramakrishnan, SIGMOD 1994).",
    )
    all_names = (*ALGORITHM_NAMES, *BASELINE_NAMES, "all")
    parser.add_argument(
        "--algorithm", "-a", default="btc", choices=all_names,
        help="algorithm to run, or 'all' for the whole suite (default: btc)",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("--emit-json", metavar="PATH", default=None,
                           help="append one RunRecord JSON line per run to PATH")
    telemetry.add_argument("--trace-out", metavar="PATH", default=None,
                           help="write the buffer-pool trace profile (JSON) to PATH")
    telemetry.add_argument("--quiet", "-q", action="store_true",
                           help="suppress the pre-run banner (keep the result table)")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                           help="run the algorithms across N worker processes "
                           "(default: 1 = in-process; ignored with --trace-out)")
    execution.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                           help="per-algorithm wall-clock limit when --jobs > 1 "
                           "(one retry, then a structured error and exit 1)")
    robustness = parser.add_argument_group("robustness")
    robustness.add_argument("--chaos", metavar="SPEC", default=None,
                            help="arm the fault-injection plane, e.g. "
                            "'corrupt-read,after=100' (see docs/ROBUSTNESS.md)")
    robustness.add_argument("--audit", choices=AUDIT_MODES, default=None,
                            help="invariant audit mode "
                            "(default: cheap, or REPRO_AUDIT)")
    return parser


def _run_parallel(args: argparse.Namespace, names: list[str],
                  config: SystemConfig) -> int:
    """Fan the algorithm list across worker processes (``--jobs N``).

    Each algorithm becomes one work unit on the same (deterministically
    seeded) graph and query, so the result table is identical to the
    serial run's -- only wall-clock attribution differs.
    """
    from repro.experiments.parallel import ExperimentEngine, GraphSpec, WorkUnit
    from repro.experiments.queries import QuerySpec

    if args.family:
        spec = GraphSpec(seed=args.seed, family=args.family, scale=args.scale)
    else:
        spec = GraphSpec.custom(args.nodes, args.out_degree, args.locality, args.seed)
    query_spec = (QuerySpec.full() if args.sources is None
                  else QuerySpec.selection(args.sources))
    workload = tuple(_workload_dict(args).items())
    units = [
        WorkUnit(cell_index=index, algorithm=name, graph=spec, query=query_spec,
                 system=config, source_seed=args.seed, workload=workload)
        for index, name in enumerate(names)
    ]
    with ExperimentEngine(jobs=args.jobs, timeout=args.timeout) as engine:
        outcomes = engine.map_units(units)

    sink = JsonlSink(args.emit_json, enabled=True) if args.emit_json is not None else None
    rows = []
    for name, outcome in zip(names, outcomes):
        if outcome.error is not None:
            print(f"error: {outcome.error.render()}", file=sys.stderr)
            continue
        if sink is not None:
            sink.emit(outcome.record)
        metrics = outcome.result.metrics
        rows.append(
            {
                "algorithm": name,
                "total_io": metrics.total_io,
                "answer_tuples": outcome.result.num_tuples,
                "unions": metrics.list_unions,
                "tuples_generated": metrics.tuples_generated,
                "marking_%": round(100 * metrics.marking_percentage, 1),
                "hit_ratio": round(metrics.hit_ratio(), 3),
                "cpu_s": round(metrics.cpu_seconds, 3),
            }
        )
    if sink is not None:
        sink.close()
    if rows:
        print(format_table(rows))
    return 1 if engine.failures else 0


def _run_command(args: argparse.Namespace) -> int:
    parallel = args.jobs > 1 and args.trace_out is None
    if args.jobs > 1 and args.trace_out is not None:
        print("note: --trace-out needs in-process tracing; running serially",
              file=sys.stderr)
    plan = None
    try:
        if args.chaos:
            plan = FaultPlan.parse(args.chaos)
            set_fault_plan(plan)
            # Worker processes (--jobs > 1) arm their own copy from the
            # environment in the pool initialiser.
            os.environ[ENV_CHAOS] = args.chaos
        if args.audit:
            set_audit_mode(args.audit)
            os.environ[ENV_AUDIT] = args.audit
        graph = _build_graph(args)
        query = _build_query(graph, args)
        config = _system_config(args)
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if args.algorithm == "all":
        names = [n for n in ALGORITHM_NAMES if not (n == "srch" and query.is_full)]
        names += list(BASELINE_NAMES)
    else:
        names = [args.algorithm]

    if not args.quiet:
        print(f"graph: n={graph.num_nodes} arcs={graph.num_arcs}  query: {query}  "
              f"M={config.buffer_pages}"
              + (f"  jobs={args.jobs}" if parallel else ""))

    if parallel:
        return _run_parallel(args, names, config)

    instrument = args.emit_json is not None or args.trace_out is not None
    # enabled=True: an explicit --emit-json beats the REPRO_OBS env toggle.
    sink = JsonlSink(args.emit_json, enabled=True) if args.emit_json is not None else None
    workload = _workload_dict(args)
    trace_profiles: dict[str, object] = {}

    rows = []
    try:
        for name in names:
            if name in BASELINE_NAMES:
                algorithm = make_baseline(name)
            else:
                algorithm = make_algorithm(name)

            recorder: SpanRecorder | None = None
            trace: PageTrace | None = None
            if instrument and isinstance(algorithm, TwoPhaseAlgorithm):
                recorder = SpanRecorder()
                trace = PageTrace() if args.trace_out is not None else None
                result = algorithm.run(graph, query, config,
                                       recorder=recorder, trace=trace)
            else:
                result = algorithm.run(graph, query, config)

            if sink is not None:
                record = RunRecord.from_result(
                    result, workload=workload, recorder=recorder, trace=trace,
                )
                if plan is not None:
                    record.faults = [e.as_dict() for e in plan.drain_events()]
                sink.emit(record)
            if trace is not None:
                trace_profiles[name] = summarise_trace(trace)

            metrics = result.metrics
            rows.append(
                {
                    "algorithm": name,
                    "total_io": metrics.total_io,
                    "answer_tuples": result.num_tuples,
                    "unions": metrics.list_unions,
                    "tuples_generated": metrics.tuples_generated,
                    "marking_%": round(100 * metrics.marking_percentage, 1),
                    "hit_ratio": round(metrics.hit_ratio(), 3),
                    "cpu_s": round(metrics.cpu_seconds, 3),
                }
            )
    except Exception as exc:  # the gate: broken runs must not exit 0
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if plan is not None:
            print(plan.summary(), file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            sink.close()

    if args.trace_out is not None:
        import json

        with open(args.trace_out, "w") as handle:
            json.dump(trace_profiles, handle, indent=2, sort_keys=True)

    print(format_table(rows))
    return 0


# -- `profile` ----------------------------------------------------------------


def _profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one algorithm with full buffer-pool tracing and "
        "print its I/O profile: hit-ratio timeline, per-kind access "
        "histogram, hottest pages, and span timings.",
    )
    parser.add_argument(
        "--algorithm", "-a", default="btc", choices=ALGORITHM_NAMES,
        help="algorithm to profile (default: btc)",
    )
    _add_workload_args(parser)
    _add_system_args(parser)
    parser.add_argument("--top", type=int, default=10,
                        help="number of hot pages to show (default 10)")
    parser.add_argument("--buckets", type=int, default=10,
                        help="hit-ratio timeline buckets (default 10)")
    return parser


def _profile_command(args: argparse.Namespace) -> int:
    recorder = SpanRecorder()
    trace = PageTrace()
    try:
        graph = _build_graph(args)
        query = _build_query(graph, args)
        config = _system_config(args)
        result = make_algorithm(args.algorithm).run(
            graph, query, config, recorder=recorder, trace=trace
        )
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    profile = summarise_trace(trace, buckets=args.buckets, top_k=args.top)
    metrics = result.metrics
    print(f"{args.algorithm}: n={graph.num_nodes} arcs={graph.num_arcs} "
          f"query={query} M={config.buffer_pages}")
    print(f"total_io={metrics.total_io} "
          f"(reads={metrics.io.total_reads}, writes={metrics.io.total_writes})  "
          f"hit_ratio={metrics.hit_ratio():.3f}")

    timeline = profile["hit_ratio_timeline"]
    if timeline:
        print("\nhit-ratio timeline (run split into equal request chunks):")
        print("  " + "  ".join(f"{ratio:.2f}" for ratio in timeline))

    histogram = profile["kind_histogram"]
    if histogram:
        print("\n" + format_table(
            [{"kind": kind, "requests": count}
             for kind, count in sorted(histogram.items())],
            title="page requests by kind",
        ))

    if profile["hot_pages"]:
        print("\n" + format_table(profile["hot_pages"], title=f"top {args.top} hottest pages"))

    span_rows = [
        {
            "span": stats.path,
            "count": stats.count,
            "total_ms": round(1000 * stats.total_seconds, 3),
        }
        for stats in recorder.stats()
    ]
    if span_rows:
        print("\n" + format_table(span_rows, title="span timings"))
    return 0


# -- `compare` ----------------------------------------------------------------


def _compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two JSONL run-record files cell by cell and "
        "fail (exit 1) when total_io regresses beyond the threshold.",
    )
    parser.add_argument("baseline", help="baseline JSONL file of RunRecords")
    parser.add_argument("candidate", help="candidate JSONL file of RunRecords")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed relative total_io growth (default 0.05 = 5%%)")
    parser.add_argument("--cpu-threshold", type=float, default=None,
                        help="also gate on cpu_seconds growth (default: report only)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="print regressions only")
    return parser


def _compare_command(args: argparse.Namespace) -> int:
    try:
        report = compare_runs(
            args.baseline,
            args.candidate,
            threshold=args.threshold,
            cpu_threshold=args.cpu_threshold,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        print(report.render())
    if report.ok:
        if not args.quiet:
            print("\nno regressions")
        return 0
    for delta in report.regressions:
        print(f"REGRESSION {delta.cell} {delta.metric}: "
              f"{delta.baseline:g} -> {delta.candidate:g}", file=sys.stderr)
    return 1


_SUBCOMMANDS = {
    "run": (_run_parser, _run_command),
    "profile": (_profile_parser, _profile_command),
    "compare": (_compare_parser, _compare_command),
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backwards compatible dispatch: a leading bare word selects a
    # subcommand; flags alone mean the classic `run` behaviour.
    if argv and argv[0] in _SUBCOMMANDS:
        make_parser, command = _SUBCOMMANDS[argv[0]]
        argv = argv[1:]
    else:
        make_parser, command = _SUBCOMMANDS["run"]
    return command(make_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
