"""Command line front end: run any algorithm on any workload.

Examples::

    # Full closure of graph family G6 with BTC, 20 buffer pages
    python -m repro --algorithm btc --family G6 --buffer-pages 20

    # 10-source selection on a custom random DAG with JKB2
    python -m repro --algorithm jkb2 --nodes 1000 --out-degree 5 \\
        --locality 200 --sources 10 --buffer-pages 10

    # Compare the whole suite on one query
    python -m repro --algorithm all --family G4 --scale 4 --sources 5
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.datasets import build_graph, sample_sources
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.metrics.report import format_table


def _build_graph(args: argparse.Namespace) -> Digraph:
    if args.family:
        return build_graph(args.family, seed=args.seed, scale=args.scale)
    return generate_dag(args.nodes, args.out_degree, args.locality, seed=args.seed)


def _build_query(graph: Digraph, args: argparse.Namespace) -> Query:
    if args.sources is None:
        return Query.full()
    return Query.ptc(sample_sources(graph, args.sources, seed=args.seed))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Disk-based transitive closure algorithms "
        "(Dar & Ramakrishnan, SIGMOD 1994).",
    )
    all_names = (*ALGORITHM_NAMES, *BASELINE_NAMES, "all")
    parser.add_argument(
        "--algorithm", "-a", default="btc", choices=all_names,
        help="algorithm to run, or 'all' for the whole suite (default: btc)",
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument("--family", help="paper graph family G1..G12")
    workload.add_argument("--scale", type=int, default=1,
                          help="shrink a paper family by this factor")
    workload.add_argument("--nodes", type=int, default=500,
                          help="custom graph: node count (default 500)")
    workload.add_argument("--out-degree", type=float, default=5,
                          help="custom graph: average out-degree F")
    workload.add_argument("--locality", type=int, default=100,
                          help="custom graph: generation locality l")
    workload.add_argument("--seed", type=int, default=0, help="random seed")
    workload.add_argument("--sources", type=int, default=None,
                          help="number of source nodes (omit for full closure)")
    system = parser.add_argument_group("system")
    system.add_argument("--buffer-pages", "-M", type=int, default=20,
                        help="buffer pool size in pages (default 20)")
    system.add_argument("--page-policy", default="lru",
                        choices=["lru", "mru", "fifo", "clock", "random"])
    system.add_argument("--ilimit", type=float, default=0.2,
                        help="Hybrid diagonal-block ratio (default 0.2)")
    args = parser.parse_args(argv)

    graph = _build_graph(args)
    query = _build_query(graph, args)
    config = SystemConfig(
        buffer_pages=args.buffer_pages,
        page_policy=args.page_policy,
        ilimit=args.ilimit,
    )

    if args.algorithm == "all":
        names = [n for n in ALGORITHM_NAMES if not (n == "srch" and query.is_full)]
        names += list(BASELINE_NAMES)
    else:
        names = [args.algorithm]

    print(f"graph: n={graph.num_nodes} arcs={graph.num_arcs}  query: {query}  "
          f"M={config.buffer_pages}")
    rows = []
    for name in names:
        if name in BASELINE_NAMES:
            algorithm = make_baseline(name)
        else:
            algorithm = make_algorithm(name)
        result = algorithm.run(graph, query, config)
        metrics = result.metrics
        rows.append(
            {
                "algorithm": name,
                "total_io": metrics.total_io,
                "answer_tuples": result.num_tuples,
                "unions": metrics.list_unions,
                "tuples_generated": metrics.tuples_generated,
                "marking_%": round(100 * metrics.marking_percentage, 1),
                "hit_ratio": round(metrics.hit_ratio(), 3),
                "cpu_s": round(metrics.cpu_seconds, 3),
            }
        )
    print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
