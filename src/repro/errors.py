"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch the package's failures with a single ``except`` clause
while still distinguishing specific conditions when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CyclicGraphError(ReproError):
    """A DAG-only operation was applied to a graph containing a cycle.

    The paper studies acyclic graphs, relying on condensation to reduce
    cyclic inputs (see :mod:`repro.graphs.condensation`).  Entry points
    that require acyclic input raise this error instead of silently
    producing wrong answers.
    """


class InvalidNodeError(ReproError):
    """A node identifier is outside the graph's ``0..n-1`` node range."""


class IngestError(ReproError, ValueError):
    """A real-graph edge-list file could not be ingested.

    Raised by :mod:`repro.graphs.ingest` for malformed input (an edge
    line with fewer than two fields, an unreadable payload) with the
    offending line number in the message.  Also a :class:`ValueError`,
    matching :class:`ConfigurationError`'s convention for bad input
    data.
    """


class BufferPoolError(ReproError):
    """Base class for buffer-manager failures."""


class BufferPoolExhaustedError(BufferPoolError):
    """A page fault occurred while every frame in the pool was pinned.

    The Hybrid algorithm catches this condition to trigger *dynamic
    reblocking* (shrinking its pinned diagonal block, Section 3.2 of the
    paper); any other occurrence indicates a configuration error.
    """


class PageNotPinnedError(BufferPoolError):
    """An unpin was requested for a page that is not currently pinned."""


class StorageError(ReproError):
    """Inconsistent use of the simulated storage layer."""


class UnknownAlgorithmError(ReproError):
    """An algorithm name was not found in the registry."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or system configuration value is invalid.

    Also a :class:`ValueError`, so callers validating workload
    parameters (graph generator inputs, chaos specs, profile names) can
    catch it with the standard library idiom.
    """


class EngineCapabilityError(ConfigurationError):
    """A storage engine was asked for a capability it does not provide.

    Raised eagerly -- at engine construction or attachment time -- so an
    unsupported combination (for example chaos fault injection on the
    in-memory fast engine) fails loudly instead of silently measuring
    nothing.  See :mod:`repro.storage.engine`.
    """


class InvariantViolation(ReproError):
    """An internal accounting invariant of the simulator was broken.

    Raised by the invariant auditor (:mod:`repro.chaos.audit`).  Each
    violation is structured: ``invariant`` names the check that failed
    (e.g. ``pool.residency``, ``store.block-capacity``), ``detail`` is
    the human-readable explanation, and ``context`` carries the
    offending values so failures can be triaged from a log line alone.
    """

    def __init__(self, invariant: str, detail: str, **context: object) -> None:
        self.invariant = invariant
        self.detail = detail
        self.context = context
        suffix = ""
        if context:
            pairs = ", ".join(f"{key}={value!r}" for key, value in sorted(context.items()))
            suffix = f" [{pairs}]"
        super().__init__(f"invariant {invariant!r} violated: {detail}{suffix}")


class InjectedFaultError(ReproError):
    """Base class for failures injected by the chaos fault plane.

    These are deliberate, seeded faults (:mod:`repro.chaos.faults`);
    they signal that the system *detected* the injury, which is the
    behaviour the chaos harness verifies.  They never occur unless a
    fault plan is armed.
    """


class CorruptPageReadError(InjectedFaultError, BufferPoolError):
    """An injected checksum failure on a physical page read."""


class TornWriteError(InjectedFaultError, StorageError):
    """An injected partial (torn) successor-block write."""


class InjectedCrashError(InjectedFaultError):
    """An injected crash at an experiment-unit boundary."""


class InjectedRebuildError(InjectedFaultError):
    """An injected crash inside the serve layer's index (re)build.

    Drives the serve circuit breaker in chaos tests: repeated rebuild
    crashes must trip the breaker and route queries to the last-good
    frozen index instead of surfacing to clients.
    """
