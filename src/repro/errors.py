"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch the package's failures with a single ``except`` clause
while still distinguishing specific conditions when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CyclicGraphError(ReproError):
    """A DAG-only operation was applied to a graph containing a cycle.

    The paper studies acyclic graphs, relying on condensation to reduce
    cyclic inputs (see :mod:`repro.graphs.condensation`).  Entry points
    that require acyclic input raise this error instead of silently
    producing wrong answers.
    """


class InvalidNodeError(ReproError):
    """A node identifier is outside the graph's ``0..n-1`` node range."""


class BufferPoolError(ReproError):
    """Base class for buffer-manager failures."""


class BufferPoolExhaustedError(BufferPoolError):
    """A page fault occurred while every frame in the pool was pinned.

    The Hybrid algorithm catches this condition to trigger *dynamic
    reblocking* (shrinking its pinned diagonal block, Section 3.2 of the
    paper); any other occurrence indicates a configuration error.
    """


class PageNotPinnedError(BufferPoolError):
    """An unpin was requested for a page that is not currently pinned."""


class StorageError(ReproError):
    """Inconsistent use of the simulated storage layer."""


class UnknownAlgorithmError(ReproError):
    """An algorithm name was not found in the registry."""


class ConfigurationError(ReproError):
    """An experiment or system configuration value is invalid."""
