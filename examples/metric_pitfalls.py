"""Scenario: why tuple-level cost metrics mislead (the paper's §7).

The paper's methodological finding is that the metrics used across the
earlier literature -- tuples generated, tuple I/O, distinct tuples,
successor-list unions -- *cannot* be used to predict the page-I/O cost
of a transitive closure computation.  Its two star witnesses:

1. the successor-tree algorithms fetch fewer tuples and generate far
   fewer duplicates than BTC on full closures, yet pay MORE page I/O
   (Figure 7); and
2. for high-selectivity selections, JKB2 generates a tiny fraction of
   BTC's tuples (suggesting a win) while performing several times more
   unions (suggesting a loss) -- and the page-I/O verdict varies by
   graph, so neither metric calls the winner (Figures 8-10).

This example recreates both witnesses and prints the rank inversions.

Run with::

    python examples/metric_pitfalls.py
"""

from repro import Query, SystemConfig, make_algorithm
from repro.graphs.datasets import build_graph, sample_sources

SCALE = 4
BUFFER_PAGES = 10


def rank(values: dict[str, float]) -> list[str]:
    """Algorithm names ordered best (smallest) first."""
    return sorted(values, key=values.get)


def witness_one() -> None:
    print("== witness 1: trees vs flat lists on a full closure ==")
    graph = build_graph("G5", seed=0, scale=SCALE)
    metrics = {}
    for name in ("btc", "spn"):
        result = make_algorithm(name).run(
            graph, Query.full(), SystemConfig(buffer_pages=BUFFER_PAGES)
        )
        metrics[name] = result.metrics
    for label, getter in (
        ("tuple I/O       ", lambda m: m.tuple_io),
        ("duplicates      ", lambda m: m.duplicates),
        ("page I/O (truth)", lambda m: m.total_io),
    ):
        values = {name: getter(m) for name, m in metrics.items()}
        print(f"  {label}: btc={values['btc']:>9}  spn={values['spn']:>9}"
              f"   winner by this metric: {rank(values)[0]}")
    inverted = (
        metrics["spn"].tuple_io <= metrics["btc"].tuple_io
        and metrics["spn"].total_io >= metrics["btc"].total_io
    )
    print(f"  tuple metrics and page I/O disagree: {inverted}")


def witness_two() -> None:
    print("\n== witness 2: JKB2 vs BTC on high-selectivity selections ==")
    for family in ("G4", "G12"):
        graph = build_graph(family, seed=0, scale=SCALE)
        query = Query.ptc(sample_sources(graph, 5, seed=1))
        metrics = {}
        for name in ("btc", "jkb2"):
            result = make_algorithm(name).run(
                graph, query, SystemConfig(buffer_pages=BUFFER_PAGES)
            )
            metrics[name] = result.metrics
        tuples = {name: m.tuples_generated for name, m in metrics.items()}
        unions = {name: m.list_unions for name, m in metrics.items()}
        page_io = {name: m.total_io for name, m in metrics.items()}
        print(f"  {family}: tuples say {rank(tuples)[0]:>4}, "
              f"unions say {rank(unions)[0]:>4}, "
              f"page I/O says {rank(page_io)[0]:>4} "
              f"(btc={page_io['btc']}, jkb2={page_io['jkb2']})")
    print("  -> the two tuple-level metrics point in opposite directions,")
    print("     and the page-I/O verdict depends on the graph's shape;")
    print("     only measuring page I/O directly settles it (Section 7).")


def main() -> None:
    witness_one()
    witness_two()


if __name__ == "__main__":
    main()
