"""Scenario: using the rectangle model to choose an algorithm.

Section 6.3.4 of the paper proposes that the *width* W(G) of a DAG --
computable in the single restructuring-phase traversal (Theorem 2) --
predicts whether Jakobsson's Compute_Tree (JKB2) or the basic BTC
algorithm will win a partial-closure query: JKB2 wins on narrow
graphs, BTC on wide ones.

This example plays query optimizer: it profiles each workload graph,
predicts the winner from the width, then runs both algorithms and
scores the prediction -- regenerating Table 4's insight as a decision
procedure.

Run with::

    python examples/algorithm_advisor.py
"""

from repro import GRAPH_FAMILIES, Query, SystemConfig, make_algorithm, profile_graph
from repro.graphs.datasets import sample_sources

SCALE = 4          # shrink the paper's 2000-node families for a quick demo
BUFFER_PAGES = 10  # Table 4's buffer pool
NUM_SOURCES = 5    # Table 4's s = 5 column


def main() -> None:
    system = SystemConfig(buffer_pages=BUFFER_PAGES)
    print(f"{'graph':>6} {'width':>6} {'predict':>8} {'btc_io':>7} "
          f"{'jkb2_io':>8} {'winner':>7} {'correct':>8}")

    rows = []
    for family in GRAPH_FAMILIES:
        graph = family.generate(seed=0, scale=SCALE)
        stats = profile_graph(graph, include_closure_size=False)
        rows.append((family.name, graph, stats.width))

    # Calibrate a width threshold from the midpoint of the sorted widths
    # (an optimizer would learn this from history).
    widths = sorted(width for _name, _graph, width in rows)
    threshold = (widths[len(widths) // 2 - 1] + widths[len(widths) // 2]) / 2

    correct = 0
    for name, graph, width in sorted(rows, key=lambda row: row[2]):
        prediction = "jkb2" if width < threshold else "btc"
        query = Query.ptc(sample_sources(graph, NUM_SOURCES, seed=1))
        btc_io = make_algorithm("btc").run(graph, query, system).metrics.total_io
        jkb2_io = make_algorithm("jkb2").run(graph, query, system).metrics.total_io
        winner = "jkb2" if jkb2_io < btc_io else "btc"
        hit = winner == prediction
        correct += hit
        print(f"{name:>6} {width:6.0f} {prediction:>8} {btc_io:7d} "
              f"{jkb2_io:8d} {winner:>7} {'yes' if hit else 'no':>8}")

    print(f"\nwidth threshold: {threshold:.0f}; "
          f"prediction accuracy: {correct}/{len(rows)}")
    print("(the paper stops short of a full optimizer model; the width "
          "is a qualitative signal, so a few misses are expected)")


if __name__ == "__main__":
    main()
