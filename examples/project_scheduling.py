"""Scenario: project scheduling with generalized transitive closure.

Reachability is the boolean instance of a family of path problems the
same successor-list machinery evaluates (the "generalized transitive
closure" of the thesis [7] behind the paper's implementation
framework).  This example plans a construction-style project:

* tasks form a dependency DAG, arcs labelled with the predecessor
  task's duration;
* the **critical path** (max-plus semiring) gives the earliest finish
  and the tasks that cannot slip;
* **path counts** show how redundant the precedence structure is;
* **bottleneck capacities** (max-min) find, for a supply-routing
  subproblem, the widest route between depots.

Run with::

    python examples/project_scheduling.py
"""

import random

from repro.graphs.digraph import Digraph
from repro.paths import (
    WeightedDigraph,
    bottleneck_capacities,
    critical_path_lengths,
    path_counts,
)

NUM_TASKS = 300


def build_project(seed: int = 5) -> tuple[WeightedDigraph, list[int]]:
    """A layered task DAG with durations on the arcs.

    Arc (a, b) labelled d means: task b can start d days after task a
    starts (d is a's duration).  Returns the graph and the durations.
    """
    rng = random.Random(seed)
    durations = [rng.randint(1, 10) for _ in range(NUM_TASKS)]
    arcs = []
    for task in range(NUM_TASKS - 1):
        for _ in range(rng.randint(1, 3)):
            successor = rng.randint(task + 1, min(task + 25, NUM_TASKS - 1))
            if successor != task:
                arcs.append((task, successor, durations[task]))
    weighted = WeightedDigraph.from_labelled_arcs(NUM_TASKS, arcs)
    return weighted, durations


def main() -> None:
    project, durations = build_project()
    print(f"project: {project.num_nodes} tasks, {project.num_arcs} precedence arcs")

    # -- critical path from the kickoff task.
    critical = critical_path_lengths(project, sources=[0])
    row = critical.values.get(0, {})
    if row:
        finish_task = max(row, key=row.get)
        makespan = row[finish_task] + durations[finish_task]
        print(f"\ncritical path: kickoff -> task {finish_task}, "
              f"start offset {row[finish_task]} days, "
              f"project makespan {makespan} days")
    print(f"  (page I/O for the schedule: {critical.metrics.total_io})")

    # -- how over-constrained is the plan?  Path counts per pair.
    counts = path_counts(project.graph, sources=[0])
    reachable = counts.values.get(0, {})
    if reachable:
        busiest = max(reachable, key=reachable.get)
        print(f"\nprecedence redundancy: task {busiest} is ordered after the "
              f"kickoff by {reachable[busiest]} distinct dependency chains")

    # -- supply routing: reuse the DAG as a route network where labels
    #    are road capacities, and find the widest route from the depot.
    rng = random.Random(99)
    capacities = WeightedDigraph(
        project.graph,
        {(src, dst): rng.choice([1, 3, 5, 10]) for src, dst in project.graph.arcs()},
    )
    widest = bottleneck_capacities(capacities, sources=[0])
    row = widest.values.get(0, {})
    if row:
        best = max(row.values())
        print(f"\nsupply routing: widest route out of the depot carries "
              f"{best} truckloads")


if __name__ == "__main__":
    main()
