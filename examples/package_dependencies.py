"""Scenario: transitive dependency resolution for a package repository.

A package index is a DAG: packages depend on lower-level packages.
"Which packages does installing X pull in?" is exactly a partial
transitive closure with a small source set -- the high-selectivity
regime of the paper's Section 6.3 -- while "build the full reverse-
dependency table" is a complete closure.

The example builds a layered synthetic package graph (applications ->
libraries -> core runtimes), then shows how the paper's findings guide
the choice of algorithm for each task.

Run with::

    python examples/package_dependencies.py
"""

import random

from repro import Digraph, Query, SystemConfig, make_algorithm


def build_package_graph(
    num_apps: int = 150,
    num_libs: int = 250,
    num_core: int = 100,
    seed: int = 11,
) -> Digraph:
    """A three-layer dependency DAG: apps -> libs -> core runtimes.

    Node ids: apps first, then libraries, then core packages; arcs
    point from a package to the packages it depends on.
    """
    rng = random.Random(seed)
    n = num_apps + num_libs + num_core
    arcs = []
    libs = range(num_apps, num_apps + num_libs)
    core = range(num_apps + num_libs, n)
    for app in range(num_apps):
        for lib in rng.sample(libs, rng.randint(1, 6)):
            arcs.append((app, lib))
    for lib in libs:
        # Libraries depend on a few other (higher-numbered) libraries...
        later = [other for other in libs if other > lib]
        for other in rng.sample(later, min(len(later), rng.randint(0, 3))):
            arcs.append((lib, other))
        # ...and on core runtimes.
        for runtime in rng.sample(core, rng.randint(1, 3)):
            arcs.append((lib, runtime))
    return Digraph.from_arcs(n, arcs)


def main() -> None:
    graph = build_package_graph()
    print(f"package index: {graph.num_nodes} packages, {graph.num_arcs} dependency arcs")

    system = SystemConfig(buffer_pages=10)

    # -- Task 1: install plan for two applications (high selectivity).
    install_targets = [3, 42]
    query = Query.ptc(install_targets)
    print(f"\n== install plan for packages {install_targets} ==")
    for name in ("srch", "btc", "jkb2"):
        result = make_algorithm(name).run(graph, query, system)
        print(f"  {name:5s}: {result.metrics.total_io:5d} page I/Os")
    result = make_algorithm("srch").run(graph, query, system)
    for target in install_targets:
        closure = result.successors_of(target)
        print(f"  installing {target} pulls in {len(closure)} packages")

    # -- Task 2: the full "depends-on" table (complete closure).
    print("\n== full dependency table ==")
    for name in ("btc", "hyb", "spn"):
        result = make_algorithm(name).run(graph, Query.full(), system)
        print(f"  {name:5s}: {result.metrics.total_io:5d} page I/Os, "
              f"{result.num_tuples} closure tuples")

    # -- Task 3: impact analysis -- who breaks if a core runtime changes?
    # Reverse the graph and take the closure from the runtime.
    reverse = graph.reverse()
    runtime = graph.num_nodes - 1
    impact = make_algorithm("srch").run(reverse, Query.ptc([runtime]), system)
    dependents = impact.successors_of(runtime)
    print(f"\n== impact analysis ==\n  a change to core package {runtime} "
          f"affects {len(dependents)} downstream packages")


if __name__ == "__main__":
    main()
