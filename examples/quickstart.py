"""Quickstart: compute transitive closures and inspect their cost.

Run with::

    python examples/quickstart.py
"""

from repro import Query, SystemConfig, generate_dag, make_algorithm


def main() -> None:
    # 1. Generate a workload graph the way the paper does (Section 5.2):
    #    n nodes, average out-degree F, generation locality l.
    graph = generate_dag(num_nodes=500, avg_out_degree=5, locality=100, seed=7)
    print(f"workload: {graph.num_nodes} nodes, {graph.num_arcs} arcs")

    # 2. Full transitive closure with the BTC algorithm on a simulated
    #    disk with a 20-page buffer pool.
    btc = make_algorithm("btc")
    full = btc.run(graph, Query.full(), SystemConfig(buffer_pages=20))
    print(f"\nfull closure: {full.num_tuples} tuples")
    print(f"  page I/O        : {full.metrics.total_io}")
    print(f"  list unions     : {full.metrics.list_unions}")
    print(f"  marked arcs     : {full.metrics.arcs_marked} "
          f"({full.metrics.marking_percentage:.0%} of arcs)")
    print(f"  est. I/O time   : {full.metrics.estimated_io_seconds():.2f}s @ 20ms/IO")
    print(f"  CPU time        : {full.metrics.cpu_seconds:.3f}s "
          f"(I/O bound: {full.metrics.estimated_io_seconds() > full.metrics.cpu_seconds})")

    # 3. Partial closure: all successors of three source nodes.
    sources = [0, 17, 123]
    partial = btc.run(graph, Query.ptc(sources), SystemConfig(buffer_pages=10))
    for source in sources:
        successors = partial.successors_of(source)
        print(f"\nnode {source} reaches {len(successors)} nodes"
              f" (first few: {successors[:8]})")
    print(f"selection efficiency: {partial.metrics.selection_efficiency:.1%} "
          "(useful fraction of generated tuples)")

    # 4. The same query with the Search algorithm -- the paper's winner
    #    for high-selectivity queries (Section 6.3).
    srch = make_algorithm("srch").run(graph, Query.ptc(sources), SystemConfig(buffer_pages=10))
    print(f"\nBTC page I/O : {partial.metrics.total_io}")
    print(f"SRCH page I/O: {srch.metrics.total_io}  <- wins at s={len(sources)}")
    assert srch.successor_bits == partial.successor_bits  # same answer


if __name__ == "__main__":
    main()
