"""Scenario: reachability over a cyclic graph via condensation.

The paper studies acyclic graphs because a cyclic input can be
*condensed* first -- strongly connected components merged into single
nodes -- at a cost that is small compared to computing the closure
(Section 1, citing Yannakakis).  This example runs that full pipeline
on a synthetic call graph with mutual recursion:

1. build a cyclic call graph,
2. condense it with Tarjan's algorithm,
3. compute the closure of the condensation DAG with BTC,
4. expand the answer back to the original functions.

Run with::

    python examples/cyclic_reachability.py
"""

import random

from repro import Digraph, Query, SystemConfig, condensation, make_algorithm
from repro.graphs.analysis import bitset_to_nodes
from repro.graphs.condensation import expand_closure_to_original


def build_call_graph(num_functions: int = 400, seed: int = 3) -> Digraph:
    """A call graph with deliberate mutual-recursion cliques."""
    rng = random.Random(seed)
    arcs = []
    # Forward calls (acyclic backbone).
    for caller in range(num_functions):
        for _ in range(rng.randint(0, 3)):
            callee = rng.randint(caller + 1, min(caller + 50, num_functions - 1)) \
                if caller + 1 < num_functions else caller
            if callee != caller:
                arcs.append((caller, callee))
    # Mutual recursion: back-arcs closing small cycles.
    for _ in range(num_functions // 10):
        a = rng.randint(0, num_functions - 10)
        b = a + rng.randint(1, 8)
        arcs.append((a, b))
        arcs.append((b, a))
    return Digraph.from_arcs(num_functions, arcs)


def main() -> None:
    graph = build_call_graph()
    print(f"call graph: {graph.num_nodes} functions, {graph.num_arcs} call arcs")

    # 1-2. Condense the cyclic graph.
    cond = condensation(graph)
    nontrivial = [members for members in cond.members if len(members) > 1]
    print(f"condensation: {cond.dag.num_nodes} components "
          f"({len(nontrivial)} recursive groups, largest "
          f"{max((len(m) for m in nontrivial), default=0)} functions)")

    # 3. Closure of the condensation DAG -- the expensive part runs on
    #    a graph that is already acyclic, as the paper assumes.
    result = make_algorithm("btc").run(
        cond.dag, Query.full(), SystemConfig(buffer_pages=20)
    )
    print(f"closure of the condensation: {result.num_tuples} tuples, "
          f"{result.metrics.total_io} page I/Os")

    # 4. Expand back to the original node space.
    component_closure = {
        comp: set(bitset_to_nodes(result.successor_bits.get(comp, 0)))
        for comp in range(cond.dag.num_nodes)
    }
    reachability = expand_closure_to_original(cond, component_closure)

    # Sample some answers.
    for function in (0, 5, 50):
        reached = reachability[function]
        recursive = function in reached
        print(f"function {function}: reaches {len(reached)} functions"
              f"{' (participates in recursion)' if recursive else ''}")


if __name__ == "__main__":
    main()
