"""Tests for DFS, topological sorting and reachability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CyclicGraphError
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.graphs.toposort import is_acyclic, reachable_from, topological_sort


class TestTopologicalSort:
    def test_respects_every_arc(self):
        graph = generate_dag(100, 3, 25, seed=1)
        order = topological_sort(graph)
        position = {node: index for index, node in enumerate(order)}
        for src, dst in graph.arcs():
            assert position[src] < position[dst]

    def test_includes_every_node_once(self):
        graph = generate_dag(50, 2, 10, seed=2)
        order = topological_sort(graph)
        assert sorted(order) == list(range(50))

    def test_cycle_raises(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(CyclicGraphError):
            topological_sort(graph)

    def test_self_loop_raises(self):
        graph = Digraph.from_arcs(2, [(0, 0)])
        with pytest.raises(CyclicGraphError):
            topological_sort(graph)

    def test_scoped_sort_ignores_outside_arcs(self):
        # 0 -> 1 -> 2 -> 0 is a cycle, but scope {0, 1} has no cycle.
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        order = topological_sort(graph, nodes=[0, 1])
        assert order == [0, 1]

    def test_deterministic(self):
        graph = generate_dag(80, 3, 20, seed=3)
        assert topological_sort(graph) == topological_sort(graph)

    def test_deep_chain_does_not_overflow(self):
        n = 5000
        graph = Digraph.from_arcs(n, [(i, i + 1) for i in range(n - 1)])
        order = topological_sort(graph)
        assert order == list(range(n))


class TestIsAcyclic:
    def test_dag_is_acyclic(self):
        assert is_acyclic(generate_dag(50, 3, 10, seed=4))

    def test_cycle_is_detected(self):
        assert not is_acyclic(Digraph.from_arcs(2, [(0, 1), (1, 0)]))


class TestReachability:
    def test_includes_sources(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        assert reachable_from(graph, [2]) == {2}

    def test_follows_paths(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (3, 4)])
        assert reachable_from(graph, [0]) == {0, 1, 2}

    def test_multi_source_union(self):
        graph = Digraph.from_arcs(5, [(0, 1), (3, 4)])
        assert reachable_from(graph, [0, 3]) == {0, 1, 3, 4}

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_reachable_set_is_closed_under_successors(self, n, seed):
        graph = generate_dag(n, 2, max(1, n // 3), seed=seed)
        sources = [0, n - 1] if n > 1 else [0]
        reached = reachable_from(graph, sources)
        for node in reached:
            for child in graph.successors(node):
                assert child in reached
