"""Tests for the canonical G1..G12 graph suite (Tables 1 and 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.datasets import (
    GRAPH_FAMILIES,
    LOCALITIES,
    OUT_DEGREES,
    SELECTIVITIES,
    build_graph,
    graph_family,
    sample_sources,
)


class TestFamilies:
    def test_twelve_families(self):
        assert len(GRAPH_FAMILIES) == 12
        assert [family.name for family in GRAPH_FAMILIES] == [
            f"G{i}" for i in range(1, 13)
        ]

    def test_parameter_grid_matches_table1(self):
        assert OUT_DEGREES == (2, 5, 20, 50)
        assert LOCALITIES == (20, 200, 2000)
        assert SELECTIVITIES == (2, 5, 20, 200, 500, 1000, 2000)

    def test_table2_ordering_f_slowest(self):
        # G1..G3 share F=2 with l = 20, 200, 2000; G4..G6 share F=5; ...
        assert (GRAPH_FAMILIES[0].avg_out_degree, GRAPH_FAMILIES[0].locality) == (2, 20)
        assert (GRAPH_FAMILIES[5].avg_out_degree, GRAPH_FAMILIES[5].locality) == (5, 2000)
        assert (GRAPH_FAMILIES[11].avg_out_degree, GRAPH_FAMILIES[11].locality) == (50, 2000)

    def test_lookup_by_name(self):
        family = graph_family("g9")
        assert family.name == "G9"
        assert family.avg_out_degree == 20
        assert family.locality == 2000

    def test_unknown_family_raises(self):
        with pytest.raises(ConfigurationError):
            graph_family("G13")


class TestGeneration:
    def test_paper_scale_has_2000_nodes(self):
        graph = build_graph("G1", seed=0)
        assert graph.num_nodes == 2000

    def test_scaling_shrinks_nodes_and_locality(self):
        graph = build_graph("G2", seed=0, scale=4)
        assert graph.num_nodes == 500
        for src, dst in graph.arcs():
            assert dst - src <= 200 // 4

    def test_seeds_give_distinct_graphs_within_a_family(self):
        assert build_graph("G5", seed=0) != build_graph("G5", seed=1)

    def test_families_give_distinct_graphs_for_same_seed(self):
        assert build_graph("G5", seed=0) != build_graph("G6", seed=0)

    def test_generation_is_reproducible_across_calls(self):
        assert build_graph("G7", seed=2) == build_graph("G7", seed=2)

    def test_invalid_scale_raises(self):
        with pytest.raises(ConfigurationError):
            build_graph("G1", scale=0)


class TestSampleSources:
    def test_count_and_uniqueness(self):
        graph = build_graph("G3", seed=0, scale=8)
        sources = sample_sources(graph, 20, seed=1)
        assert len(sources) == 20
        assert len(set(sources)) == 20

    def test_count_clamped_to_graph_size(self):
        graph = build_graph("G3", seed=0, scale=8)
        sources = sample_sources(graph, 10_000, seed=1)
        assert len(sources) == graph.num_nodes

    def test_deterministic_per_seed(self):
        graph = build_graph("G3", seed=0, scale=8)
        assert sample_sources(graph, 5, seed=3) == sample_sources(graph, 5, seed=3)
        assert sample_sources(graph, 5, seed=3) != sample_sources(graph, 5, seed=4)
