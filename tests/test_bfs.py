"""Tests for the BJ algorithm (single-parent optimisation, Section 3.3)."""

from repro.core.bfs import BjAlgorithm
from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.graphs.digraph import Digraph

from conftest import oracle_closure


class TestCorrectness:
    def test_selection_matches_oracle(self, medium_dag):
        sources = [0, 25, 60]
        result = BjAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_chain_reduction_preserves_answers(self, chain):
        """Every non-source node of a path is single-parent; the whole
        tail collapses into the source's adjacency."""
        result = BjAlgorithm().run(chain, Query.ptc([0]))
        assert result.successors_of(0) == [1, 2, 3, 4, 5]

    def test_full_closure_identical_to_btc(self, medium_dag):
        """For CTC no node can be eliminated: BJ is BTC (Section 6.2)."""
        bj = BjAlgorithm().run(medium_dag)
        btc = BtcAlgorithm().run(medium_dag)
        assert bj.successor_bits == btc.successor_bits
        assert bj.metrics.total_io == btc.metrics.total_io
        assert bj.metrics.list_unions == btc.metrics.list_unions


class TestReduction:
    def test_single_parent_lists_are_not_expanded(self, chain):
        """On a path with one source, only the source's list is built
        up; the reduced nodes perform no unions."""
        result = BjAlgorithm().run(chain, Query.ptc([0]))
        # The source unions each (adopted) child once; reduced nodes none.
        assert result.metrics.list_unions == 5

    def test_adoption_example_from_paper(self):
        """Figure 3's structure: d is single-parent (parent a), so d's
        children are adopted by a and d becomes a sink."""
        # a=0, d=1, f=2, g=3, j=4; a->d, d->f, d->g, d->j, f->g, g->j.
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (1, 3), (1, 4), (2, 3), (3, 4)])
        sources = [0]
        bj = BjAlgorithm().run(graph, Query.ptc(sources))
        btc = BtcAlgorithm().run(graph, Query.ptc(sources))
        assert bj.successors_of(0) == btc.successors_of(0)
        # Everything below the source was reduced to a sink, so every
        # BJ union is with an empty child list: no tuples get read.
        assert bj.metrics.tuple_io < btc.metrics.tuple_io
        assert bj.metrics.list_unions <= btc.metrics.list_unions

    def test_sources_are_never_reduced(self):
        """A single-parent node that is a source keeps its list."""
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        result = BjAlgorithm().run(graph, Query.ptc([0, 1]))
        assert result.successors_of(1) == [2]

    def test_cascading_reductions(self):
        """A chain below the source collapses entirely in one sweep."""
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        result = BjAlgorithm().run(graph, Query.ptc([0]))
        assert result.successors_of(0) == [1, 2, 3, 4]
        assert result.metrics.list_unions == 4  # all by the source

    def test_multi_parent_nodes_are_kept(self):
        """Diamond: node 3 has two parents and must keep its own list."""
        graph = Digraph.from_arcs(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        bj = BjAlgorithm().run(graph, Query.ptc([0]))
        assert bj.successors_of(0) == [1, 2, 3, 4]

    def test_bj_never_does_more_unions_than_btc(self, medium_dag):
        for sources in ([0], [0, 1, 2], [5, 50, 100, 140]):
            bj = BjAlgorithm().run(medium_dag, Query.ptc(sources))
            btc = BtcAlgorithm().run(medium_dag, Query.ptc(sources))
            assert bj.metrics.list_unions <= btc.metrics.list_unions
