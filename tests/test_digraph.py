"""Tests for the Digraph type."""

import pickle

import pytest

from repro.errors import InvalidNodeError
from repro.graphs.digraph import ArcView, Digraph, DigraphBuilder


class TestConstruction:
    def test_from_arcs_deduplicates(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 1), (0, 2)])
        assert graph.num_arcs == 2
        assert graph.successors(0) == [1, 2]

    def test_negative_node_count_raises(self):
        with pytest.raises(InvalidNodeError):
            Digraph(-1)

    def test_out_of_range_arc_raises(self):
        with pytest.raises(InvalidNodeError):
            Digraph.from_arcs(2, [(0, 5)])

    def test_empty_graph(self):
        graph = Digraph(0)
        assert graph.num_nodes == 0
        assert graph.num_arcs == 0
        assert list(graph.arcs()) == []

    def test_add_arc_keeps_successors_sorted(self):
        graph = Digraph(5)
        for dst in (4, 1, 3, 2):
            assert graph.add_arc(0, dst)
        assert graph.successors(0) == [1, 2, 3, 4]

    def test_add_duplicate_arc_returns_false(self):
        graph = Digraph(3)
        assert graph.add_arc(0, 1) is True
        assert graph.add_arc(0, 1) is False
        assert graph.num_arcs == 1


class TestAccessors:
    def test_has_arc(self):
        graph = Digraph.from_arcs(4, [(0, 2), (1, 3)])
        assert graph.has_arc(0, 2)
        assert not graph.has_arc(0, 3)

    def test_degrees(self):
        graph = Digraph.from_arcs(4, [(0, 1), (0, 2), (1, 2)])
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.in_degree(0) == 0

    def test_predecessors_track_added_arcs(self):
        graph = Digraph.from_arcs(4, [(0, 3)])
        assert graph.predecessors(3) == [0]
        graph.add_arc(1, 3)
        assert graph.predecessors(3) == [0, 1]

    def test_arcs_iterates_in_source_order(self):
        arcs = [(0, 1), (0, 3), (2, 3)]
        graph = Digraph.from_arcs(4, arcs)
        assert list(graph.arcs()) == arcs

    def test_invalid_node_queries_raise(self):
        graph = Digraph(2)
        with pytest.raises(InvalidNodeError):
            graph.successors(2)
        with pytest.raises(InvalidNodeError):
            graph.out_degree(-1)


class TestTransforms:
    def test_reverse(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        reversed_graph = graph.reverse()
        assert list(reversed_graph.arcs()) == [(1, 0), (2, 1)]

    def test_reverse_twice_is_identity(self):
        graph = Digraph.from_arcs(5, [(0, 1), (0, 4), (2, 3), (3, 4)])
        assert graph.reverse().reverse() == graph

    def test_induced_subgraph_keeps_ids_and_filters_arcs(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = graph.induced_subgraph({1, 2, 4})
        assert sub.num_nodes == 5  # id space preserved
        assert list(sub.arcs()) == [(1, 2)]

    def test_equality_is_structural(self):
        a = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        b = Digraph.from_arcs(3, [(1, 2), (0, 1)])
        assert a == b


class TestStructuralImmutability:
    """The old aliasing footgun: ``successors()`` used to hand back the
    graph's own mutable list, so ``graph.successors(u).append(v)``
    silently corrupted the graph.  CSR rows are read-only views; every
    mutation attempt must raise."""

    def test_successors_rejects_item_assignment(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        row = graph.successors(0)
        with pytest.raises(TypeError):
            row[0] = 9

    def test_successors_has_no_list_mutators(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        row = graph.successors(0)
        for method in ("append", "extend", "insert", "pop", "remove", "clear", "sort"):
            assert not hasattr(row, method)

    def test_mutation_attempt_does_not_corrupt_graph(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        with pytest.raises(TypeError):
            graph.successors(0)[1] = 0
        assert list(graph.successors(0)) == [1, 2]
        assert graph.num_arcs == 2

    def test_predecessors_are_read_only_too(self):
        graph = Digraph.from_arcs(3, [(0, 2), (1, 2)])
        with pytest.raises(TypeError):
            graph.predecessors(2)[0] = 9

    def test_adjacency_rows_are_read_only(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        rows = graph.adjacency_rows()
        with pytest.raises(TypeError):
            rows[0][0] = 9

    def test_adjacency_lists_copies_are_independent(self):
        # The sanctioned mutable escape hatch: fresh lists, not aliases.
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        lists = graph.adjacency_lists()
        lists[0].append(99)
        assert list(graph.successors(0)) == [1]
        assert graph.adjacency_lists()[0] == [1]

    def test_rows_stay_valid_across_add_arc(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        row = graph.successors(0)
        graph.add_arc(0, 2)
        # The old view keeps its snapshot; a fresh read sees the arc.
        assert list(row) == [1]
        assert list(graph.successors(0)) == [1, 2]


class TestArcView:
    def test_equality_with_lists_and_tuples(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        row = graph.successors(0)
        assert row == [1, 2]
        assert row == (1, 2)
        assert row != [1]
        assert row == graph.successors(0)

    def test_contains_and_slicing(self):
        graph = Digraph.from_arcs(6, [(0, 1), (0, 3), (0, 5)])
        row = graph.successors(0)
        assert 3 in row and 4 not in row
        assert isinstance(row[1:], ArcView)
        assert list(row[1:]) == [3, 5]
        assert row[-1] == 5

    def test_hashable(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        assert hash(graph.successors(0)) == hash((1, 2))


class TestBuilder:
    def test_freeze_deduplicates_and_sorts(self):
        builder = DigraphBuilder(4)
        builder.add_arcs([(2, 3), (0, 2), (0, 1), (0, 2)])
        graph = builder.freeze()
        assert list(graph.arcs()) == [(0, 1), (0, 2), (2, 3)]

    def test_growable_builder_tracks_max_node(self):
        builder = DigraphBuilder()
        builder.add_arc(0, 7)
        builder.ensure_node(9)
        assert builder.num_nodes == 10
        assert builder.freeze().num_nodes == 10

    def test_declared_size_rejects_out_of_range(self):
        builder = DigraphBuilder(3)
        with pytest.raises(InvalidNodeError):
            builder.add_arc(0, 3)

    def test_negative_node_rejected(self):
        builder = DigraphBuilder()
        with pytest.raises(InvalidNodeError):
            builder.add_arc(-1, 0)

    def test_builder_matches_from_arcs(self):
        arcs = [(0, 1), (1, 2), (0, 2), (3, 0)]
        builder = DigraphBuilder(4)
        builder.add_arcs(arcs)
        assert builder.freeze() == Digraph.from_arcs(4, arcs)


class TestPickle:
    def test_round_trip(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert list(clone.successors(0)) == [1, 3]
