"""Tests for the Digraph type."""

import pytest

from repro.errors import InvalidNodeError
from repro.graphs.digraph import Digraph


class TestConstruction:
    def test_from_arcs_deduplicates(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 1), (0, 2)])
        assert graph.num_arcs == 2
        assert graph.successors(0) == [1, 2]

    def test_negative_node_count_raises(self):
        with pytest.raises(InvalidNodeError):
            Digraph(-1)

    def test_out_of_range_arc_raises(self):
        with pytest.raises(InvalidNodeError):
            Digraph.from_arcs(2, [(0, 5)])

    def test_empty_graph(self):
        graph = Digraph(0)
        assert graph.num_nodes == 0
        assert graph.num_arcs == 0
        assert list(graph.arcs()) == []

    def test_add_arc_keeps_successors_sorted(self):
        graph = Digraph(5)
        for dst in (4, 1, 3, 2):
            assert graph.add_arc(0, dst)
        assert graph.successors(0) == [1, 2, 3, 4]

    def test_add_duplicate_arc_returns_false(self):
        graph = Digraph(3)
        assert graph.add_arc(0, 1) is True
        assert graph.add_arc(0, 1) is False
        assert graph.num_arcs == 1


class TestAccessors:
    def test_has_arc(self):
        graph = Digraph.from_arcs(4, [(0, 2), (1, 3)])
        assert graph.has_arc(0, 2)
        assert not graph.has_arc(0, 3)

    def test_degrees(self):
        graph = Digraph.from_arcs(4, [(0, 1), (0, 2), (1, 2)])
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.in_degree(0) == 0

    def test_predecessors_track_added_arcs(self):
        graph = Digraph.from_arcs(4, [(0, 3)])
        assert graph.predecessors(3) == [0]
        graph.add_arc(1, 3)
        assert graph.predecessors(3) == [0, 1]

    def test_arcs_iterates_in_source_order(self):
        arcs = [(0, 1), (0, 3), (2, 3)]
        graph = Digraph.from_arcs(4, arcs)
        assert list(graph.arcs()) == arcs

    def test_invalid_node_queries_raise(self):
        graph = Digraph(2)
        with pytest.raises(InvalidNodeError):
            graph.successors(2)
        with pytest.raises(InvalidNodeError):
            graph.out_degree(-1)


class TestTransforms:
    def test_reverse(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        reversed_graph = graph.reverse()
        assert list(reversed_graph.arcs()) == [(1, 0), (2, 1)]

    def test_reverse_twice_is_identity(self):
        graph = Digraph.from_arcs(5, [(0, 1), (0, 4), (2, 3), (3, 4)])
        assert graph.reverse().reverse() == graph

    def test_induced_subgraph_keeps_ids_and_filters_arcs(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = graph.induced_subgraph({1, 2, 4})
        assert sub.num_nodes == 5  # id space preserved
        assert list(sub.arcs()) == [(1, 2)]

    def test_equality_is_structural(self):
        a = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        b = Digraph.from_arcs(3, [(1, 2), (0, 1)])
        assert a == b
