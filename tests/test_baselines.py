"""Tests for the related-work baseline algorithms (Section 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.baselines.seminaive import SeminaiveAlgorithm
from repro.baselines.warren import WarrenAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.errors import UnknownAlgorithmError
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


class TestRegistry:
    def test_names(self):
        assert BASELINE_NAMES == ("seminaive", "smart", "warshall", "warren", "schmitz")

    def test_lookup(self):
        assert isinstance(make_baseline("seminaive"), SeminaiveAlgorithm)
        assert isinstance(make_baseline("WARREN"), WarrenAlgorithm)

    def test_unknown_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            make_baseline("magic-sets")


class TestSeminaive:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = SeminaiveAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_matches_oracle(self, medium_dag):
        sources = [0, 40, 90]
        result = SeminaiveAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_iteration_count_is_bounded_by_longest_path(self, chain):
        algorithm = SeminaiveAlgorithm()
        algorithm.run(chain)
        # A 6-node path needs 5 joins at most; seminaive stops when the
        # delta is empty, one iteration after the last derivation.
        assert algorithm.iterations <= 5

    def test_empty_graph(self):
        result = SeminaiveAlgorithm().run(Digraph(4))
        assert result.num_tuples == 0


class TestWarren:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = WarrenAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_handles_cycles_without_condensation(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        result = WarrenAlgorithm().run(graph)
        assert set(result.successors_of(0)) == {0, 1, 2, 3}
        assert set(result.successors_of(3)) == set()

    def test_selection_outputs_only_source_rows(self, small_dag):
        result = WarrenAlgorithm().run(small_dag, Query.ptc([0, 5]))
        assert set(result.successor_bits) == {0, 5}

    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_btc_on_random_dags(self, n, seed):
        graph = generate_dag(n, 3, max(1, n // 2), seed=seed)
        warren = WarrenAlgorithm().run(graph)
        btc = make_algorithm("btc").run(graph)
        assert warren.successor_bits == btc.successor_bits


class TestEarlierStudiesConclusion:
    def test_graph_based_beats_matrix_based_on_page_io(self):
        """[12, 19]: the graph-based algorithms dominate the matrix
        algorithms when the matrix far exceeds the buffer pool."""
        graph = generate_dag(600, 4, 120, seed=50)
        system = SystemConfig(buffer_pages=10)
        btc_io = make_algorithm("btc").run(graph, system=system).metrics.total_io
        warren_io = WarrenAlgorithm().run(graph, system=system).metrics.total_io
        assert btc_io < warren_io

    def test_graph_based_beats_seminaive_on_full_closure(self):
        """[19]: Seminaive re-derives tuples level by level and loses
        to the graph-based algorithms on CTC."""
        graph = generate_dag(600, 4, 120, seed=51)
        system = SystemConfig(buffer_pages=10)
        btc = make_algorithm("btc").run(graph, system=system).metrics
        seminaive = SeminaiveAlgorithm().run(graph, system=system).metrics
        assert btc.total_io < seminaive.total_io
