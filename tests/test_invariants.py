"""Cross-cutting accounting invariants of the simulator.

The paper's analysis leans on relationships between its cost metrics
(Sections 5.3, 6.3, 7); these tests pin the relationships down as
executable invariants over random workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.analysis import transitive_reduction_arcs
from repro.graphs.generator import generate_dag
from repro.storage.iostats import Phase


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    f = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=50_000))
    graph = generate_dag(n, f, max(1, n // 2), seed=seed)
    k = draw(st.integers(min_value=1, max_value=min(4, n)))
    sources = list(range(0, n, max(1, n // k)))[:k]
    return graph, sources


class TestIoAccounting:
    @given(workloads(), st.sampled_from(ALGORITHM_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_requests_split_into_hits_and_reads(self, workload, name):
        graph, sources = workload
        metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
        io = metrics.io
        assert io.total_requests == io.total_hits + io.total_reads

    @given(workloads(), st.sampled_from(ALGORITHM_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_phase_io_sums_to_total(self, workload, name):
        graph, sources = workload
        io = make_algorithm(name).run(graph, Query.ptc(sources)).metrics.io
        phase_reads = sum(io.reads_in(phase) for phase in Phase)
        phase_writes = sum(io.writes_in(phase) for phase in Phase)
        assert phase_reads == io.total_reads
        assert phase_writes == io.total_writes

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_bigger_buffer_never_costs_more_for_btc(self, workload):
        """LRU is not strictly inclusive, but for these workloads the
        paper's monotone trend (Figure 13) must hold between extremes."""
        graph, sources = workload
        query = Query.ptc(sources)
        small = make_algorithm("btc").run(graph, query, SystemConfig(buffer_pages=3))
        large = make_algorithm("btc").run(graph, query, SystemConfig(buffer_pages=200))
        assert large.metrics.total_io <= small.metrics.total_io


class TestMetricRelationships:
    @given(workloads(), st.sampled_from(ALGORITHM_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_duplicates_never_exceed_tuples_read(self, workload, name):
        graph, sources = workload
        metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
        assert 0 <= metrics.duplicates <= metrics.tuple_io

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_flat_list_duplicates_never_exceed_generated(self, workload):
        """For the flat-list algorithms every duplicate is a generated
        tuple; the tree algorithms prune whole subtrees per duplicate
        encounter, so only the tuple-I/O bound applies to them."""
        graph, sources = workload
        for name in ("btc", "hyb", "bj", "srch"):
            metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
            assert 0 <= metrics.duplicates <= metrics.tuples_generated, name

    @given(workloads(), st.sampled_from(ALGORITHM_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_marked_arcs_never_exceed_considered(self, workload, name):
        graph, sources = workload
        metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
        assert 0 <= metrics.arcs_marked <= metrics.arcs_considered

    @given(workloads(), st.sampled_from(ALGORITHM_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_selection_efficiency_is_a_ratio(self, workload, name):
        graph, sources = workload
        metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
        assert 0.0 <= metrics.selection_efficiency <= 1.0

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_flat_algorithms_generate_at_least_the_answer(self, workload):
        """tc >= stc for the flat-list algorithms (Section 6.3.2)."""
        graph, sources = workload
        for name in ("btc", "bj", "srch"):
            metrics = make_algorithm(name).run(graph, Query.ptc(sources)).metrics
            assert metrics.tuples_generated + metrics.distinct_tuples >= metrics.output_tuples

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_btc_marks_exactly_the_redundant_magic_arcs(self, workload):
        graph, sources = workload
        result = make_algorithm("btc").run(graph, Query.ptc(sources))
        from repro.graphs.toposort import reachable_from

        scope = reachable_from(graph, sources)
        _irr, redundant = transitive_reduction_arcs(graph, scope)
        assert result.metrics.arcs_marked == len(redundant)

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_store_length_matches_list_contents_for_btc(self, workload):
        """The physical list length tracks the logical bitset exactly."""
        graph, sources = workload
        from repro.core.btc import BtcAlgorithm
        from repro.core.context import ExecutionContext

        algorithm = BtcAlgorithm()
        ctx = ExecutionContext(graph, Query.ptc(sources), SystemConfig())
        algorithm.restructure(ctx)
        algorithm.compute(ctx)
        for node in ctx.topo_order:
            assert ctx.store.length(node) == ctx.lists[node].bit_count()
