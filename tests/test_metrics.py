"""Tests for the metric counters and their derived measures."""

import pytest

from repro.metrics.counters import MetricSet
from repro.storage.iostats import Phase
from repro.storage.page import PageKind


class TestDerivedMeasures:
    def test_marking_percentage(self):
        metrics = MetricSet()
        metrics.arcs_considered = 10
        metrics.arcs_marked = 3
        assert metrics.marking_percentage == pytest.approx(0.3)

    def test_marking_percentage_without_arcs(self):
        assert MetricSet().marking_percentage == 0.0

    def test_selection_efficiency(self):
        metrics = MetricSet()
        metrics.tuples_generated = 200
        metrics.output_tuples = 50
        assert metrics.selection_efficiency == pytest.approx(0.25)

    def test_selection_efficiency_capped_at_one(self):
        metrics = MetricSet()
        metrics.tuples_generated = 10
        metrics.output_tuples = 50  # tree algorithms can answer more
        assert metrics.selection_efficiency == 1.0

    def test_selection_efficiency_of_empty_run(self):
        assert MetricSet().selection_efficiency == 1.0

    def test_avg_unmarked_locality(self):
        metrics = MetricSet()
        metrics.arcs_considered = 5
        metrics.arcs_marked = 1
        metrics.unmarked_locality_total = 8
        assert metrics.avg_unmarked_locality == pytest.approx(2.0)

    def test_avg_unmarked_locality_all_marked(self):
        metrics = MetricSet()
        metrics.arcs_considered = 3
        metrics.arcs_marked = 3
        assert metrics.avg_unmarked_locality == 0.0

    def test_total_io_delegates_to_iostats(self):
        metrics = MetricSet()
        metrics.io.record_read(PageKind.SUCCESSOR)
        metrics.io.record_write(PageKind.SUCCESSOR)
        assert metrics.total_io == 2

    def test_estimated_io_seconds(self):
        metrics = MetricSet()
        for _ in range(50):
            metrics.io.record_read(PageKind.RELATION)
        assert metrics.estimated_io_seconds() == pytest.approx(1.0)


class TestSummary:
    def test_summary_contains_every_headline_metric(self):
        summary = MetricSet().summary()
        for key in (
            "total_io",
            "restructure_io",
            "compute_io",
            "writeout_io",
            "tuples_generated",
            "duplicates",
            "distinct_tuples",
            "output_tuples",
            "tuple_io",
            "list_unions",
            "list_reads",
            "marking_percentage",
            "selection_efficiency",
            "avg_unmarked_locality",
            "hit_ratio",
            "cpu_seconds",
            "estimated_io_seconds",
        ):
            assert key in summary

    def test_summary_phase_split_sums_to_total(self):
        metrics = MetricSet()
        metrics.io.phase = Phase.RESTRUCTURE
        metrics.io.record_read(PageKind.RELATION)
        metrics.io.phase = Phase.COMPUTE
        metrics.io.record_read(PageKind.SUCCESSOR)
        metrics.io.record_write(PageKind.SUCCESSOR)
        metrics.io.phase = Phase.WRITEOUT
        metrics.io.record_write(PageKind.SUCCESSOR)
        summary = metrics.summary()
        assert (
            summary["restructure_io"] + summary["compute_io"] + summary["writeout_io"]
            == summary["total_io"]
        )
