"""Tests for the ClosureResult type."""

from repro.core.query import Query, SystemConfig
from repro.core.result import ClosureResult
from repro.metrics.counters import MetricSet


def make_result(bits: dict[int, int]) -> ClosureResult:
    return ClosureResult(
        algorithm="btc",
        query=Query.full(),
        system=SystemConfig(),
        metrics=MetricSet(),
        successor_bits=bits,
    )


class TestClosureResult:
    def test_successors_of(self):
        result = make_result({0: 0b1110, 1: 0})
        assert result.successors_of(0) == [1, 2, 3]
        assert result.successors_of(1) == []
        assert result.successors_of(99) == []

    def test_tuples_sorted(self):
        result = make_result({1: 0b100, 0: 0b10})
        assert result.tuples() == [(0, 1), (1, 2)]

    def test_num_tuples(self):
        result = make_result({0: 0b1110, 1: 0b1})
        assert result.num_tuples == 4

    def test_reaches(self):
        result = make_result({0: 0b100})
        assert result.reaches(0, 2)
        assert not result.reaches(0, 1)
        assert not result.reaches(5, 2)
