"""Tests for the I/O statistics counters."""

from repro.storage.iostats import IoStats, Phase
from repro.storage.page import PageKind


class TestPhaseAttribution:
    def test_reads_are_charged_to_the_current_phase(self):
        stats = IoStats()
        stats.phase = Phase.RESTRUCTURE
        stats.record_read(PageKind.RELATION)
        stats.phase = Phase.COMPUTE
        stats.record_read(PageKind.SUCCESSOR)
        stats.record_read(PageKind.SUCCESSOR)
        assert stats.reads_in(Phase.RESTRUCTURE) == 1
        assert stats.reads_in(Phase.COMPUTE) == 2
        assert stats.total_reads == 3

    def test_writes_are_charged_to_the_current_phase(self):
        stats = IoStats()
        stats.phase = Phase.WRITEOUT
        stats.record_write(PageKind.SUCCESSOR)
        assert stats.writes_in(Phase.WRITEOUT) == 1
        assert stats.writes_in(Phase.COMPUTE) == 0

    def test_kind_attribution(self):
        stats = IoStats()
        stats.record_read(PageKind.RELATION)
        stats.record_read(PageKind.INDEX)
        stats.record_read(PageKind.INDEX)
        assert stats.reads_of(PageKind.INDEX) == 2
        assert stats.reads_of(PageKind.RELATION) == 1
        assert stats.reads_of(PageKind.SUCCESSOR) == 0

    def test_total_io_sums_reads_and_writes(self):
        stats = IoStats()
        stats.record_read(PageKind.RELATION)
        stats.record_write(PageKind.SUCCESSOR)
        stats.record_write(PageKind.SUCCESSOR)
        assert stats.total_io == 3


class TestHitRatio:
    def test_zero_requests_gives_zero_ratio(self):
        assert IoStats().hit_ratio() == 0.0

    def test_overall_ratio(self):
        stats = IoStats()
        stats.record_request(PageKind.SUCCESSOR, hit=True)
        stats.record_request(PageKind.SUCCESSOR, hit=True)
        stats.record_request(PageKind.SUCCESSOR, hit=False)
        stats.record_request(PageKind.SUCCESSOR, hit=False)
        assert stats.hit_ratio() == 0.5

    def test_per_phase_ratio(self):
        stats = IoStats()
        stats.phase = Phase.RESTRUCTURE
        stats.record_request(PageKind.RELATION, hit=False)
        stats.phase = Phase.COMPUTE
        stats.record_request(PageKind.SUCCESSOR, hit=True)
        assert stats.hit_ratio(Phase.COMPUTE) == 1.0
        assert stats.hit_ratio(Phase.RESTRUCTURE) == 0.0


class TestEstimatedIoTime:
    def test_twenty_ms_per_io(self):
        # Table 3's model: 20 ms per simulated I/O.
        stats = IoStats()
        for _ in range(100):
            stats.record_read(PageKind.SUCCESSOR)
        assert stats.estimated_io_seconds() == 2.0

    def test_custom_cost(self):
        stats = IoStats()
        stats.record_write(PageKind.SUCCESSOR)
        assert stats.estimated_io_seconds(ms_per_io=5.0) == 0.005
