"""Tests for the experiment harness (profiles, runner, tables, figures)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import PROFILES, get_profile
from repro.experiments.figures import FigureData, figure6, figure8, figure14
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import average_runs, run_single
from repro.experiments.tables import table2, table3, table4
from repro.graphs.datasets import build_graph
from repro.obs.sink import MemorySink, get_global_sink, set_global_sink


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"paper", "default", "smoke"}
        assert get_profile("paper").scale == 1

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            get_profile("huge")

    def test_scaled_selectivity_floors_at_one(self):
        smoke = get_profile("smoke")
        assert smoke.scaled_selectivity(2) == 1
        assert smoke.scaled_selectivity(2000) == 250

    def test_build_respects_scale(self):
        graph = get_profile("smoke").build("G1", seed=0)
        assert graph.num_nodes == 250


class TestQuerySpec:
    def test_full_spec(self):
        graph = build_graph("G1", scale=8)
        assert QuerySpec.full().materialise(graph).is_full

    def test_selection_spec_draws_sources(self):
        graph = build_graph("G1", scale=8)
        query = QuerySpec.selection(5).materialise(graph, sample_index=0)
        assert query.selectivity == 5

    def test_samples_differ_by_index(self):
        graph = build_graph("G1", scale=8)
        spec = QuerySpec.selection(5)
        a = spec.materialise(graph, sample_index=0)
        b = spec.materialise(graph, sample_index=1)
        assert a.sources != b.sources


class TestRunner:
    def test_run_single_returns_a_result(self):
        graph = build_graph("G2", scale=8)
        result = run_single("btc", graph, QuerySpec.selection(3))
        assert result.algorithm == "btc"
        assert result.metrics.total_io > 0

    def test_average_runs_averages(self):
        smoke = get_profile("smoke")
        averaged = average_runs("btc", "G2", QuerySpec.selection(3), smoke)
        assert averaged.runs == smoke.graphs_per_family * smoke.source_samples
        assert averaged.total_io > 0

    def test_full_query_skips_source_sampling(self):
        smoke = get_profile("smoke")
        averaged = average_runs("btc", "G2", QuerySpec.full(), smoke)
        assert averaged.runs == smoke.graphs_per_family


class TestRunRecordEmission:
    """The repetition protocol emits exactly one record per run."""

    def test_ptc_cell_emits_graphs_times_samples(self):
        default = get_profile("default")
        sink = MemorySink()
        average_runs("btc", "G2", QuerySpec.selection(3), default, sink=sink)
        assert len(sink.records) == default.graphs_per_family * default.source_samples
        assert {r.algorithm for r in sink.records} == {"btc"}
        # All repetitions of one cell share one workload/query identity.
        assert len({r.cell_key() for r in sink.records}) == 1

    def test_full_closure_cell_emits_one_per_graph(self):
        default = get_profile("default")
        sink = MemorySink()
        average_runs("btc", "G2", QuerySpec.full(), default, sink=sink)
        assert len(sink.records) == default.graphs_per_family * 1

    def test_global_sink_receives_runs_too(self):
        smoke = get_profile("smoke")
        sink = MemorySink()
        previous = set_global_sink(sink)
        try:
            average_runs("btc", "G2", QuerySpec.selection(3), smoke)
        finally:
            set_global_sink(previous)
        assert len(sink.records) == smoke.graphs_per_family * smoke.source_samples

    def test_no_sink_means_no_records(self):
        smoke = get_profile("smoke")
        assert get_global_sink() is None
        averaged = average_runs("btc", "G2", QuerySpec.selection(3), smoke)
        assert averaged.runs == 1  # runs fine with zero telemetry attached

    def test_averaged_metrics_match_hand_computed_means(self):
        default = get_profile("default")
        sink = MemorySink()
        averaged = average_runs("btc", "G2", QuerySpec.selection(3), default, sink=sink)
        ios = [r.total_io for r in sink.records]
        assert averaged.total_io == pytest.approx(sum(ios) / len(ios))
        generated = [r.metrics["tuples_generated"] for r in sink.records]
        assert averaged.tuples_generated == pytest.approx(sum(generated) / len(generated))
        hit_ratios = [r.metrics["io"]["compute_hit_ratio"] for r in sink.records]
        assert averaged.hit_ratio == pytest.approx(
            sum(hit_ratios) / len(hit_ratios), abs=1e-4
        )


class TestTables:
    def test_table2_covers_all_families(self):
        rows = table2("smoke")
        assert [row["graph"] for row in rows] == [f"G{i}" for i in range(1, 13)]
        for row in rows:
            assert row["arcs"] > 0
            assert row["H"] >= 1

    def test_table2_trends_match_the_paper(self):
        """Higher F / lower l gives deeper graphs; irredundant arc
        locality is no worse than overall locality (Section 5.3)."""
        rows = {row["graph"]: row for row in table2("smoke")}
        assert rows["G12"]["H"] > rows["G3"]["H"]
        for row in rows.values():
            assert row["avg_irred_loc"] <= row["avg_loc"]

    def test_table3_shows_io_bound_execution(self):
        rows = table3("smoke")
        assert [row["M"] for row in rows] == [10, 20, 50]
        assert all(row["io_bound"] for row in rows)
        assert rows[0]["page_io"] >= rows[-1]["page_io"]

    def test_table4_is_sorted_by_width(self):
        rows = table4("smoke", selectivities=(5,))
        widths = [row["W"] for row in rows]
        assert widths == sorted(widths)
        assert all(row["jkb2/btc@s=5"] > 0 for row in rows)


class TestFigures:
    def test_figure6_has_all_curves(self):
        data = figure6("smoke", buffer_sizes=(10, 20))
        assert isinstance(data, FigureData)
        assert set(data.series) == {"BTC", "HYB-0", "HYB-0.1", "HYB-0.2", "HYB-0.3"}
        assert data.xs == [10, 20]

    def test_figure6_hyb0_equals_btc(self):
        data = figure6("smoke", buffer_sizes=(10,))
        assert data.series["HYB-0"] == data.series["BTC"]

    def test_figure8_panels(self):
        panels = figure8("smoke", selectivities=(2, 20))
        assert set(panels) == {"a", "b"}
        for panel in panels.values():
            assert set(panel.series) == {"BTC", "BJ", "JKB2", "SRCH"}
            assert len(panel.xs) == 2

    def test_figure14_converges_at_full_selectivity(self):
        """At s = n the BTC and BJ curves coincide (Section 6.3.6)."""
        panels = figure14("smoke", selectivities=(2000,))
        io = panels["a"].series
        assert io["BTC"][-1] == io["BJ"][-1]

    def test_render_produces_text(self):
        data = figure6("smoke", buffer_sizes=(10,))
        text = data.render()
        assert "BTC" in text
        assert "M" in text
