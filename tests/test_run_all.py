"""Tests for the run-everything experiment driver."""

import pytest

from repro.experiments.run_all import main


class TestRunAll:
    def test_single_table(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--profile", "smoke", "--only", "table3", "--no-file"]) == 0
        output = capsys.readouterr().out
        assert "Table 3" in output
        assert "page_io" in output

    def test_writes_output_file(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--profile", "smoke", "--only", "table3"]) == 0
        path = tmp_path / "experiments_output_smoke.txt"
        assert path.exists()
        assert "Table 3" in path.read_text()

    def test_figure_selection(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--profile", "smoke", "--only", "figure11", "--no-file"]) == 0
        output = capsys.readouterr().out
        assert "Figure 11" in output
        assert "JKB2" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "figure99", "--no-file"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["--profile", "gigantic"])
