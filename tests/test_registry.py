"""Tests for the algorithm registry."""

import pytest

from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.errors import UnknownAlgorithmError


class TestRegistry:
    def test_paper_suite_is_registered(self):
        assert ALGORITHM_NAMES == (
            "btc",
            "hyb",
            "bj",
            "srch",
            "spn",
            "jkb",
            "jkb2",
            "chains",
        )

    def test_names_resolve_to_matching_algorithms(self):
        for name in ALGORITHM_NAMES:
            assert make_algorithm(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert make_algorithm("BTC").name == "btc"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            make_algorithm("warshall")

    def test_each_call_returns_a_fresh_instance(self):
        assert make_algorithm("btc") is not make_algorithm("btc")

    def test_jkb_variants_differ_in_representation(self):
        assert make_algorithm("jkb").dual_representation is False
        assert make_algorithm("jkb2").dual_representation is True
        assert make_algorithm("jkb2").needs_inverse is True
