"""Tests for the clustered arc relation and its inverse."""

import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.storage.buffer import BufferPool
from repro.storage.page import TUPLES_PER_PAGE, PageKind
from repro.storage.relation import ArcRelation, InverseArcRelation


def wide_graph(num_nodes: int = 40, fanout: int = 30) -> Digraph:
    """A graph with enough arcs to span several relation pages."""
    arcs = [
        (src, dst)
        for src in range(num_nodes)
        for dst in range(src + 1, min(src + 1 + fanout, num_nodes))
    ]
    return Digraph.from_arcs(num_nodes, arcs)


class TestLayout:
    def test_page_count_matches_tuple_count(self):
        graph = wide_graph()
        relation = ArcRelation(graph)
        assert relation.num_tuples == graph.num_arcs
        expected_pages = -(-graph.num_arcs // TUPLES_PER_PAGE)
        assert relation.num_pages == expected_pages

    def test_tuples_are_clustered_by_source(self):
        graph = wide_graph()
        relation = ArcRelation(graph)
        # A node's tuples occupy a contiguous page range.
        for node in graph.nodes():
            pages = list(relation.pages_for_node(node))
            assert pages == sorted(pages)
            if pages:
                assert pages[-1] - pages[0] <= len(pages)

    def test_page_of_arc_is_inside_the_nodes_run(self):
        graph = wide_graph()
        relation = ArcRelation(graph)
        for src, dst in list(graph.arcs())[:200]:
            assert relation.page_of_arc(src, dst) in relation.pages_for_node(src)

    def test_page_of_missing_arc_raises(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        relation = ArcRelation(graph)
        with pytest.raises(KeyError):
            relation.page_of_arc(0, 2)

    def test_empty_node_has_no_pages(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        relation = ArcRelation(graph)
        assert list(relation.pages_for_node(2)) == []


class TestChargedAccess:
    def test_scan_touches_every_page_once(self):
        graph = wide_graph()
        pool = BufferPool(100)
        relation = ArcRelation(graph)
        touched = relation.scan(pool)
        assert touched == relation.num_pages
        assert pool.stats.reads_of(PageKind.RELATION) == relation.num_pages

    def test_read_successors_charges_index_and_data(self):
        graph = wide_graph()
        pool = BufferPool(100)
        relation = ArcRelation(graph)
        successors = relation.read_successors(5, pool)
        assert successors == graph.successors(5)
        assert pool.stats.reads_of(PageKind.INDEX) == 2  # root + leaf
        assert pool.stats.reads_of(PageKind.RELATION) >= 1

    def test_index_root_caches_across_lookups(self):
        graph = wide_graph()
        pool = BufferPool(100)
        relation = ArcRelation(graph)
        relation.read_successors(5, pool)
        before = pool.stats.total_reads
        relation.read_successors(6, pool)
        # Root and leaf already resident; only new data pages fault.
        extra_index_reads = pool.stats.reads_of(PageKind.INDEX)
        assert extra_index_reads == 2  # unchanged
        assert pool.stats.total_reads >= before

    def test_unclustered_probe_charges_one_access_per_arc(self):
        graph = wide_graph()
        pool = BufferPool(2)  # tiny pool: most probes miss
        relation = ArcRelation(graph)
        relation.probe_arcs_unclustered(50, pool, seed_position=3)
        assert pool.stats.total_requests == 50

    def test_unclustered_probe_on_empty_relation_is_free(self):
        graph = Digraph(4)
        pool = BufferPool(2)
        relation = ArcRelation(graph)
        relation.probe_arcs_unclustered(10, pool, seed_position=0)
        assert pool.stats.total_requests == 0


class TestInverseRelation:
    def test_reads_predecessors(self):
        graph = Digraph.from_arcs(4, [(0, 2), (1, 2), (2, 3)])
        pool = BufferPool(10)
        inverse = InverseArcRelation(graph)
        assert inverse.read_predecessors(2, pool) == [0, 1]
        assert inverse.read_predecessors(3, pool) == [2]

    def test_uses_its_own_page_space(self):
        graph = generate_dag(50, 3, 10, seed=1)
        pool = BufferPool(100)
        ArcRelation(graph).scan(pool)
        inverse = InverseArcRelation(graph)
        inverse.read_predecessors(10, pool)
        assert pool.stats.reads_of(PageKind.INVERSE_INDEX) == 2
        # Forward relation reads were not polluted by the inverse scan.
        assert pool.stats.reads_of(PageKind.RELATION) == ArcRelation(graph).num_pages

    def test_inverse_tuple_count_matches(self):
        graph = generate_dag(50, 3, 10, seed=2)
        assert InverseArcRelation(graph).num_tuples == graph.num_arcs
