"""Smoke tests: every example script runs and prints sensible output.

The examples are user-facing documentation; these tests keep them
working as the library evolves.  Each example module is loaded from
the ``examples/`` directory and its ``main()`` executed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "package_dependencies",
    "cyclic_reachability",
    "metric_pitfalls",
    "project_scheduling",
]


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_example_runs(self, name, capsys):
        module = load_example(name)
        module.main()
        output = capsys.readouterr().out
        assert output.strip(), name

    def test_quickstart_shows_srch_winning(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "wins at s=3" in output

    def test_package_dependencies_builds_a_dag(self):
        module = load_example("package_dependencies")
        graph = module.build_package_graph()
        from repro.graphs.toposort import is_acyclic

        assert is_acyclic(graph)
        assert graph.num_arcs > graph.num_nodes

    def test_cyclic_reachability_finds_recursion(self, capsys):
        load_example("cyclic_reachability").main()
        output = capsys.readouterr().out
        assert "recursive groups" in output

    def test_metric_pitfalls_demonstrates_the_inversion(self, capsys):
        load_example("metric_pitfalls").main()
        output = capsys.readouterr().out
        assert "tuple metrics and page I/O disagree: True" in output

    def test_project_scheduling_reports_a_makespan(self, capsys):
        load_example("project_scheduling").main()
        output = capsys.readouterr().out
        assert "makespan" in output

    def test_algorithm_advisor_is_importable(self):
        # The advisor sweeps all 12 families; too slow for unit tests,
        # but it must at least import cleanly and expose main().
        module = load_example("algorithm_advisor")
        assert callable(module.main)
