"""Tests for the chaos plane: fault injection and invariant auditing."""

import os

import pytest

from repro.chaos.audit import (
    InvariantAuditor,
    audit_mode,
    make_auditor,
    set_audit_mode,
)
from repro.chaos.faults import (
    FaultKind,
    FaultPlan,
    active_plan,
    arm_from_env,
    set_fault_plan,
    use_fault_plan,
)
from repro.cli import main
from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.errors import (
    ConfigurationError,
    CorruptPageReadError,
    InvariantViolation,
    ReproError,
    TornWriteError,
)
from repro.experiments.parallel import (
    ExperimentEngine,
    GraphSpec,
    WorkUnit,
    execute_unit,
)
from repro.experiments.queries import QuerySpec
from repro.obs.record import RunRecord
from repro.storage.buffer import BufferPool
from repro.storage.page import PageId, PageKind


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    """Every test starts and ends with no plan armed and default audit."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_AUDIT", raising=False)
    set_fault_plan(None)
    set_audit_mode(None)
    yield
    # The CLIs export REPRO_CHAOS/REPRO_AUDIT so worker processes can
    # re-arm; pop them explicitly -- monkeypatch.delenv on an *unset*
    # variable records nothing, so it would not undo that export.
    os.environ.pop("REPRO_CHAOS", None)
    os.environ.pop("REPRO_AUDIT", None)
    set_fault_plan(None)
    set_audit_mode(None)


class TestSpecParsing:
    def test_single_fault_after(self):
        plan = FaultPlan.parse("corrupt-read,after=3")
        assert plan.armed(FaultKind.CORRUPT_READ)
        assert not plan.armed(FaultKind.TORN_WRITE)

    def test_multi_clause_with_seed(self):
        plan = FaultPlan.parse("seed=7;slow-io,p=0.5,ms=2;evict-storm,p=0.1,k=3")
        assert plan.seed == 7
        assert plan.armed(FaultKind.SLOW_IO)
        assert plan.armed(FaultKind.EVICT_STORM)

    def test_underscores_accepted(self):
        assert FaultPlan.parse("corrupt_read,after=1").armed(FaultKind.CORRUPT_READ)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            FaultPlan.parse("page-eater,p=0.1")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="bad parameter"):
            FaultPlan.parse("slow-io,p=0.1,volume=11")

    def test_non_numeric_param_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a number"):
            FaultPlan.parse("slow-io,p=often")

    def test_missing_trigger_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a trigger"):
            FaultPlan.parse("corrupt-read")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="arms no faults"):
            FaultPlan.parse("seed=3")

    def test_duplicate_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="armed twice"):
            FaultPlan.parse("slow-io,p=0.1;slow-io,p=0.2")

    def test_probability_range_checked(self):
        with pytest.raises(ConfigurationError, match=r"p must be in \[0, 1\]"):
            FaultPlan.parse("corrupt-read,p=1.5")


class TestDeterminism:
    def test_same_seed_same_firing_points(self):
        def firings(spec):
            plan = FaultPlan.parse(spec)
            return [
                opportunity
                for opportunity in range(1, 501)
                if plan.fire(FaultKind.CORRUPT_READ) is not None
            ]

        first = firings("seed=11;corrupt-read,p=0.05,times=5")
        second = firings("seed=11;corrupt-read,p=0.05,times=5")
        assert first == second
        assert len(first) == 5

    def test_arming_extra_fault_does_not_shift_existing_one(self):
        def corrupt_firings(spec):
            plan = FaultPlan.parse(spec)
            fired = []
            for _ in range(500):
                plan.fire(FaultKind.SLOW_IO)  # opportunity even when unarmed
                if plan.fire(FaultKind.CORRUPT_READ) is not None:
                    fired.append(True)
            return len(fired)

        alone = corrupt_firings("seed=3;corrupt-read,p=0.02")
        with_slow_io = corrupt_firings("seed=3;corrupt-read,p=0.02;slow-io,p=0.5,ms=0")
        assert alone == with_slow_io

    def test_after_counts_opportunities(self):
        plan = FaultPlan.parse("corrupt-read,after=4")
        events = [plan.fire(FaultKind.CORRUPT_READ) for _ in range(6)]
        assert [e is not None for e in events] == [False, False, False, True, False, False]

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "torn-write,after=2")
        plan = arm_from_env()
        assert plan is not None and active_plan() is plan
        assert plan.armed(FaultKind.TORN_WRITE)

    def test_env_empty_is_no_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "  ")
        assert arm_from_env() is None

    def test_env_bad_spec_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "warp-core-breach,p=0.5")
        with pytest.raises(ConfigurationError) as excinfo:
            arm_from_env()
        message = str(excinfo.value)
        assert "REPRO_CHAOS" in message
        assert "warp-core-breach" in message

    def test_env_bad_param_is_wrapped_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt-read,p=banana")
        with pytest.raises(ConfigurationError, match="REPRO_CHAOS"):
            arm_from_env()

    def test_env_engine_bad_value_lists_valid_engines(self, monkeypatch):
        from repro.storage.engine import default_engine

        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ConfigurationError) as excinfo:
            default_engine()
        message = str(excinfo.value)
        assert "REPRO_ENGINE" in message and "turbo" in message
        assert "paged" in message and "fast" in message

    def test_env_engine_empty_falls_back_to_paged(self, monkeypatch):
        from repro.storage.engine import default_engine

        monkeypatch.setenv("REPRO_ENGINE", "  ")
        assert default_engine() == "paged"


def _run_btc(graph, system=None):
    return make_algorithm("btc").run(graph, Query.full(), system or SystemConfig())


class TestFaultSites:
    # Read-site faults need buffer misses to get opportunities; a
    # 4-page pool forces plenty of physical reads on medium_dag.
    SMALL_POOL = SystemConfig(buffer_pages=4)

    def test_corrupt_read_raises_structured(self, medium_dag):
        with use_fault_plan(FaultPlan.parse("corrupt-read,after=2")):
            with pytest.raises(CorruptPageReadError) as excinfo:
                _run_btc(medium_dag, self.SMALL_POOL)
        assert isinstance(excinfo.value, ReproError)
        assert "opportunity 2" in str(excinfo.value)

    def test_torn_write_raises_structured(self, small_dag):
        with use_fault_plan(FaultPlan.parse("torn-write,after=10")):
            with pytest.raises(TornWriteError) as excinfo:
                _run_btc(small_dag)
        assert isinstance(excinfo.value, ReproError)

    def test_slow_io_only_delays(self, small_dag):
        clean = _run_btc(small_dag)
        with use_fault_plan(FaultPlan.parse("slow-io,p=1,ms=0")) as plan:
            injured = _run_btc(small_dag)
        assert injured.successor_bits == clean.successor_bits
        assert injured.metrics.total_io == clean.metrics.total_io
        assert plan.events  # it did fire

    def test_evict_storm_degrades_but_stays_correct(self, medium_dag):
        clean = _run_btc(medium_dag, self.SMALL_POOL)
        with use_fault_plan(FaultPlan.parse("seed=1;evict-storm,p=0.2")) as plan:
            injured = _run_btc(medium_dag, self.SMALL_POOL)
        assert injured.successor_bits == clean.successor_bits
        assert plan.events
        # Storms discard warm pages, so physical reads can only go up.
        assert injured.metrics.io.total_reads >= clean.metrics.io.total_reads

    def test_evict_storm_respects_pins(self, small_dag):
        pool = BufferPool(4)
        pages = [PageId(PageKind.RELATION, n) for n in range(3)]
        for page in pages:
            pool.access(page)
        pool.pin(pages[0])
        evicted = pool.storm_evict()
        assert evicted == 2
        assert pages[0] in pool

    def test_torn_write_leaves_store_auditable(self, small_dag):
        """A detected torn write must not corrupt the layout accounting."""
        set_audit_mode("strict")
        with use_fault_plan(FaultPlan.parse("torn-write,after=20")):
            with pytest.raises(TornWriteError):
                _run_btc(small_dag)
        # No InvariantViolation: the fault fired before any mutation.


class TestUnitBoundary:
    def _unit(self):
        return WorkUnit(
            cell_index=0,
            algorithm="btc",
            graph=GraphSpec.custom(40, 3.0, 15, seed=1),
            query=QuerySpec.full(),
            system=SystemConfig(),
        )

    def test_crash_unit_becomes_fault_error(self):
        with use_fault_plan(FaultPlan.parse("crash-unit,p=1")):
            outcome = execute_unit(self._unit(), timeout=None)
        assert outcome.error is not None
        assert outcome.error.kind == "fault"
        assert "InjectedCrashError" in outcome.error.message

    def test_crash_once_then_retry_succeeds(self):
        with use_fault_plan(FaultPlan.parse("crash-unit,after=1")):
            engine = ExperimentEngine(jobs=1, retries=1, backoff=0.0)
            outcomes = engine.map_units([self._unit()])
        assert outcomes[0].ok
        assert not engine.failures

    def test_fault_events_attached_to_record(self):
        with use_fault_plan(FaultPlan.parse("slow-io,p=1,ms=0")):
            outcome = execute_unit(self._unit(), timeout=None)
        assert outcome.ok
        assert outcome.record.faults
        assert outcome.record.faults[0]["kind"] == "slow-io"
        assert "faults" in outcome.record.to_dict()

    def test_clean_record_serialises_without_faults_key(self):
        record = RunRecord(algorithm="btc")
        assert "faults" not in record.to_dict()
        assert RunRecord.from_json(record.to_json()) == record

    def test_backoff_is_deterministic(self):
        delays = [ExperimentEngine(jobs=1, backoff=0.05)._retry_delay(a)
                  for a in (2, 3, 4)]
        again = [ExperimentEngine(jobs=1, backoff=0.05)._retry_delay(a)
                 for a in (2, 3, 4)]
        assert delays == again
        assert all(d > 0 for d in delays)
        assert ExperimentEngine(jobs=1, backoff=0.0)._retry_delay(2) == 0.0


class TestAuditor:
    def test_mode_resolution(self, monkeypatch):
        assert audit_mode() == "cheap"
        monkeypatch.setenv("REPRO_AUDIT", "strict")
        assert audit_mode() == "strict"
        set_audit_mode("off")  # explicit beats env
        assert audit_mode() == "off"
        assert make_auditor() is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvariantViolation):
            set_audit_mode("paranoid")

    def test_strict_run_is_silent_on_healthy_substrate(self, medium_dag):
        set_audit_mode("strict")
        result = make_algorithm("btc").run(medium_dag, Query.ptc([0, 1, 2]))
        assert result.metrics.total_io > 0

    def test_pool_violation_detected(self):
        pool = BufferPool(4)
        page = PageId(PageKind.RELATION, 0)
        pool.access(page)
        pool._frames[page].pin_count = 3  # bypass pin(): books disagree now
        with pytest.raises(InvariantViolation, match="pool.pinned-set"):
            InvariantAuditor().check_pool(pool)

    def test_violation_names_invariant_and_context(self):
        error = InvariantViolation("pool.residency", "too many pages",
                                   resident=7, capacity=4)
        assert error.invariant == "pool.residency"
        assert "resident=7" in str(error)


class TestChaosCli:
    def test_injected_fault_exits_structured(self, capsys):
        code = main(["--algorithm", "btc", "--family", "G4", "--scale", "8",
                     "--chaos", "corrupt-read,after=1", "--quiet"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error: CorruptPageReadError" in captured.err
        assert "injected faults (fired/opportunities)" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_spec_exits_structured(self, capsys):
        code = main(["--algorithm", "btc", "--family", "G4", "--scale", "8",
                     "--chaos", "nonsense", "--quiet"])
        assert code == 1
        assert "unknown fault" in capsys.readouterr().err

    def test_audit_strict_clean_run_exits_zero(self, capsys):
        code = main(["--algorithm", "btc", "--family", "G4", "--scale", "8",
                     "--audit", "strict", "--quiet"])
        assert code == 0
