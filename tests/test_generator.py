"""Tests for the synthetic DAG generator (Section 5.2 semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphs.generator import generate_dag
from repro.graphs.toposort import is_acyclic


class TestValidation:
    def test_zero_nodes_raises(self):
        with pytest.raises(ConfigurationError):
            generate_dag(0, 2, 10)

    def test_negative_degree_raises(self):
        with pytest.raises(ConfigurationError):
            generate_dag(10, -1, 10)

    def test_zero_locality_raises(self):
        with pytest.raises(ConfigurationError):
            generate_dag(10, 2, 0)

    def test_non_integral_nodes_raises_with_value(self):
        with pytest.raises(ConfigurationError, match="10.5"):
            generate_dag(10.5, 2, 10)

    def test_integral_float_nodes_accepted(self):
        assert generate_dag(10.0, 2, 5, seed=0).num_nodes == 10

    def test_bool_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="True"):
            generate_dag(True, 2, 10)

    def test_non_numeric_degree_raises_with_value(self):
        with pytest.raises(ConfigurationError, match="'five'"):
            generate_dag(10, "five", 10)

    def test_non_finite_degree_raises(self):
        with pytest.raises(ConfigurationError, match="finite"):
            generate_dag(10, float("nan"), 10)
        with pytest.raises(ConfigurationError, match="finite"):
            generate_dag(10, float("inf"), 10)

    def test_non_integral_locality_raises_with_value(self):
        with pytest.raises(ConfigurationError, match="2.5"):
            generate_dag(10, 2, 2.5)

    def test_configuration_error_is_value_error(self):
        # Callers that guard with ``except ValueError`` keep working.
        with pytest.raises(ValueError):
            generate_dag(0, 2, 10)


class TestStructure:
    def test_arcs_go_forward(self):
        graph = generate_dag(200, 4, 30, seed=0)
        for src, dst in graph.arcs():
            assert src < dst

    def test_generated_graph_is_acyclic(self):
        assert is_acyclic(generate_dag(150, 5, 40, seed=1))

    def test_locality_bounds_arc_span(self):
        locality = 13
        graph = generate_dag(200, 4, locality, seed=2)
        for src, dst in graph.arcs():
            assert dst - src <= locality

    def test_out_degree_at_most_twice_f(self):
        f = 3
        graph = generate_dag(300, f, 300, seed=3)
        for node in graph.nodes():
            assert graph.out_degree(node) <= 2 * f

    def test_average_out_degree_is_near_f(self):
        f = 5
        graph = generate_dag(2000, f, 2000, seed=4)
        average = graph.num_arcs / graph.num_nodes
        # Uniform on 0..2F has mean F; allow generous sampling noise.
        assert f * 0.8 <= average <= f * 1.2

    def test_tight_locality_caps_realised_degree(self):
        # Footnote 1 of the paper (graph G10): locality 20 cannot
        # support an average out-degree of 50.
        graph = generate_dag(2000, 50, 20, seed=5)
        assert graph.num_arcs < 2000 * 50 * 0.5

    def test_zero_degree_gives_empty_graph(self):
        graph = generate_dag(50, 0, 10, seed=6)
        assert graph.num_arcs == 0

    def test_single_node_graph(self):
        graph = generate_dag(1, 5, 10, seed=7)
        assert graph.num_nodes == 1
        assert graph.num_arcs == 0

    def test_target_window_boundary_when_locality_overruns(self):
        # The docstring's target range is the 0-based
        # [i+1, min(i+l, n-1)]: when i + l >= n the window is clipped
        # at the last node, which stays an admissible target -- and
        # nothing past it ever appears.
        n, locality = 10, 100
        graph = generate_dag(n, n, locality, seed=11)  # F=n forces full windows
        for node in range(n - 1):
            # With max_degree = 2n > window the generator takes every
            # admissible target, so the realised row IS the window.
            assert list(graph.successors(node)) == list(range(node + 1, n))
        assert graph.out_degree(n - 1) == 0  # last node: empty window

    def test_last_node_is_reachable_as_target(self):
        # The clipped window must include n-1 itself (an off-by-one
        # here silently shrinks every boundary window).
        graph = generate_dag(5, 10, 4, seed=12)
        assert graph.in_degree(4) > 0


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_dag(100, 3, 20, seed=11)
        b = generate_dag(100, 3, 20, seed=11)
        assert a == b

    def test_different_seed_different_graph(self):
        a = generate_dag(100, 3, 20, seed=11)
        b = generate_dag(100, 3, 20, seed=12)
        assert a != b


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=120),
        f=st.integers(min_value=0, max_value=8),
        locality=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_all_parameters(self, n, f, locality, seed):
        graph = generate_dag(n, f, locality, seed=seed)
        assert graph.num_nodes == n
        for src, dst in graph.arcs():
            assert src < dst
            assert dst - src <= locality
        for node in graph.nodes():
            assert graph.out_degree(node) <= 2 * f or f == 0
