"""Tests for the Search algorithm (Section 3.4)."""

import pytest

from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.search import SearchAlgorithm
from repro.errors import ConfigurationError
from repro.graphs.digraph import Digraph

from conftest import oracle_closure


class TestCorrectness:
    def test_selection_matches_oracle(self, medium_dag):
        sources = [2, 33, 99]
        result = SearchAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_full_query_is_rejected(self, small_dag):
        with pytest.raises(ConfigurationError):
            SearchAlgorithm().run(small_dag, Query.full())

    def test_source_with_no_successors(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        result = SearchAlgorithm().run(graph, Query.ptc([2]))
        assert result.successors_of(2) == []
        assert result.metrics.list_unions == 0


class TestCostCharacter:
    def test_no_marking_ever(self, medium_dag):
        result = SearchAlgorithm().run(medium_dag, Query.ptc([0, 1, 2]))
        assert result.metrics.arcs_marked == 0
        assert result.metrics.marking_percentage == 0.0

    def test_selection_efficiency_is_optimal(self, medium_dag):
        """SRCH only ever generates tuples for source lists: stc == tc
        minus duplicates, so its selection efficiency is the optimum
        the paper normalises against (Figure 9)."""
        result = SearchAlgorithm().run(medium_dag, Query.ptc([0, 20]))
        metrics = result.metrics
        assert metrics.tuples_generated - metrics.duplicates == metrics.output_tuples

    def test_sources_are_searched_independently(self, medium_dag):
        """k sources are k single-source queries: unions scale with the
        number of sources even when the sources overlap."""
        one = SearchAlgorithm().run(medium_dag, Query.ptc([0])).metrics.list_unions
        twice = SearchAlgorithm().run(medium_dag, Query.ptc([0, 1])).metrics.list_unions
        assert twice >= one

    def test_union_count_grows_rapidly_with_s(self, medium_dag):
        """Figure 10's SRCH trend."""
        counts = [
            SearchAlgorithm().run(medium_dag, Query.ptc(range(s))).metrics.list_unions
            for s in (1, 4, 16)
        ]
        assert counts[0] <= counts[1] <= counts[2]

    def test_unions_equal_expanded_nodes_with_children(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 2), (1, 3)])
        result = SearchAlgorithm().run(graph, Query.ptc([0]))
        # Nodes 0 and 1 have children; 2 and 3 are sinks.
        assert result.metrics.list_unions == 2

    def test_beats_btc_for_single_source(self, medium_dag):
        """The paper's Section 6.3 headline: SRCH wins at tiny s."""
        system = SystemConfig(buffer_pages=10)
        srch = SearchAlgorithm().run(medium_dag, Query.ptc([0]), system)
        btc = BtcAlgorithm().run(medium_dag, Query.ptc([0]), system)
        assert srch.metrics.total_io <= btc.metrics.total_io
