"""Tests for repro-lint: the AST-based invariant analyzer.

Each rule gets positive fixtures (the violation is found), negative
fixtures (sanctioned idioms stay clean), plus suppression, baseline and
CLI exit-code coverage -- and a self-check that the repository's own
``src/`` tree is clean under the default configuration, which is what
the CI gate runs.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import lint_source, load_baseline, write_baseline
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.lint.framework import PARSE_ERROR_CODE, LintResult, lint_paths
from repro.lint.rules import make_rules
from repro.lint.rules.capability import CapabilityGuardRule
from repro.lint.rules.counters import CounterDisciplineRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.fsync import FsyncDisciplineRule
from repro.lint.rules.scale import ScaleHygieneRule
from repro.lint.rules.seam import SeamIsolationRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source, rule, module="repro.core.fixture"):
    """Lint one dedented source string with one rule."""
    return lint_source(textwrap.dedent(source), [rule], module=module)


def codes(findings):
    return [f.code for f in findings]


class TestSeamIsolation:
    def test_plain_import_is_flagged(self):
        findings = run("import repro.storage.buffer\n", SeamIsolationRule())
        assert codes(findings) == ["RPL001"]
        assert "repro.storage.buffer" in findings[0].message

    def test_aliased_import_is_flagged(self):
        findings = run("import repro.storage.page as pg\n", SeamIsolationRule())
        assert codes(findings) == ["RPL001"]

    def test_from_import_is_flagged(self):
        source = "from repro.storage.successor_store import SuccessorListStore\n"
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_from_package_import_module_is_flagged(self):
        # The form the old grep guard could not see.
        source = "from repro.storage import buffer\n"
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_dynamic_import_string_is_flagged(self):
        source = """\
            import importlib
            mod = importlib.import_module("repro.storage.relation")
        """
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_engine_seam_import_is_allowed(self):
        source = "from repro.storage.engine import StorageEngine, make_engine\n"
        assert run(source, SeamIsolationRule()) == []

    def test_type_checking_import_is_allowed(self):
        source = """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.storage.buffer import BufferPool
        """
        assert run(source, SeamIsolationRule()) == []

    def test_storage_package_itself_is_exempt(self):
        source = "from repro.storage.page import PageId\n"
        findings = lint_source(
            source, [SeamIsolationRule()], module="repro.storage.paged"
        )
        assert findings == []


class TestDeterminism:
    def test_wall_clock_read_is_flagged(self):
        source = """\
            import time
            stamp = time.time()
        """
        findings = run(source, DeterminismRule())
        assert codes(findings) == ["RPL002"]
        assert "wall-clock" in findings[0].message

    def test_cpu_and_monotonic_timers_are_allowed(self):
        source = """\
            import time
            a = time.process_time()
            b = time.perf_counter()
        """
        assert run(source, DeterminismRule()) == []

    def test_unseeded_module_random_is_flagged(self):
        source = """\
            import random
            x = random.random()
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_seeded_random_instance_is_allowed(self):
        source = """\
            import random
            rng = random.Random(7)
            x = rng.random()
        """
        assert run(source, DeterminismRule()) == []

    def test_urandom_is_flagged(self):
        source = """\
            import os
            x = os.urandom(8)
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_for_over_set_is_flagged(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in pinned:
                    print(page)
        """
        findings = run(source, DeterminismRule())
        assert codes(findings) == ["RPL002"]
        assert "iterating a set" in findings[0].message

    def test_list_laundering_keeps_the_flag(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in list(pinned):
                    print(page)
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_sorted_set_is_allowed(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in sorted(pinned):
                    print(page)
        """
        assert run(source, DeterminismRule()) == []

    def test_comprehension_feeding_reducer_is_allowed(self):
        source = """\
            def f(rows):
                seen = {r * 2 for r in rows}
                return sum(x + 1 for x in seen)
        """
        assert run(source, DeterminismRule()) == []

    def test_insertion_ordered_dict_is_allowed(self):
        source = """\
            def f(pages):
                pinned = {}
                for page in pages:
                    pinned[page] = None
                for page in pinned:
                    print(page)
        """
        assert run(source, DeterminismRule()) == []

    def test_out_of_scope_module_is_ignored(self):
        source = """\
            import time
            stamp = time.time()
        """
        findings = lint_source(
            textwrap.dedent(source), [DeterminismRule()], module="repro.chaos.inject"
        )
        assert findings == []


class TestCounterDiscipline:
    def test_augmented_write_is_flagged(self):
        source = "metrics.tuples_generated += 1\n"
        findings = run(source, CounterDisciplineRule())
        assert codes(findings) == ["RPL003"]
        assert "tuples_generated" in findings[0].message

    def test_absolute_write_is_flagged(self):
        source = "metrics.cpu_seconds = 1.5\n"
        assert codes(run(source, CounterDisciplineRule())) == ["RPL003"]

    def test_self_metrics_receiver_is_flagged(self):
        source = """\
            class A:
                def f(self):
                    self.metrics.duplicates += 2
        """
        assert codes(run(source, CounterDisciplineRule())) == ["RPL003"]

    def test_fold_api_is_allowed(self):
        source = """\
            def f(metrics):
                metrics.fold(tuples_generated=3, duplicates=1)
                metrics.set_totals(cpu_seconds=0.5)
                metrics.count_union(4, 2)
        """
        assert run(source, CounterDisciplineRule()) == []

    def test_io_ledger_is_exempt(self):
        source = "metrics.io.phase = 1\n"
        assert run(source, CounterDisciplineRule()) == []

    def test_plain_locals_are_allowed(self):
        source = """\
            def f():
                tuples_generated = 0
                tuples_generated += 1
        """
        assert run(source, CounterDisciplineRule()) == []

    def test_metrics_package_itself_is_exempt(self):
        findings = lint_source(
            "metrics.tuples_generated += 1\n",
            [CounterDisciplineRule()],
            module="repro.metrics.counters",
        )
        assert findings == []


class TestCapabilityGuards:
    def test_unguarded_hook_is_flagged(self):
        source = """\
            def f(engine):
                engine.touch_page(1, 2)
        """
        findings = run(source, CapabilityGuardRule())
        assert codes(findings) == ["RPL004"]
        assert "CAP_PAGE_COSTS" in findings[0].message

    def test_direct_supports_guard_is_allowed(self):
        source = """\
            def f(engine):
                if engine.supports(CAP_PAGE_COSTS):
                    engine.touch_page(1, 2)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_flag_variable_guard_is_allowed(self):
        source = """\
            def f(engine):
                charged = engine.supports(CAP_PAGE_COSTS)
                if charged:
                    engine.create_page(1, 2)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_flag_guard_traced_into_closure(self):
        source = """\
            def f(engine):
                charged = engine.supports(CAP_PAGE_COSTS)

                def touch(row):
                    if not charged:
                        return
                    engine.touch_page(1, row)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_early_exit_guard_is_allowed(self):
        source = """\
            def f(engine):
                if not engine.supports(CAP_PAGE_COSTS):
                    return
                engine.flush_output([])
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_require_dominates_later_calls(self):
        source = """\
            def f(engine):
                engine.require(CAP_PINNING)
                engine.pin_page(1)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_pinning_hook_names_its_capability(self):
        source = """\
            def f(engine):
                engine.unpin_page(1)
        """
        findings = run(source, CapabilityGuardRule())
        assert codes(findings) == ["RPL004"]
        assert "CAP_PINNING" in findings[0].message

    def test_storage_package_itself_is_exempt(self):
        findings = lint_source(
            "def f(engine):\n    engine.touch_page(1, 2)\n",
            [CapabilityGuardRule()],
            module="repro.storage.paged",
        )
        assert findings == []


class TestExceptionHygiene:
    def test_bare_except_is_flagged_everywhere(self):
        source = """\
            try:
                f()
            except:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()], module="anywhere"
        )
        assert codes(findings) == ["RPL005"]
        assert "bare except" in findings[0].message

    def test_swallowed_broad_except_on_chaos_path_is_flagged(self):
        source = """\
            try:
                f()
            except Exception:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert codes(findings) == ["RPL005"]

    def test_reraising_handler_is_allowed(self):
        source = """\
            try:
                f()
            except Exception:
                raise
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert findings == []

    def test_structured_unit_error_is_allowed(self):
        source = """\
            def g(record_failure):
                try:
                    f()
                except Exception as exc:
                    record_failure(exc)
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.experiments.parallel",
        )
        assert findings == []

    def test_narrow_except_is_allowed(self):
        source = """\
            try:
                f()
            except ValueError:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert findings == []

    def test_broad_except_outside_chaos_scope_is_allowed(self):
        source = """\
            try:
                f()
            except Exception:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.report.tables",
        )
        assert findings == []


class TestFsyncDiscipline:
    def test_unflushed_write_is_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert codes(findings) == ["RPL006"]
        assert "flush()" in findings[0].message
        assert "os.fsync()" in findings[0].message

    def test_flush_without_fsync_still_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
                fh.flush()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert codes(findings) == ["RPL006"]
        assert "os.fsync()" in findings[0].message

    def test_flush_and_fsync_is_clean(self):
        source = """\
            import os

            def append(fh, line):
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert findings == []

    def test_non_writing_function_is_out_of_scope(self):
        source = """\
            def read_back(fh):
                return fh.read()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert findings == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            def append(fh, line):
                fh.write(line)
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.report.export",
        )
        assert findings == []

    def test_delegating_to_a_durable_helper_is_clean(self):
        # The batched-sink shape: the writer funnels durability through
        # one same-module helper that owns the flush+fsync pair.
        source = """\
            import os

            def append(fh, line):
                fh.write(line)
                _make_durable(fh)

            def _make_durable(fh):
                fh.flush()
                os.fsync(fh.fileno())
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert findings == []

    def test_delegating_to_an_undurable_helper_is_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
                _make_durable(fh)

            def _make_durable(fh):
                fh.flush()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert codes(findings) == ["RPL006"]


class TestScaleHygiene:
    def test_setdefault_adjacency_build_is_flagged(self):
        source = """\
            for src, dst in graph.arcs():
                adjacency.setdefault(src, []).append(dst)
        """
        findings = run(source, ScaleHygieneRule())
        assert codes(findings) == ["RPL007"]
        assert "graph_from_columns" in findings[0].message

    def test_subscript_append_over_nodes_is_flagged(self):
        source = """\
            for i in range(graph.num_nodes):
                rows[i].append(i + 1)
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_container_per_node_is_flagged(self):
        source = """\
            for node in graph.nodes():
                children[node] = []
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_arcs_named_iterable_is_flagged(self):
        source = """\
            for src, dst in arcs:
                preds.setdefault(dst, set()).add(src)
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_bounded_iterable_stays_clean(self):
        # The chains.py idiom: keyed accumulation over a *derived*
        # order, not a whole-graph sweep.
        source = """\
            for node in order:
                predecessors.setdefault(node, []).append(node)
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_flat_column_accumulation_stays_clean(self):
        # The sanctioned fix: flat arc columns, no per-node containers.
        source = """\
            for src, dst in graph.arcs():
                srcs.append(src)
                dsts.append(dst)
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_scalar_per_node_stays_clean(self):
        source = """\
            for node in graph.nodes():
                level[node] = 0
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            for src, dst in graph.arcs():
                adjacency.setdefault(src, []).append(dst)
        """
        findings = lint_source(
            textwrap.dedent(source), [ScaleHygieneRule()],
            module="repro.report.export",
        )
        assert findings == []


class TestSuppression:
    def test_inline_disable_by_code(self):
        source = "metrics.duplicates += 1  # repro-lint: disable=RPL003\n"
        stats = LintResult()
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x", stats=stats
        )
        assert findings == []
        assert stats.suppressed == 1

    def test_inline_disable_all_rules(self):
        source = "metrics.duplicates += 1  # repro-lint: disable\n"
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x"
        )
        assert findings == []

    def test_disable_wrong_code_does_not_suppress(self):
        source = "metrics.duplicates += 1  # repro-lint: disable=RPL001\n"
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x"
        )
        assert codes(findings) == ["RPL003"]

    def test_file_wide_disable(self):
        source = """\
            # repro-lint: disable-file=RPL003
            metrics.duplicates += 1
            metrics.tuple_io += 2
        """
        findings = lint_source(
            textwrap.dedent(source), [CounterDisciplineRule()], module="repro.core.x"
        )
        assert findings == []


class TestParseErrors:
    def test_unparsable_file_reports_rpl900(self):
        findings = lint_source("def broken(:\n", [SeamIsolationRule()])
        assert codes(findings) == [PARSE_ERROR_CODE]


class TestBaseline:
    def test_round_trip_and_subtraction(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        rules = [CounterDisciplineRule()]

        first = lint_paths([str(tmp_path)], rules)
        assert codes(first.findings) == ["RPL003"]

        baseline_file = tmp_path / "baseline.json"
        assert write_baseline(baseline_file, first.findings) == 1
        fingerprints = load_baseline(baseline_file)
        assert len(fingerprints) == 1

        second = lint_paths([str(tmp_path)], rules, baseline=fingerprints)
        assert second.findings == []
        assert second.baselined == 1

    def test_baseline_is_line_number_independent(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        rules = [CounterDisciplineRule()]
        first = lint_paths([str(tmp_path)], rules)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)

        # Push the grandfathered line down: it must stay baselined.
        bad.write_text("import os\n\n\nmetrics.duplicates += 1\n", encoding="utf-8")
        again = lint_paths(
            [str(tmp_path)], rules, baseline=load_baseline(baseline_file)
        )
        assert again.findings == []
        assert again.baselined == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{\"not\": \"a baseline\"}", encoding="utf-8")
        try:
            load_baseline(bad)
        except ValueError as exc:
            assert "malformed baseline" in str(exc)
        else:
            raise AssertionError("malformed baseline did not raise")


class TestConfigAndSelection:
    def test_select_narrows_the_rule_set(self):
        from repro.lint.config import LintConfig

        rules = make_rules(LintConfig(select=["RPL001"]))
        assert [r.code for r in rules] == ["RPL001"]

    def test_ignore_removes_rules(self):
        from repro.lint.config import LintConfig

        rules = make_rules(LintConfig(ignore=["RPL002", "RPL006"]))
        assert "RPL002" not in [r.code for r in rules]
        assert "RPL006" not in [r.code for r in rules]
        assert len(rules) == 5

    def test_per_rule_options_reach_the_rule(self):
        from repro.lint.config import LintConfig

        config = LintConfig(
            rule_options={"RPL001": {"banned": ("repro.storage.trace",)}}
        )
        (rule,) = [r for r in make_rules(config) if r.code == "RPL001"]
        assert rule.banned == ("repro.storage.trace",)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config"]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config"]) == EXIT_FINDINGS
        assert "RPL003" in capsys.readouterr().out

    def test_empty_selection_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path), "--no-config", "--select", "RPL999"]) == EXIT_ERROR

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config", "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "RPL003"
        assert payload["files"] == 1

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert (
            main([
                str(tmp_path), "--no-config",
                "--baseline", str(baseline), "--write-baseline",
            ])
            == EXIT_CLEAN
        )
        assert baseline.exists()
        assert (
            main([str(tmp_path), "--no-config", "--baseline", str(baseline)])
            == EXIT_CLEAN
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
                     "RPL007"):
            assert code in out


class TestRepositoryIsClean:
    def test_src_tree_is_clean_under_default_rules(self, capsys):
        """The CI gate: the repository satisfies its own invariants."""
        assert main([str(REPO_ROOT / "src"), "--no-config"]) == EXIT_CLEAN
