"""Tests for repro-lint: the AST-based invariant analyzer.

Each rule gets positive fixtures (the violation is found), negative
fixtures (sanctioned idioms stay clean), plus suppression, baseline and
CLI exit-code coverage -- and a self-check that the repository's own
``src/`` tree is clean under the default configuration, which is what
the CI gate runs.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import lint_source, load_baseline, write_baseline
from repro.lint.cache import LintCache, rules_signature
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.lint.framework import PARSE_ERROR_CODE, LintResult, lint_paths
from repro.lint.rules import make_rules
from repro.lint.rules.asynchygiene import AsyncHygieneRule
from repro.lint.rules.capability import CapabilityGuardRule
from repro.lint.rules.counters import CounterDisciplineRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.forksafety import ForkSafetyRule
from repro.lint.rules.fsync import FsyncDisciplineRule
from repro.lint.rules.resources import ResourceLifecycleRule
from repro.lint.rules.scale import ScaleHygieneRule
from repro.lint.rules.seam import SeamIsolationRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source, rule, module="repro.core.fixture"):
    """Lint one dedented source string with one rule."""
    return lint_source(textwrap.dedent(source), [rule], module=module)


def codes(findings):
    return [f.code for f in findings]


class TestSeamIsolation:
    def test_plain_import_is_flagged(self):
        findings = run("import repro.storage.buffer\n", SeamIsolationRule())
        assert codes(findings) == ["RPL001"]
        assert "repro.storage.buffer" in findings[0].message

    def test_aliased_import_is_flagged(self):
        findings = run("import repro.storage.page as pg\n", SeamIsolationRule())
        assert codes(findings) == ["RPL001"]

    def test_from_import_is_flagged(self):
        source = "from repro.storage.successor_store import SuccessorListStore\n"
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_from_package_import_module_is_flagged(self):
        # The form the old grep guard could not see.
        source = "from repro.storage import buffer\n"
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_dynamic_import_string_is_flagged(self):
        source = """\
            import importlib
            mod = importlib.import_module("repro.storage.relation")
        """
        assert codes(run(source, SeamIsolationRule())) == ["RPL001"]

    def test_engine_seam_import_is_allowed(self):
        source = "from repro.storage.engine import StorageEngine, make_engine\n"
        assert run(source, SeamIsolationRule()) == []

    def test_type_checking_import_is_allowed(self):
        source = """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.storage.buffer import BufferPool
        """
        assert run(source, SeamIsolationRule()) == []

    def test_storage_package_itself_is_exempt(self):
        source = "from repro.storage.page import PageId\n"
        findings = lint_source(
            source, [SeamIsolationRule()], module="repro.storage.paged"
        )
        assert findings == []


class TestDeterminism:
    def test_wall_clock_read_is_flagged(self):
        source = """\
            import time
            stamp = time.time()
        """
        findings = run(source, DeterminismRule())
        assert codes(findings) == ["RPL002"]
        assert "wall-clock" in findings[0].message

    def test_cpu_and_monotonic_timers_are_allowed(self):
        source = """\
            import time
            a = time.process_time()
            b = time.perf_counter()
        """
        assert run(source, DeterminismRule()) == []

    def test_unseeded_module_random_is_flagged(self):
        source = """\
            import random
            x = random.random()
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_seeded_random_instance_is_allowed(self):
        source = """\
            import random
            rng = random.Random(7)
            x = rng.random()
        """
        assert run(source, DeterminismRule()) == []

    def test_urandom_is_flagged(self):
        source = """\
            import os
            x = os.urandom(8)
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_for_over_set_is_flagged(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in pinned:
                    print(page)
        """
        findings = run(source, DeterminismRule())
        assert codes(findings) == ["RPL002"]
        assert "iterating a set" in findings[0].message

    def test_list_laundering_keeps_the_flag(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in list(pinned):
                    print(page)
        """
        assert codes(run(source, DeterminismRule())) == ["RPL002"]

    def test_sorted_set_is_allowed(self):
        source = """\
            def f(pages):
                pinned = set(pages)
                for page in sorted(pinned):
                    print(page)
        """
        assert run(source, DeterminismRule()) == []

    def test_comprehension_feeding_reducer_is_allowed(self):
        source = """\
            def f(rows):
                seen = {r * 2 for r in rows}
                return sum(x + 1 for x in seen)
        """
        assert run(source, DeterminismRule()) == []

    def test_insertion_ordered_dict_is_allowed(self):
        source = """\
            def f(pages):
                pinned = {}
                for page in pages:
                    pinned[page] = None
                for page in pinned:
                    print(page)
        """
        assert run(source, DeterminismRule()) == []

    def test_out_of_scope_module_is_ignored(self):
        source = """\
            import time
            stamp = time.time()
        """
        findings = lint_source(
            textwrap.dedent(source), [DeterminismRule()], module="repro.chaos.inject"
        )
        assert findings == []


class TestCounterDiscipline:
    def test_augmented_write_is_flagged(self):
        source = "metrics.tuples_generated += 1\n"
        findings = run(source, CounterDisciplineRule())
        assert codes(findings) == ["RPL003"]
        assert "tuples_generated" in findings[0].message

    def test_absolute_write_is_flagged(self):
        source = "metrics.cpu_seconds = 1.5\n"
        assert codes(run(source, CounterDisciplineRule())) == ["RPL003"]

    def test_self_metrics_receiver_is_flagged(self):
        source = """\
            class A:
                def f(self):
                    self.metrics.duplicates += 2
        """
        assert codes(run(source, CounterDisciplineRule())) == ["RPL003"]

    def test_fold_api_is_allowed(self):
        source = """\
            def f(metrics):
                metrics.fold(tuples_generated=3, duplicates=1)
                metrics.set_totals(cpu_seconds=0.5)
                metrics.count_union(4, 2)
        """
        assert run(source, CounterDisciplineRule()) == []

    def test_io_ledger_is_exempt(self):
        source = "metrics.io.phase = 1\n"
        assert run(source, CounterDisciplineRule()) == []

    def test_plain_locals_are_allowed(self):
        source = """\
            def f():
                tuples_generated = 0
                tuples_generated += 1
        """
        assert run(source, CounterDisciplineRule()) == []

    def test_metrics_package_itself_is_exempt(self):
        findings = lint_source(
            "metrics.tuples_generated += 1\n",
            [CounterDisciplineRule()],
            module="repro.metrics.counters",
        )
        assert findings == []


class TestCapabilityGuards:
    def test_unguarded_hook_is_flagged(self):
        source = """\
            def f(engine):
                engine.touch_page(1, 2)
        """
        findings = run(source, CapabilityGuardRule())
        assert codes(findings) == ["RPL004"]
        assert "CAP_PAGE_COSTS" in findings[0].message

    def test_direct_supports_guard_is_allowed(self):
        source = """\
            def f(engine):
                if engine.supports(CAP_PAGE_COSTS):
                    engine.touch_page(1, 2)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_flag_variable_guard_is_allowed(self):
        source = """\
            def f(engine):
                charged = engine.supports(CAP_PAGE_COSTS)
                if charged:
                    engine.create_page(1, 2)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_flag_guard_traced_into_closure(self):
        source = """\
            def f(engine):
                charged = engine.supports(CAP_PAGE_COSTS)

                def touch(row):
                    if not charged:
                        return
                    engine.touch_page(1, row)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_early_exit_guard_is_allowed(self):
        source = """\
            def f(engine):
                if not engine.supports(CAP_PAGE_COSTS):
                    return
                engine.flush_output([])
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_require_dominates_later_calls(self):
        source = """\
            def f(engine):
                engine.require(CAP_PINNING)
                engine.pin_page(1)
        """
        assert run(source, CapabilityGuardRule()) == []

    def test_pinning_hook_names_its_capability(self):
        source = """\
            def f(engine):
                engine.unpin_page(1)
        """
        findings = run(source, CapabilityGuardRule())
        assert codes(findings) == ["RPL004"]
        assert "CAP_PINNING" in findings[0].message

    def test_storage_package_itself_is_exempt(self):
        findings = lint_source(
            "def f(engine):\n    engine.touch_page(1, 2)\n",
            [CapabilityGuardRule()],
            module="repro.storage.paged",
        )
        assert findings == []


class TestExceptionHygiene:
    def test_bare_except_is_flagged_everywhere(self):
        source = """\
            try:
                f()
            except:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()], module="anywhere"
        )
        assert codes(findings) == ["RPL005"]
        assert "bare except" in findings[0].message

    def test_swallowed_broad_except_on_chaos_path_is_flagged(self):
        source = """\
            try:
                f()
            except Exception:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert codes(findings) == ["RPL005"]

    def test_reraising_handler_is_allowed(self):
        source = """\
            try:
                f()
            except Exception:
                raise
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert findings == []

    def test_structured_unit_error_is_allowed(self):
        source = """\
            def g(record_failure):
                try:
                    f()
                except Exception as exc:
                    record_failure(exc)
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.experiments.parallel",
        )
        assert findings == []

    def test_narrow_except_is_allowed(self):
        source = """\
            try:
                f()
            except ValueError:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.chaos.inject",
        )
        assert findings == []

    def test_broad_except_outside_chaos_scope_is_allowed(self):
        source = """\
            try:
                f()
            except Exception:
                pass
        """
        findings = lint_source(
            textwrap.dedent(source), [ExceptionHygieneRule()],
            module="repro.report.tables",
        )
        assert findings == []


class TestFsyncDiscipline:
    def test_unflushed_write_is_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert codes(findings) == ["RPL006"]
        assert "flush()" in findings[0].message
        assert "os.fsync()" in findings[0].message

    def test_flush_without_fsync_still_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
                fh.flush()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert codes(findings) == ["RPL006"]
        assert "os.fsync()" in findings[0].message

    def test_flush_and_fsync_is_clean(self):
        source = """\
            import os

            def append(fh, line):
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert findings == []

    def test_non_writing_function_is_out_of_scope(self):
        source = """\
            def read_back(fh):
                return fh.read()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.chaos.checkpoint",
        )
        assert findings == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            def append(fh, line):
                fh.write(line)
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.report.export",
        )
        assert findings == []

    def test_delegating_to_a_durable_helper_is_clean(self):
        # The batched-sink shape: the writer funnels durability through
        # one same-module helper that owns the flush+fsync pair.
        source = """\
            import os

            def append(fh, line):
                fh.write(line)
                _make_durable(fh)

            def _make_durable(fh):
                fh.flush()
                os.fsync(fh.fileno())
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert findings == []

    def test_delegating_to_an_undurable_helper_is_flagged(self):
        source = """\
            def append(fh, line):
                fh.write(line)
                _make_durable(fh)

            def _make_durable(fh):
                fh.flush()
        """
        findings = lint_source(
            textwrap.dedent(source), [FsyncDisciplineRule()],
            module="repro.obs.sink",
        )
        assert codes(findings) == ["RPL006"]


class TestScaleHygiene:
    def test_setdefault_adjacency_build_is_flagged(self):
        source = """\
            for src, dst in graph.arcs():
                adjacency.setdefault(src, []).append(dst)
        """
        findings = run(source, ScaleHygieneRule())
        assert codes(findings) == ["RPL007"]
        assert "graph_from_columns" in findings[0].message

    def test_subscript_append_over_nodes_is_flagged(self):
        source = """\
            for i in range(graph.num_nodes):
                rows[i].append(i + 1)
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_container_per_node_is_flagged(self):
        source = """\
            for node in graph.nodes():
                children[node] = []
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_arcs_named_iterable_is_flagged(self):
        source = """\
            for src, dst in arcs:
                preds.setdefault(dst, set()).add(src)
        """
        assert codes(run(source, ScaleHygieneRule())) == ["RPL007"]

    def test_bounded_iterable_stays_clean(self):
        # The chains.py idiom: keyed accumulation over a *derived*
        # order, not a whole-graph sweep.
        source = """\
            for node in order:
                predecessors.setdefault(node, []).append(node)
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_flat_column_accumulation_stays_clean(self):
        # The sanctioned fix: flat arc columns, no per-node containers.
        source = """\
            for src, dst in graph.arcs():
                srcs.append(src)
                dsts.append(dst)
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_scalar_per_node_stays_clean(self):
        source = """\
            for node in graph.nodes():
                level[node] = 0
        """
        assert run(source, ScaleHygieneRule()) == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            for src, dst in graph.arcs():
                adjacency.setdefault(src, []).append(dst)
        """
        findings = lint_source(
            textwrap.dedent(source), [ScaleHygieneRule()],
            module="repro.report.export",
        )
        assert findings == []


class TestResourceLifecycle:
    def test_pin_without_unpin_is_flagged(self):
        source = """\
            def scan(engine, page):
                engine.pin_page(page)
                return engine.read(page)
        """
        findings = run(source, ResourceLifecycleRule())
        assert codes(findings) == ["RPL008"]
        assert "unreleased" in findings[0].message

    def test_exception_path_leak_is_flagged(self):
        # The flow-sensitive shape the PR-5 syntactic rules cannot see:
        # a pin matched by an unpin, but only on the normal path.
        source = """\
            def sweep(engine, pages):
                for page in pages:
                    engine.pin_page(page)
                process(pages)
                for page in pages:
                    engine.unpin_page(page)
        """
        findings = run(source, ResourceLifecycleRule())
        assert codes(findings) == ["RPL008"]
        assert "exception paths" in findings[0].message

    def test_early_return_leak_is_flagged(self):
        source = """\
            def probe(engine, page):
                engine.pin_page(page)
                if cached(page):
                    return fast(page)
                engine.unpin_page(page)
                return slow(page)
        """
        findings = run(source, ResourceLifecycleRule())
        assert codes(findings) == ["RPL008"]
        assert "some normal path" in findings[0].message

    def test_release_in_finally_is_clean(self):
        # The pin loop sits inside the try: an exception during the
        # second pin still releases the first via the finally sweep.
        source = """\
            def sweep(engine, pages):
                try:
                    for page in pages:
                        engine.pin_page(page)
                    process(pages)
                finally:
                    for page in pages:
                        engine.unpin_page(page)
        """
        assert run(source, ResourceLifecycleRule()) == []

    def test_unpin_all_counts_as_a_release(self):
        source = """\
            def sweep(engine, pages):
                try:
                    for page in pages:
                        engine.pin_page(page)
                    process(pages)
                finally:
                    engine.unpin_all()
        """
        assert run(source, ResourceLifecycleRule()) == []

    def test_pin_loop_outside_the_try_still_leaks(self):
        # A pin sweep ahead of the try: a failure mid-sweep escapes
        # before the finally protection begins.
        source = """\
            def sweep(engine, pages):
                for page in pages:
                    engine.pin_page(page)
                try:
                    process(pages)
                finally:
                    engine.unpin_all()
        """
        findings = run(source, ResourceLifecycleRule())
        assert codes(findings) == ["RPL008"]
        assert "exception paths" in findings[0].message

    def test_open_handle_not_closed_is_flagged(self):
        source = """\
            def count_rows(path):
                fh = open(path)
                total = 0
                for _line in fh:
                    total += 1
                return total
        """
        findings = run(source, ResourceLifecycleRule())
        assert codes(findings) == ["RPL008"]
        assert "'fh'" in findings[0].message

    def test_with_managed_handle_is_clean(self):
        source = """\
            def count_rows(path):
                with open(path) as fh:
                    return sum(1 for _ in fh)
        """
        assert run(source, ResourceLifecycleRule()) == []

    def test_close_in_finally_is_clean(self):
        source = """\
            def count_rows(path):
                fh = open(path)
                try:
                    return sum(1 for _ in fh)
                finally:
                    fh.close()
        """
        assert run(source, ResourceLifecycleRule()) == []

    def test_handle_returned_to_the_caller_is_clean(self):
        # Ownership transfer: the caller is now responsible.
        source = """\
            def open_log(path):
                fh = open(path)
                return fh
        """
        assert run(source, ResourceLifecycleRule()) == []

    def test_suppression_at_the_acquire_site(self):
        source = """\
            def scan(engine, page):
                engine.pin_page(page)  # repro-lint: disable=RPL008
                return engine.read(page)
        """
        assert run(source, ResourceLifecycleRule()) == []


def run_async(source, module="repro.serve.fixture"):
    return lint_source(
        textwrap.dedent(source), [AsyncHygieneRule()], module=module
    )


class TestAsyncHygiene:
    def test_blocking_sleep_in_async_def_is_flagged(self):
        source = """\
            import time

            async def handler(request):
                time.sleep(0.1)
                return request
        """
        findings = run_async(source)
        assert codes(findings) == ["RPL009"]
        assert "time.sleep" in findings[0].message

    def test_engine_run_in_async_def_is_flagged(self):
        source = """\
            async def handler(engine, spec):
                return engine.run(spec)
        """
        findings = run_async(source)
        assert codes(findings) == ["RPL009"]
        assert ".run()" in findings[0].message

    def test_executor_wrapped_blocking_call_is_clean(self):
        source = """\
            import time

            async def handler(loop):
                return await loop.run_in_executor(None, time.sleep, 0.1)
        """
        assert run_async(source) == []

    def test_never_awaited_coroutine_is_flagged(self):
        source = """\
            async def work():
                return 1

            async def handler():
                work()
        """
        findings = run_async(source)
        assert codes(findings) == ["RPL009"]
        assert "never awaited" in findings[0].message

    def test_discarded_create_task_is_flagged(self):
        source = """\
            import asyncio

            async def work():
                return 1

            async def handler():
                asyncio.create_task(work())
        """
        findings = run_async(source)
        assert codes(findings) == ["RPL009"]
        assert "discarded" in findings[0].message

    def test_task_awaited_on_one_path_only_is_flagged(self):
        # Flow-sensitive: the await exists but not on every path.
        source = """\
            import asyncio

            async def work():
                return 1

            async def handler(fast):
                task = asyncio.create_task(work())
                if fast:
                    await task
        """
        findings = run_async(source)
        assert codes(findings) == ["RPL009"]
        assert "some path" in findings[0].message

    def test_awaited_task_is_clean(self):
        source = """\
            import asyncio

            async def work():
                return 1

            async def handler():
                task = asyncio.create_task(work())
                return await task
        """
        assert run_async(source) == []

    def test_done_callback_counts_as_retrieval(self):
        source = """\
            import asyncio

            async def work():
                return 1

            async def handler(on_done):
                task = asyncio.create_task(work())
                task.add_done_callback(on_done)
        """
        assert run_async(source) == []

    def test_sync_code_is_out_of_scope(self):
        source = """\
            import time

            def handler(request):
                time.sleep(0.1)
                return request
        """
        assert run_async(source) == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            import time

            async def handler(request):
                time.sleep(0.1)
        """
        assert run_async(source, module="repro.report.tables") == []

    def test_suppression(self):
        source = """\
            import time

            async def handler(request):
                time.sleep(0.1)  # repro-lint: disable=RPL009
        """
        assert run_async(source) == []


def run_fork(source, module="repro.experiments.parallel"):
    return lint_source(
        textwrap.dedent(source), [ForkSafetyRule()], module=module
    )


class TestForkSafety:
    def test_lambda_closing_over_engine_is_flagged(self):
        source = """\
            def launch(pool, jobs):
                engine = ExperimentEngine()
                for job in jobs:
                    pool.submit(lambda: engine.run(job))
        """
        findings = run_fork(source)
        assert codes(findings) == ["RPL010"]
        assert "'engine'" in findings[0].message

    def test_live_handle_argument_is_flagged(self):
        source = """\
            def launch(pool, path):
                fh = open(path)
                pool.submit(parse, fh)
        """
        findings = run_fork(source)
        assert codes(findings) == ["RPL010"]
        assert "live resource" in findings[0].message

    def test_plain_data_submission_is_clean(self):
        source = """\
            def launch(pool, jobs):
                for job in jobs:
                    pool.submit(run_job, job)
        """
        assert run_fork(source) == []

    def test_unreset_module_state_read_by_worker_is_flagged(self):
        source = """\
            CACHE = {}

            def worker(job):
                return CACHE.get(job)

            def launch(pool, jobs):
                for job in jobs:
                    pool.submit(worker, job)
        """
        findings = run_fork(source)
        assert codes(findings) == ["RPL010"]
        assert "'CACHE'" in findings[0].message

    def test_initializer_reset_hook_is_clean(self):
        source = """\
            from concurrent.futures import ProcessPoolExecutor

            CACHE = {}

            def _reset_worker_state():
                CACHE.clear()

            def worker(job):
                return CACHE.get(job)

            def launch(jobs):
                with ProcessPoolExecutor(initializer=_reset_worker_state) as pool:
                    for job in jobs:
                        pool.submit(worker, job)
        """
        assert run_fork(source) == []

    def test_other_modules_are_out_of_scope(self):
        source = """\
            def launch(pool, jobs):
                engine = ExperimentEngine()
                pool.submit(lambda: engine.run(jobs))
        """
        assert run_fork(source, module="repro.core.fixture") == []

    def test_suppression(self):
        source = """\
            def launch(pool, jobs):
                engine = ExperimentEngine()
                pool.submit(lambda: engine.run(jobs))  # repro-lint: disable=RPL010
        """
        assert run_fork(source) == []


class TestSuppression:
    def test_inline_disable_by_code(self):
        source = "metrics.duplicates += 1  # repro-lint: disable=RPL003\n"
        stats = LintResult()
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x", stats=stats
        )
        assert findings == []
        assert stats.suppressed == 1

    def test_inline_disable_all_rules(self):
        source = "metrics.duplicates += 1  # repro-lint: disable\n"
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x"
        )
        assert findings == []

    def test_disable_wrong_code_does_not_suppress(self):
        source = "metrics.duplicates += 1  # repro-lint: disable=RPL001\n"
        findings = lint_source(
            source, [CounterDisciplineRule()], module="repro.core.x"
        )
        assert codes(findings) == ["RPL003"]

    def test_file_wide_disable(self):
        source = """\
            # repro-lint: disable-file=RPL003
            metrics.duplicates += 1
            metrics.tuple_io += 2
        """
        findings = lint_source(
            textwrap.dedent(source), [CounterDisciplineRule()], module="repro.core.x"
        )
        assert findings == []


class TestParseErrors:
    def test_unparsable_file_reports_rpl900(self):
        findings = lint_source("def broken(:\n", [SeamIsolationRule()])
        assert codes(findings) == [PARSE_ERROR_CODE]


class TestBaseline:
    def test_round_trip_and_subtraction(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        rules = [CounterDisciplineRule()]

        first = lint_paths([str(tmp_path)], rules)
        assert codes(first.findings) == ["RPL003"]

        baseline_file = tmp_path / "baseline.json"
        assert write_baseline(baseline_file, first.findings) == 1
        fingerprints = load_baseline(baseline_file)
        assert len(fingerprints) == 1

        second = lint_paths([str(tmp_path)], rules, baseline=fingerprints)
        assert second.findings == []
        assert second.baselined == 1

    def test_baseline_is_line_number_independent(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        rules = [CounterDisciplineRule()]
        first = lint_paths([str(tmp_path)], rules)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)

        # Push the grandfathered line down: it must stay baselined.
        bad.write_text("import os\n\n\nmetrics.duplicates += 1\n", encoding="utf-8")
        again = lint_paths(
            [str(tmp_path)], rules, baseline=load_baseline(baseline_file)
        )
        assert again.findings == []
        assert again.baselined == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{\"not\": \"a baseline\"}", encoding="utf-8")
        try:
            load_baseline(bad)
        except ValueError as exc:
            assert "malformed baseline" in str(exc)
        else:
            raise AssertionError("malformed baseline did not raise")


class TestConfigAndSelection:
    def test_select_narrows_the_rule_set(self):
        from repro.lint.config import LintConfig

        rules = make_rules(LintConfig(select=["RPL001"]))
        assert [r.code for r in rules] == ["RPL001"]

    def test_ignore_removes_rules(self):
        from repro.lint.config import LintConfig

        rules = make_rules(LintConfig(ignore=["RPL002", "RPL006"]))
        assert "RPL002" not in [r.code for r in rules]
        assert "RPL006" not in [r.code for r in rules]
        assert len(rules) == 8

    def test_per_rule_options_reach_the_rule(self):
        from repro.lint.config import LintConfig

        config = LintConfig(
            rule_options={"RPL001": {"banned": ("repro.storage.trace",)}}
        )
        (rule,) = [r for r in make_rules(config) if r.code == "RPL001"]
        assert rule.banned == ("repro.storage.trace",)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config"]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config"]) == EXIT_FINDINGS
        assert "RPL003" in capsys.readouterr().out

    def test_empty_selection_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path), "--no-config", "--select", "RPL999"]) == EXIT_ERROR

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-config", "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "RPL003"
        assert payload["files"] == 1

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert (
            main([
                str(tmp_path), "--no-config",
                "--baseline", str(baseline), "--write-baseline",
            ])
            == EXIT_CLEAN
        )
        assert baseline.exists()
        assert (
            main([str(tmp_path), "--no-config", "--baseline", str(baseline)])
            == EXIT_CLEAN
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
                     "RPL007", "RPL008", "RPL009", "RPL010"):
            assert code in out


class TestCache:
    def _bad_file(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        return bad

    def test_warm_run_is_all_hits_and_identical(self, tmp_path):
        bad = self._bad_file(tmp_path)
        rules = [CounterDisciplineRule()]
        signature = rules_signature(rules)
        cache_path = tmp_path / "cache.json"

        cold_cache = LintCache.load(cache_path, signature)
        cold = lint_paths([str(tmp_path)], rules, cache=cold_cache)
        assert cold_cache.misses == 1 and cold_cache.hits == 0
        cold_cache.save()

        warm_cache = LintCache.load(cache_path, signature)
        warm = lint_paths([str(tmp_path)], rules, cache=warm_cache)
        assert warm_cache.hits == 1 and warm_cache.misses == 0
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]
        assert bad.exists()

    def test_edited_file_misses(self, tmp_path):
        bad = self._bad_file(tmp_path)
        rules = [CounterDisciplineRule()]
        signature = rules_signature(rules)
        cache_path = tmp_path / "cache.json"

        cold_cache = LintCache.load(cache_path, signature)
        lint_paths([str(tmp_path)], rules, cache=cold_cache)
        cold_cache.save()

        bad.write_text("x = 1\n", encoding="utf-8")
        warm_cache = LintCache.load(cache_path, signature)
        warm = lint_paths([str(tmp_path)], rules, cache=warm_cache)
        assert warm_cache.misses == 1
        assert warm.findings == []

    def test_signature_change_discards_the_cache(self, tmp_path):
        self._bad_file(tmp_path)
        rules = [CounterDisciplineRule()]
        cache_path = tmp_path / "cache.json"

        cold_cache = LintCache.load(cache_path, rules_signature(rules))
        lint_paths([str(tmp_path)], rules, cache=cold_cache)
        cold_cache.save()

        reloaded = LintCache.load(cache_path, "different-signature")
        assert reloaded.entries == {}

    def test_rule_options_change_the_signature(self):
        plain = rules_signature([ResourceLifecycleRule()])
        tweaked_rule = ResourceLifecycleRule()
        tweaked_rule.configure({"pin_names": ("grab",)})
        assert plain != rules_signature([tweaked_rule])

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        cache = LintCache.load(cache_path, "sig")
        assert cache.entries == {}

    def test_cached_findings_stay_subject_to_baseline(self, tmp_path):
        self._bad_file(tmp_path)
        rules = [CounterDisciplineRule()]
        signature = rules_signature(rules)
        cache_path = tmp_path / "cache.json"

        cold_cache = LintCache.load(cache_path, signature)
        cold = lint_paths([str(tmp_path)], rules, cache=cold_cache)
        cold_cache.save()
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, cold.findings)

        warm_cache = LintCache.load(cache_path, signature)
        warm = lint_paths(
            [str(tmp_path)],
            rules,
            baseline=load_baseline(baseline_file),
            cache=warm_cache,
        )
        assert warm_cache.hits == 1
        assert warm.findings == [] and warm.baselined == 1

    def test_cli_cache_flag_round_trip(self, tmp_path, capsys):
        self._bad_file(tmp_path)
        cache_path = tmp_path / "cache.json"
        argv = [str(tmp_path), "--no-config", "--cache", str(cache_path)]
        assert main(argv) == EXIT_FINDINGS
        assert cache_path.exists()
        capsys.readouterr()
        assert main(argv) == EXIT_FINDINGS
        assert "RPL003" in capsys.readouterr().out

    def test_cli_no_cache_skips_the_file(self, tmp_path):
        self._bad_file(tmp_path)
        cache_path = tmp_path / "cache.json"
        argv = [
            str(tmp_path), "--no-config",
            "--cache", str(cache_path), "--no-cache",
        ]
        assert main(argv) == EXIT_FINDINGS
        assert not cache_path.exists()


class TestChangedOnly:
    def test_outside_git_falls_back_to_everything(
        self, tmp_path, monkeypatch, capsys
    ):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "definitely-not-a-repo"))
        assert main([str(tmp_path), "--no-config", "--changed-only"]) \
            == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert "linting the full file set" in captured.err
        assert "RPL003" in captured.out

    def test_only_changed_files_are_linted(self, tmp_path, monkeypatch, capsys):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True
            )

        git("init", "-q")
        git("config", "user.email", "lint@test")
        git("config", "user.name", "lint test")
        committed = tmp_path / "repro" / "core" / "committed.py"
        committed.parent.mkdir(parents=True)
        committed.write_text("metrics.duplicates += 1\n", encoding="utf-8")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")

        fresh = committed.parent / "fresh.py"
        fresh.write_text("metrics.tuple_io += 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--no-config", "--changed-only"]) \
            == EXIT_FINDINGS
        out = capsys.readouterr().out
        # The untracked file is linted; the committed (unchanged)
        # violation is not even visited.
        assert "fresh.py" in out
        assert "committed.py" not in out
        assert "1 file(s)" in out


class TestRepositoryIsClean:
    def test_src_tree_is_clean_under_default_rules(self, capsys):
        """The CI gate: the repository satisfies its own invariants."""
        assert main([str(REPO_ROOT / "src"), "--no-config"]) == EXIT_CLEAN
